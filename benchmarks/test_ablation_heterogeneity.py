"""Bench ablation: heterogeneous network cuts (the paper's future work)."""

from repro.experiments.ablations import (
    format_heterogeneity_ablation,
    run_heterogeneity_ablation,
)


def test_heterogeneity_ablation(once, show, bench_seed):
    rows = once(run_heterogeneity_ablation, seed=bench_seed)
    by_variant = {r.variant: r for r in rows}

    assert all(r.correct for r in rows)

    fifo_uniform = by_variant["FIFO steal, uniform LAN"]
    fifo_slow = by_variant["FIFO steal, slow backbone"]
    lifo_uniform = by_variant["LIFO steal, uniform LAN"]
    lifo_slow = by_variant["LIFO steal, slow backbone"]

    # The paper's FIFO stealing tolerates the slow cut: modest slowdown.
    fifo_penalty = fifo_slow.avg_time_s / fifo_uniform.avg_time_s
    assert fifo_penalty < 1.4

    # Leaf stealing crosses the cut constantly and pays dearly — the gap
    # the proposed locality-aware techniques would close.
    lifo_penalty = lifo_slow.avg_time_s / lifo_uniform.avg_time_s
    assert lifo_penalty > fifo_penalty

    show(format_heterogeneity_ablation(rows))
