"""Bench ablation: LIFO-exec/FIFO-steal (paper) vs the other 3 combos."""

from repro.experiments.ablations import format_order_ablation, run_order_ablation


def test_order_ablation(once, show, bench_seed):
    rows = once(run_order_ablation, seed=bench_seed)
    by_variant = {r.variant: r for r in rows}
    paper = by_variant["exec=lifo steal=fifo (paper)"]
    fifo_exec = by_variant["exec=fifo steal=fifo"]
    lifo_steal = by_variant["exec=lifo steal=lifo"]
    worst = by_variant["exec=fifo steal=lifo"]

    assert all(r.correct for r in rows)

    # Memory-locality claim: FIFO execution explodes the working set.
    assert fifo_exec.max_tasks_in_use > 100 * paper.max_tasks_in_use

    # Communication-locality claim: LIFO stealing multiplies steals.
    assert lifo_steal.tasks_stolen > 10 * paper.tasks_stolen
    assert lifo_steal.messages_sent > 10 * paper.messages_sent

    # And the paper's combination is the fastest of the four.
    assert paper.avg_time_s == min(r.avg_time_s for r in rows)
    assert worst.avg_time_s > 2 * paper.avg_time_s

    show(format_order_ablation(rows))
