"""Bench ablation: random victim (paper) vs round-robin victim."""

from repro.experiments.ablations import format_victim_ablation, run_victim_ablation


def test_victim_ablation(once, show, bench_seed):
    rows = once(run_victim_ablation, seed=bench_seed)
    random_row, rr_row = rows

    assert all(r.correct for r in rows)
    # The Blumofe–Leiserson point: random victims are already good —
    # the deterministic alternative buys no meaningful speed.
    assert random_row.avg_time_s < 1.15 * rr_row.avg_time_s
    assert rr_row.avg_time_s < 1.15 * random_row.avg_time_s
    # Both stay in the low-steal regime.
    for r in rows:
        assert r.tasks_stolen < 1000

    show(format_victim_ablation(rows))
