"""Bench: regenerate Figure 4 (pfold average execution time vs P)."""

from repro.experiments.figures import format_figure4, run_speedup_curve


def test_figure4(once, show, bench_seed):
    points = once(run_speedup_curve, seed=bench_seed)

    by_p = {pt.participants: pt for pt in points}
    assert set(by_p) == {1, 2, 4, 8, 16, 32}

    # T1 lands at the paper's magnitude (~600 s on a SparcStation 1).
    assert 400 < by_p[1].average_time_s < 800

    # Time falls monotonically and roughly hyperbolically with P.
    times = [by_p[p].average_time_s for p in (1, 2, 4, 8, 16, 32)]
    assert times == sorted(times, reverse=True)
    for p in (2, 4, 8, 16):
        ratio = by_p[p].average_time_s / by_p[2 * p].average_time_s
        assert 1.5 < ratio < 2.5  # halving P-steps roughly halve time

    show(format_figure4(points))
