"""Benchmark configuration.

Each benchmark regenerates one exhibit of the paper once per run
(``pedantic(rounds=1)``): these are experiment drivers, not
microbenchmarks, and their interesting output is the *shape* assertions
they make (who wins, by what factor) plus the wall-time to regenerate.
The regenerated tables/figures are printed to the terminal on demand
with ``-s``.
"""

import pytest

#: Root seed shared by every benchmark in this directory.  All exhibits
#: are regenerated from the same random stream, so the shape assertions
#: below (who wins, by what factor) describe one reproducible universe —
#: the same one ``python -m repro.cli`` produces with its default seed.
BENCH_SEED = 0


@pytest.fixture(scope="session")
def bench_seed():
    """The shared root seed for every seeded run in the benchmark suite."""
    return BENCH_SEED


@pytest.fixture
def show(capsys):
    """Print a regenerated exhibit to the real terminal (visible with -s)."""

    def _show(text):
        with capsys.disabled():
            print()
            print(text)

    return _show


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
