"""Benchmark configuration.

Each benchmark regenerates one exhibit of the paper once per run
(``pedantic(rounds=1)``): these are experiment drivers, not
microbenchmarks, and their interesting output is the *shape* assertions
they make (who wins, by what factor) plus the wall-time to regenerate.
The regenerated tables/figures are printed to the terminal on demand
with ``-s``.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
