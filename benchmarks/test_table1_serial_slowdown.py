"""Bench: regenerate Table 1 (serial slowdown, 3 apps x 2 platforms)."""

from repro.experiments.table1 import PAPER_TABLE1, format_table1, run_table1


def test_table1(once, show, bench_seed):
    rows = once(run_table1, seed=bench_seed)

    assert len(rows) == 6
    # Shape: fib is the worst case, ray is essentially free.
    measured = {(r.app, r.platform): r.measured for r in rows}
    assert measured[("fib", "sparcstation-10")] > 4.0
    assert measured[("fib", "cm5-node")] > 3.5
    assert measured[("nqueens", "sparcstation-10")] < 1.5
    assert measured[("ray", "sparcstation-10")] < 1.15
    # Phish (dynamic processor set) pays more than Strata everywhere.
    for app in ("fib", "nqueens", "ray"):
        assert measured[(app, "sparcstation-10")] > measured[(app, "cm5-node")]
    # Every cell within 25% of the published number.
    for row in rows:
        assert row.relative_error < 0.25

    show(format_table1(rows))
