"""Microbenchmarks of the substrates themselves (events/sec, steal RTT).

These are real pytest-benchmark microbenchmarks (multiple rounds): they
track the cost of the simulation machinery, which bounds how large a
workload the reproduction can run.
"""

from repro.sim.core import Simulator


def test_kernel_event_throughput(benchmark):
    """Raw timeout processing rate of the DES kernel."""

    def run_10k_events():
        sim = Simulator()
        for i in range(10_000):
            sim.timeout(float(i % 97))
        sim.run()
        return sim.events_processed

    events = benchmark(run_10k_events)
    assert events == 10_000


def test_kernel_process_switch_rate(benchmark):
    """Generator-process ping-pong through a Store."""

    def ping_pong():
        from repro.sim.resources import Store

        sim = Simulator()
        a_to_b, b_to_a = Store(sim), Store(sim)

        def ping(sim):
            for i in range(1000):
                yield a_to_b.put(i)
                yield b_to_a.get()

        def pong(sim):
            for _ in range(1000):
                value = yield a_to_b.get()
                yield b_to_a.put(value)

        sim.process(ping(sim))
        sim.process(pong(sim))
        sim.run()
        return sim.events_processed

    assert benchmark(ping_pong) > 0


def test_simulated_fib_task_rate(benchmark, bench_seed):
    """End-to-end simulated task execution rate (1 worker, fib(16))."""
    from repro.apps.fib import fib_job, fib_serial
    from repro.phish import run_job

    def run():
        return run_job(fib_job(16), n_workers=1, seed=bench_seed)

    result = benchmark(run)
    assert result.result == fib_serial(16)


def test_steal_round_trip(benchmark, bench_seed):
    """Wall cost of a full simulated steal protocol exchange."""
    from repro.apps.pfold import pfold_job
    from repro.phish import run_job

    def run():
        return run_job(pfold_job("HPHPPHHP"), n_workers=2, seed=bench_seed)

    result = benchmark(run)
    assert result.result is not None
