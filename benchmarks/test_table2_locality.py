"""Bench: regenerate Table 2 (pfold locality statistics at P=4 and P=8)."""

from repro.experiments.table2 import format_table2, run_table2


def test_table2(once, show, bench_seed):
    columns = once(run_table2, seed=bench_seed)

    col4, col8 = columns
    assert col4.participants == 4 and col8.participants == 8

    # Tasks executed and synchronizations are workload constants.
    assert col4.rows["Tasks executed"] == col8.rows["Tasks executed"]
    assert col4.rows["Synchronizations"] == col8.rows["Synchronizations"]

    # The paper's locality claims, as ratios (scale-free):
    for col in columns:
        ratios = col.locality_ratios()
        assert ratios["steals_per_task"] < 5e-3
        assert ratios["nonlocal_synch_fraction"] < 5e-3
        assert ratios["working_set_fraction"] < 1e-3

    # The working set does not grow with P (paper: 59 at both counts).
    assert col8.rows["Max tasks in use"] <= 1.5 * col4.rows["Max tasks in use"]

    # More participants -> more steals and messages, but time halves.
    assert col8.rows["Tasks stolen"] > col4.rows["Tasks stolen"]
    assert col8.rows["Messages sent"] > col4.rows["Messages sent"]
    ratio = col4.rows["Execution time"] / col8.rows["Execution time"]
    assert 1.6 < ratio < 2.4  # paper: 182/94 = 1.94

    show(format_table2(columns))
