"""Bench extension: idle-cycle harvesting (the paper's motivation)."""

from repro.experiments.harvest import format_harvest, run_harvest


def test_harvest(once, show, bench_seed):
    report = once(run_harvest, seed=bench_seed)

    # Everything submitted finished, exactly.
    assert report.jobs_completed == report.n_jobs
    assert report.all_results_exact

    # The macro scheduler converts a substantial share of owner-idle
    # machine time into parallel compute despite churn...
    assert report.harvest_fraction > 0.5

    # ...and owner sovereignty held: reclaims happened and were survived.
    assert report.workers_reclaimed >= 1
    assert report.workers_started > report.n_jobs  # machines joined & rejoined

    show(format_harvest(report))
