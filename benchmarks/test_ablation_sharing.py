"""Bench ablation: space-sharing vs gang time-sharing at the macro level."""

from repro.experiments.ablations import format_sharing_ablation, run_sharing_ablation


def test_sharing_ablation(once, show, bench_seed):
    cmp = once(run_sharing_ablation, seed=bench_seed)

    # Tucker & Gupta's result, the macro scheduler's design basis:
    # space-sharing wins on mean completion time.
    assert cmp.mean_advantage > 1.0
    # And even on makespan, time-sharing pays the switch overhead.
    assert cmp.time_makespan >= cmp.space_makespan * 0.95

    show(format_sharing_ablation(cmp))
