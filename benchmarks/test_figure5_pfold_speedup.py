"""Bench: regenerate Figure 5 (pfold speedup vs P, near-perfect linear)."""

from repro.experiments.figures import format_figure5, run_speedup_curve


def test_figure5(once, show, bench_seed):
    points = once(run_speedup_curve, seed=bench_seed)

    by_p = {pt.participants: pt for pt in points}

    # Near-perfect linear speedup all the way to 32 participants.
    for p, pt in by_p.items():
        assert pt.speedup > 0.93 * p, (p, pt.speedup)
        assert pt.speedup <= 1.05 * p  # sanity: no superlinear artifacts

    # The paper's droop: efficiency at 32 is below efficiency at 4
    # (fixed registration/startup overheads bite as runs get short).
    eff = {p: pt.speedup / p for p, pt in by_p.items()}
    assert eff[32] < eff[4]

    # Figure 5's enabler (the locality claims of Table 2): steals stay
    # vanishingly rare at every P.
    for pt in points:
        if pt.participants > 1:
            assert pt.tasks_stolen < 2e-2 * 64832

    show(format_figure5(points))
