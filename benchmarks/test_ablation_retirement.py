"""Bench ablation: worker retirement when parallelism shrinks."""

from repro.experiments.ablations import (
    format_retirement_ablation,
    run_retirement_ablation,
)


def test_retirement_ablation(once, show, bench_seed):
    rows = once(run_retirement_ablation, seed=bench_seed)
    by_threshold = {r.retire_after: r for r in rows}

    assert all(r.correct for r in rows)

    never = by_threshold[None]
    eager = by_threshold[5]

    # Never retiring keeps every machine captive to the end.
    assert never.retired_workers == 0
    # An eager threshold releases most machines during the serial tail...
    assert eager.retired_workers >= 4
    # ...which raises the mean busy fraction of participating machines.
    assert eager.mean_busy_fraction > never.mean_busy_fraction

    show(format_retirement_ablation(rows))
