"""Bench extension: checkpoint/restart (Section 6's planned feature)."""

from repro.apps.pfold import pfold_job, pfold_serial
from repro.fault.checkpoint import checkpoint_and_kill_run

SEQ = "HPHPPHHPHPPH"
SCALE = 60.0


def test_checkpoint_restart(once, show, bench_seed):
    checkpoint, restored = once(
        checkpoint_and_kill_run,
        pfold_job(SEQ, work_scale=SCALE),
        4,
        4.0,  # checkpoint 4 simulated seconds in (~half way)
        seed=bench_seed,
    )

    expected = pfold_serial(SEQ, work_scale=SCALE).result
    assert restored.result == expected

    # The snapshot is compact: live closures, not the 65k-task history.
    assert 0 < checkpoint.live_closures < 500

    # Restarting from the checkpoint skips the completed prefix.
    from repro.baselines.serial import execute_serially

    total = execute_serially(pfold_job(SEQ, work_scale=SCALE)).tasks_executed
    assert restored.stats.tasks_executed < total

    show(
        f"checkpoint at t={checkpoint.taken_at:.2f}s captured "
        f"{checkpoint.live_closures} live closures on "
        f"{len(checkpoint.workers)} machines; restored run executed "
        f"{restored.stats.tasks_executed:,}/{total:,} tasks and produced "
        f"the exact histogram."
    )
