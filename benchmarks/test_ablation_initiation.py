"""Bench ablation: idle-initiated stealing vs central queue vs
sender-initiated (Parform-style) pushing."""

from repro.experiments.ablations import (
    format_initiation_ablation,
    run_initiation_ablation,
)


def test_initiation_ablation(once, show, bench_seed):
    rows = once(run_initiation_ablation, seed=bench_seed)
    steal, central, push = rows

    assert all(r.correct for r in rows)

    # Central queue: every spawn crosses the network — orders of
    # magnitude more messages, and much slower.
    assert central.messages_sent > 50 * steal.messages_sent
    assert central.avg_time_s > 2 * steal.avg_time_s
    assert central.migrated > 1000

    # Sender-initiated: moves tasks nobody asked for and broadcasts
    # load; the idle-initiated scheduler "does not move a task unless an
    # idle machine requests work".
    assert push.messages_sent > 5 * steal.messages_sent
    assert push.migrated > 10 * max(1, steal.tasks_stolen)
    assert steal.migrated == 0

    show(format_initiation_ablation(rows))
