"""Bench ablation: crash-recovery overhead (0, 1, 2 machine crashes)."""

from repro.experiments.ablations import format_fault_ablation, run_fault_ablation


def test_fault_ablation(once, show, bench_seed):
    rows = once(run_fault_ablation, seed=bench_seed)
    by_crashes = {r.crashes: r for r in rows}

    # Exactness under every crash count — the headline property.
    assert all(r.correct for r in rows)

    # Crashes cost redone work and time, monotonically.
    assert by_crashes[0].tasks_redone == 0
    assert by_crashes[1].makespan_s >= by_crashes[0].makespan_s
    assert by_crashes[2].makespan_s >= by_crashes[1].makespan_s
    assert by_crashes[2].tasks_redone >= by_crashes[1].tasks_redone

    show(format_fault_ablation(rows))
