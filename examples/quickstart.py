#!/usr/bin/env python3
"""Quickstart: run a dynamic parallel program on simulated workstations.

The paper's pitch in 30 lines: take a doubly-recursive fib — the
worst-case fine-grain workload — and run it across 8 simulated
SparcStation 1s under the idle-initiated work-stealing scheduler.
Despite executing tens of thousands of tiny tasks, only a handful are
ever stolen (moved between machines), and the speedup is nearly linear.

Run:  python examples/quickstart.py
"""

from repro import run_job
from repro.apps.fib import fib_job, fib_serial, task_count

N = 20

print(f"fib({N}) under Phish work stealing")
print("=" * 40)

# One participant: the baseline T1.
one = run_job(fib_job(N), n_workers=1, seed=42)
t1 = one.stats.execution_times[0]
assert one.result == fib_serial(N), "parallel result must match serial"
print(f"P=1  answer={one.result}  tasks={one.stats.tasks_executed:,}  "
      f"time={t1:.2f}s (simulated)")

# Eight participants: same job, same seed machinery, near-linear speedup.
eight = run_job(fib_job(N), n_workers=8, seed=42)
s8 = eight.stats.speedup_vs(t1)
print(f"P=8  answer={eight.result}  time={eight.stats.average_execution_time:.2f}s  "
      f"speedup={s8:.2f}x")

print()
print("Locality, the paper's headline result:")
print(f"  tasks executed : {eight.stats.tasks_executed:,} "
      f"(expected {task_count(N):,})")
print(f"  tasks stolen   : {eight.stats.tasks_stolen} "
      f"({eight.stats.tasks_stolen / eight.stats.tasks_executed:.2e} per task)")
print(f"  non-local synch: {eight.stats.non_local_synchs} of "
      f"{eight.stats.synchronizations:,} synchronizations")
print(f"  messages sent  : {eight.stats.messages_sent}")
print(f"  max tasks in use on any machine: {eight.stats.max_tasks_in_use} "
      "(the working set stays tiny)")
