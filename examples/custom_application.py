#!/usr/bin/env python3
"""Writing your own Phish application: parallel mergesort.

The programming model is continuation-passing threads (the paper's
reference [13]): thread functions receive a frame and use

* ``frame.spawn(thread, *args)``        — fire a ready child task,
* ``frame.successor(thread, *given)``   — allocate a join closure with
  missing argument slots, returning continuations for them,
* ``frame.send(continuation, value)``   — satisfy a slot (a
  "synchronization"),
* ``frame.work(cycles)``                — charge simulated compute time.

This example sorts a list by recursive splitting, with sequential
sorting below a cutoff — the same grain-size engineering the paper's
applications use.

Run:  python examples/custom_application.py
"""

import random

from repro import run_job
from repro.tasks.program import JobProgram, ThreadProgram

CUTOFF = 64  # below this, sort sequentially (grain control)
CYCLES_PER_ELEMENT = 40.0

program = ThreadProgram("mergesort")


@program.thread
def sort_task(frame, k, values):
    """Sort *values*, sending the sorted tuple along k."""
    n = len(values)
    if n <= CUTOFF:
        frame.work(CYCLES_PER_ELEMENT * max(1, n) * max(1, n.bit_length()))
        frame.send(k, tuple(sorted(values)))
        return
    mid = n // 2
    join = frame.successor(merge_task, k)
    frame.spawn(sort_task, join.cont(1), values[:mid])
    frame.spawn(sort_task, join.cont(2), values[mid:])


@program.thread
def merge_task(frame, k, left, right):
    """Merge two sorted runs."""
    frame.work(CYCLES_PER_ELEMENT * (len(left) + len(right)))
    merged = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i]); i += 1
        else:
            merged.append(right[j]); j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    frame.send(k, tuple(merged))


def mergesort_job(values) -> JobProgram:
    return JobProgram(program, sort_task, (tuple(values),), name="mergesort")


rng = random.Random(99)
data = [rng.randrange(1_000_000) for _ in range(4096)]

print("Parallel mergesort of 4096 integers on 8 simulated workstations")
print("=" * 64)
result = run_job(mergesort_job(data), n_workers=8, seed=1)
assert list(result.result) == sorted(data), "must equal Python's sorted()"
print(f"sorted correctly        : True")
print(f"tasks executed          : {result.stats.tasks_executed}")
print(f"tasks stolen            : {result.stats.tasks_stolen}")
print(f"simulated time (8 mach.): {result.stats.average_execution_time * 1000:.1f} ms")

one = run_job(mergesort_job(data), n_workers=1, seed=1)
print(f"simulated time (1 mach.): {one.stats.average_execution_time * 1000:.1f} ms")
print(f"speedup                 : "
      f"{one.stats.execution_times[0] / result.stats.average_execution_time:.2f}x")
