#!/usr/bin/env python3
"""Protein folding: the paper's headline application, end to end.

Enumerates every folding of an HP-model polymer on the 2D lattice,
histograms the fold energies (exactly what the Joerg/Pande application
computed), reports the ground-state energy, and shows the near-linear
speedup of Figures 4/5 on a scaled workload.

Run:  python examples/protein_folding.py
"""

from repro import run_job
from repro.apps.pfold import BENCHMARK_20MER, fold_energy, pfold_job, pfold_serial

# A 14-mer prefix of the standard 20-mer benchmark: large enough to be
# interesting (~600k foldings), small enough to enumerate in seconds.
SEQUENCE = BENCHMARK_20MER[:14]

print(f"Folding {SEQUENCE!r} ({len(SEQUENCE)} monomers) on the square lattice")
print("=" * 64)

serial = pfold_serial(SEQUENCE)
histogram = serial.result
ground = min(histogram.counts)
print(f"foldings enumerated : {histogram.total():,}")
print(f"energy histogram    :")
for energy, count in histogram.items():
    bar = "#" * max(1, round(40 * count / histogram.total()))
    print(f"  E={energy:3d}  {count:10,}  {bar}")
print(f"ground-state energy : {ground} "
      f"({histogram.counts[ground]:,} optimal foldings)")

print()
print("Parallel runs (simulated SparcStation-1 network):")
t1 = None
for p in (1, 2, 4, 8):
    result = run_job(pfold_job(SEQUENCE), n_workers=p, seed=7)
    assert result.result == histogram, "distributed histogram must be exact"
    times = result.stats.execution_times
    if p == 1:
        t1 = times[0]
    speedup = result.stats.speedup_vs(t1)
    print(f"  P={p}: time={result.stats.average_execution_time:8.2f}s  "
          f"speedup={speedup:5.2f}  steals={result.stats.tasks_stolen:4d}  "
          f"messages={result.stats.messages_sent}")

print()
print("The histogram is bitwise identical no matter how many machines")
print("participated or which tasks were stolen — determinism by merge.")
