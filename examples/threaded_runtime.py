#!/usr/bin/env python3
"""The scheduler on real threads: repro.rt.WorkStealingPool.

The rest of this repository simulates Phish to reproduce the paper's
measurements; this pool *executes* the same discipline — per-worker
deques, LIFO local execution, FIFO steals from random victims, helping
joins — on OS threads.  CPython's GIL means pure-Python tasks won't go
faster with more threads (the known fidelity limit of a Python
reproduction); what this demonstrates is that the algorithm is a real,
deadlock-free scheduler, with the same locality signature: steals stay
rare.

Run:  python examples/threaded_runtime.py
"""

import time

from repro.rt import WorkStealingPool

CUTOFF = 12


def fib(pool, n):
    """Fork-join fib with a sequential cutoff (grain-size control)."""
    if n < CUTOFF:
        if n < 2:
            return n
        a, b = 0, 1
        for _ in range(n - 1):
            a, b = b, a + b
        return b
    child = pool.spawn(fib, pool, n - 1)  # stealable
    mine = fib(pool, n - 2)               # work-first: run one inline
    return pool.join(child) + mine        # helping join


def quicksort(pool, values, depth=0):
    """Parallel quicksort: partitions become stealable tasks."""
    if len(values) < 128 or depth > 6:
        return sorted(values)
    pivot = values[len(values) // 2]
    left = [v for v in values if v < pivot]
    mid = [v for v in values if v == pivot]
    right = [v for v in values if v > pivot]
    lf = pool.spawn(quicksort, pool, left, depth + 1)
    rs = quicksort(pool, right, depth + 1)
    return pool.join(lf) + mid + rs


with WorkStealingPool(n_workers=4, seed=7) as pool:
    print("Work stealing on 4 real threads")
    print("=" * 40)

    t0 = time.perf_counter()
    answer = pool.run(fib, pool, 28)
    dt = time.perf_counter() - t0
    print(f"fib(28) = {answer}  ({dt * 1000:.0f} ms wall)")
    print(f"  tasks executed: {pool.tasks_executed}")
    print(f"  tasks stolen  : {pool.tasks_stolen}  "
          f"({pool.tasks_stolen / max(1, pool.tasks_executed):.2%} of tasks)")

    import random
    data = [random.Random(5).randrange(10 ** 6) for _ in range(20_000)]
    rng = random.Random(5)
    data = [rng.randrange(10 ** 6) for _ in range(20_000)]
    result = pool.run(quicksort, pool, data)
    print(f"quicksort(20k) correct: {result == sorted(data)}")

print("\n(The GIL caps thread *throughput*; the locality signature —")
print("rare steals, LIFO depth-first execution — is the algorithm's.)")
