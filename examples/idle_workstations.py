#!/usr/bin/env python3
"""The full Phish system: harvesting idle workstations with owner churn.

Models the scenario of the paper's Figure 2: a building full of
workstations whose owners come and go, a PhishJobQ holding the pool of
parallel jobs, and a PhishJobManager daemon on every machine that joins
computations when its owner leaves and kills the worker (after
migrating its tasks) within seconds of the owner's return.

Run:  python examples/idle_workstations.py
"""

from repro.apps.nqueens import KNOWN_COUNTS, nqueens_job
from repro.apps.pfold import pfold_job, pfold_serial
from repro.cluster.owner import RenewalOwnerTrace
from repro.macro import PhishSystem, PhishSystemConfig

N_MACHINES = 10

# Owners alternate busy/idle periods (exponential, mean 40s busy / 80s
# idle — compressed "office hours" so the demo finishes quickly).
def owner_trace(rng, host):
    return RenewalOwnerTrace(rng, busy_mean_s=40.0, idle_mean_s=80.0,
                             start_busy_prob=0.4)


system = PhishSystem(
    PhishSystemConfig(n_workstations=N_MACHINES, seed=2024, owner_trace=owner_trace)
)

print(f"Phish network: {N_MACHINES} workstations, owners coming and going")
print("=" * 62)

pfold = system.submit(pfold_job("HPHPPHHPHPPH", work_scale=80.0), from_host="ws00")
queens = system.submit(nqueens_job(9), from_host="ws01")
print("submitted: pfold (12-mer) from ws00, nqueens(9) from ws01")

system.run_until_done(timeout_s=36000)

expected = pfold_serial("HPHPPHHPHPPH").result
print(f"\npfold histogram correct : {pfold.result == expected}")
print(f"nqueens(9)              : {queens.result} (expected {KNOWN_COUNTS[9]})")
print(f"all jobs finished at    : t={system.sim.now:.1f}s simulated")

print("\nper-workstation activity:")
print(f"{'machine':10s} {'workers started':>16s} {'reclaimed by owner':>20s}")
for name, jm in sorted(system.jobmanagers.items()):
    print(f"{name:10s} {jm.jobs_started:16d} {jm.workers_reclaimed:20d}")

reclaims = sum(jm.workers_reclaimed for jm in system.jobmanagers.values())
print(f"\nOwners reclaimed machines {reclaims} time(s); every reclaimed worker")
print("migrated its tasks to a peer first, and both answers stayed exact.")
