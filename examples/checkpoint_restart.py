#!/usr/bin/env python3
"""Checkpoint/restart: surviving outages the redo protocol cannot.

Section 6 of the paper lists "support for checkpointing" among Phish's
planned extensions; this repository implements it.  The per-steal redo
protocol survives individual machine crashes, but a whole-site outage
(power loss, network partition of everything at once) takes the
redundant state down with the work.  Checkpointing fixes that:

1. the coordinator pauses every worker between tasks,
2. waits for in-flight messages to land (bounded on the simulated LAN),
3. collects each worker's ready list + suspended closures + id counter,
4. resumes everyone.

The snapshot is tiny — live closures, not task history — and a fresh
cluster restored from it finishes with the bit-exact answer.

Run:  python examples/checkpoint_restart.py
"""

from repro.apps.pfold import pfold_job, pfold_serial
from repro.baselines.serial import execute_serially
from repro.fault.checkpoint import checkpoint_and_kill_run

SEQ = "HPHPPHHPHPPH"
SCALE = 60.0

job = pfold_job(SEQ, work_scale=SCALE)
expected = pfold_serial(SEQ, work_scale=SCALE).result
total_tasks = execute_serially(pfold_job(SEQ, work_scale=SCALE)).tasks_executed

print("pfold on 4 machines; site outage at t=4s; restart from checkpoint")
print("=" * 66)

checkpoint, restored = checkpoint_and_kill_run(job, 4, checkpoint_at_s=4.0, seed=3)

print(f"checkpoint taken at     : t={checkpoint.taken_at:.2f}s simulated")
print(f"snapshot size           : {checkpoint.live_closures} live closures "
      f"across {len(checkpoint.workers)} machines")
for name, state in sorted(checkpoint.workers.items()):
    print(f"  {name}: {len(state.ready):3d} ready, {len(state.suspended):3d} "
          f"suspended, next closure id {state.seq}")

print(f"\nrestored run            : {restored.stats.tasks_executed:,} of "
      f"{total_tasks:,} total tasks (the prefix was not redone)")
print(f"restored makespan       : {restored.makespan:.2f}s simulated")
print(f"histogram exact         : {restored.result == expected}")
