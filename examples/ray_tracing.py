#!/usr/bin/env python3
"""Ray tracing: render a scene across the workstation network.

The paper: "simply typing `ray my-scene` will run our parallel ray
tracer on the data given in the file my-scene" — the Clearinghouse and
first worker start locally, idle machines join, and the rendered image
comes back through the result continuation.  This example does exactly
that: it loads a scene file, renders it on 8 simulated machines,
verifies the image is pixel-identical to a serial render, and writes a
PPM you can open with any viewer.

Run:  python examples/ray_tracing.py [scene-file] [out.ppm]
      (default scene: examples/scenes/cornell-ish.scene)
"""

import os
import sys

from repro import run_job
from repro.apps.ray import load_scene, ray_job, ray_serial

WIDTH, HEIGHT = 96, 72

scene_path = (
    sys.argv[1]
    if len(sys.argv) > 1
    else os.path.join(os.path.dirname(__file__), "scenes", "cornell-ish.scene")
)
scene = load_scene(scene_path)
print(f"ray {os.path.basename(scene_path)}  ({WIDTH}x{HEIGHT}, "
      f"{len(scene.objects)} objects, {len(scene.lights)} lights)")
print("=" * 60)

serial = ray_serial(scene=scene, width=WIDTH, height=HEIGHT)
result = run_job(ray_job(scene=scene, width=WIDTH, height=HEIGHT),
                 n_workers=8, seed=3)
image = result.result

exact = all(image[y] == serial.result[y] for y in range(HEIGHT))
print(f"parallel render pixel-identical to serial: {exact}")
print(f"tasks={result.stats.tasks_executed}  steals={result.stats.tasks_stolen}  "
      f"messages={result.stats.messages_sent}")
print(f"simulated render time on 8 machines: "
      f"{result.stats.average_execution_time:.2f}s")

out_path = sys.argv[2] if len(sys.argv) > 2 else "render.ppm"
with open(out_path, "w") as fh:
    fh.write(f"P3\n{WIDTH} {HEIGHT}\n255\n")
    for y in range(HEIGHT):
        fh.write(
            " ".join(
                f"{round(255 * r)} {round(255 * g)} {round(255 * b)}"
                for r, g, b in image[y]
            )
            + "\n"
        )
print(f"wrote {out_path}")
