#!/usr/bin/env python3
"""Fault tolerance: machines die mid-computation, the answer survives.

"Phish is fault tolerant.  Enough redundant state is maintained so that
lost work can be redone in the event of a machine crash."  This example
crashes two of eight machines while pfold runs, watches the
Clearinghouse detect the deaths through missed heartbeats, and shows
the victims regenerating the stolen subcomputations — the final
histogram is exact.

Run:  python examples/fault_tolerance.py
"""

from repro.apps.pfold import pfold_job, pfold_serial
from repro.fault import CrashPlan, run_job_with_crashes
from repro.phish import run_job

SEQ = "HPHPPHHPHPPH"
SCALE = 60.0

expected = pfold_serial(SEQ, work_scale=SCALE).result

print("pfold on 8 machines, crashing ws03 at t=5s and ws05 at t=9s")
print("=" * 60)

clean = run_job(pfold_job(SEQ, work_scale=SCALE), n_workers=8, seed=5)
print(f"no crashes : makespan={clean.makespan:6.2f}s  correct={clean.result == expected}")

plan = CrashPlan([(5.0, 3), (9.0, 5)])
crashed = run_job_with_crashes(pfold_job(SEQ, work_scale=SCALE), 8, plan, seed=5)
redone = sum(w.tasks_redone for w in crashed.stats.workers)
dups = sum(w.duplicate_sends for w in crashed.stats.workers)
reasons = [w.exit_reason for w in crashed.workers]

print(f"2 crashes  : makespan={crashed.makespan:6.2f}s  "
      f"correct={crashed.result == expected}")
print(f"             tasks redone={redone}  duplicate sends dropped={dups}")
print(f"             worker exits: {reasons}")
print()
print("The redo protocol: every steal victim keeps a copy of what each")
print("thief took; when the Clearinghouse's heartbeat detector declares a")
print("worker dead, its victims re-enqueue those copies.  Results the dead")
print("worker had already sent show up again as duplicates and are dropped")
print("at the receiving argument slot — so the histogram is exact, not")
print("approximately right.")
