"""Split-phase RPC over unreliable datagrams.

The paper: "almost all communications are done with split-phase
operations ... all communications are implemented on top of UDP/IP
messages."  This module provides the request/reply discipline used by
the PhishJobQ and the Clearinghouse: the caller opens an ephemeral
socket, sends a request, and waits for the reply *or* a retransmission
timer — so lost datagrams are retried, and the caller's process is free
to structure waiting however it likes (``rpc_call`` is itself a
generator to be driven with ``yield from``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator

from repro.errors import RpcError
from repro.net.message import DEFAULT_SIZE_BYTES
from repro.net.network import Network
from repro.net.socket import Socket
from repro.sim.events import AnyOf

#: Default retransmission timer and attempt budget.  The PhishJobManager
#: retries every 30 s anyway, so a small budget suffices.
DEFAULT_TIMEOUT_S = 2.0
DEFAULT_RETRIES = 4


@dataclass(frozen=True)
class _Request:
    req_id: int
    method: str
    args: Any


@dataclass(frozen=True)
class _Reply:
    req_id: int
    ok: bool
    value: Any


class RpcServer:
    """Serves named methods on a well-known port.

    Handlers are plain functions ``handler(args, msg) -> reply`` (the
    message gives access to the caller's address); a handler raising an
    exception produces an error reply that re-raises at the caller as
    :class:`RpcError`.  Duplicate requests (retransmissions of a request
    already answered) are answered from a reply cache so that handlers
    observe at-most-once execution despite at-least-once delivery.
    """

    def __init__(self, network: Network, host: str, port: int, name: str = "rpc") -> None:
        self.network = network
        self.host = host
        self.name = name
        self.socket = Socket(network, host, port)
        self._handlers: Dict[str, Callable[[Any, Any], Any]] = {}
        self._reply_cache: Dict[tuple, _Reply] = {}
        self._proc = network.sim.process(self._serve(), name=f"{name}@{host}:{port}")
        #: Number of requests actually executed (cache hits excluded).
        self.requests_served = 0

    def register(self, method: str, handler: Callable[[Any, Any], Any]) -> None:
        """Expose *handler* under *method*."""
        if method in self._handlers:
            raise RpcError(f"method {method!r} already registered on {self.name}")
        self._handlers[method] = handler

    def stop(self) -> None:
        """Shut the server down and release its port."""
        self._proc.interrupt("rpc-server-stop")
        self.socket.close()

    def _serve(self) -> Generator:
        from repro.sim.core import Interrupt

        try:
            while True:
                msg = yield self.socket.recv()
                req = msg.payload
                if not isinstance(req, _Request):
                    continue  # stray datagram; UDP semantics say ignore
                cache_key = (msg.src, msg.src_port, req.req_id)
                reply = self._reply_cache.get(cache_key)
                if reply is None:
                    handler = self._handlers.get(req.method)
                    if handler is None:
                        reply = _Reply(req.req_id, False, f"no such method {req.method!r}")
                    else:
                        try:
                            self.requests_served += 1
                            reply = _Reply(req.req_id, True, handler(req.args, msg))
                        except Exception as exc:  # handler bug -> error reply
                            reply = _Reply(req.req_id, False, f"{type(exc).__name__}: {exc}")
                    self._reply_cache[cache_key] = reply
                yield self.socket.sendto(reply, msg.src, msg.src_port)
        except Interrupt:
            return


def rpc_call(
    network: Network,
    src_host: str,
    dst: str,
    dst_port: int,
    method: str,
    args: Any = None,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    retries: int = DEFAULT_RETRIES,
    size_bytes: int = DEFAULT_SIZE_BYTES,
) -> Generator:
    """Call ``method(args)`` on the server at (dst, dst_port).

    A generator: drive it with ``result = yield from rpc_call(...)``
    inside a simulation process.  Retransmits on timeout; raises
    :class:`RpcError` after the retry budget is exhausted or if the
    handler errored.
    """
    sim = network.sim
    sock = Socket(network, src_host, port=None)  # ephemeral
    try:
        req = _Request(req_id=sock.port, method=method, args=args)
        for _attempt in range(1 + retries):
            yield sock.sendto(req, dst, dst_port, size_bytes=size_bytes)
            deadline = sim.timeout(timeout_s)
            while True:
                got = sock.recv()
                settled = yield AnyOf(sim, [got, deadline])
                if got in settled:
                    reply = settled[got].payload
                    if isinstance(reply, _Reply) and reply.req_id == req.req_id:
                        if reply.ok:
                            return reply.value
                        raise RpcError(f"{method} at {dst}:{dst_port} failed: {reply.value}")
                    continue  # stray or stale datagram; keep waiting
                sock.cancel_recv(got)
                break  # timed out -> retransmit
        raise RpcError(
            f"{method} at {dst}:{dst_port}: no reply after {1 + retries} attempts"
        )
    finally:
        sock.close()


class RpcClient:
    """Convenience wrapper binding the static arguments of :func:`rpc_call`."""

    def __init__(
        self,
        network: Network,
        src_host: str,
        dst: str,
        dst_port: int,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        retries: int = DEFAULT_RETRIES,
    ) -> None:
        self.network = network
        self.src_host = src_host
        self.dst = dst
        self.dst_port = dst_port
        self.timeout_s = timeout_s
        self.retries = retries

    def call(self, method: str, args: Any = None) -> Generator:
        """``yield from client.call("method", args)`` inside a process."""
        return rpc_call(
            self.network,
            self.src_host,
            self.dst,
            self.dst_port,
            method,
            args,
            timeout_s=self.timeout_s,
            retries=self.retries,
        )
