"""The datagram record exchanged over the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Default payload size when the sender does not specify one.  The paper's
#: messages (steal requests/replies, argument sends, registrations) are
#: small control messages; 64 bytes is a representative envelope.
DEFAULT_SIZE_BYTES = 64


@dataclass(frozen=True)
class Message:
    """One UDP-like datagram.

    Attributes:
        src: sending host name.
        src_port: sending port (where replies should go).
        dst: destination host name.
        dst_port: destination port.
        payload: arbitrary Python object (the simulation does not
            serialise; ``size_bytes`` stands in for the wire size).
        size_bytes: simulated wire size, used for the bandwidth term.
        msg_id: unique id assigned by the network at transmit time.
        sent_at: simulated time the datagram entered the network.
    """

    src: str
    src_port: int
    dst: str
    dst_port: int
    payload: Any
    size_bytes: int = DEFAULT_SIZE_BYTES
    msg_id: int = field(default=-1, compare=False)
    sent_at: float = field(default=0.0, compare=False)

    def reply_addr(self) -> tuple[str, int]:
        """(host, port) to which a reply should be sent."""
        return (self.src, self.src_port)
