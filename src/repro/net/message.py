"""The datagram record exchanged over the simulated network."""

from __future__ import annotations

from typing import Any

#: Default payload size when the sender does not specify one.  The paper's
#: messages (steal requests/replies, argument sends, registrations) are
#: small control messages; 64 bytes is a representative envelope.
DEFAULT_SIZE_BYTES = 64


class Message:
    """One UDP-like datagram.

    A plain slotted class rather than a dataclass: the network allocates
    one of these per transmitted datagram, which makes construction a hot
    path.  Treat instances as immutable — the network hands the *same*
    object to tracing hooks and the receiving socket.

    Equality compares the addressing fields and payload; ``msg_id`` and
    ``sent_at`` are bookkeeping stamped by the network and excluded, so a
    retransmission compares equal to the original.

    Attributes:
        src: sending host name.
        src_port: sending port (where replies should go).
        dst: destination host name.
        dst_port: destination port.
        payload: arbitrary Python object (the simulation does not
            serialise; ``size_bytes`` stands in for the wire size).
        size_bytes: simulated wire size, used for the bandwidth term.
        msg_id: unique id assigned by the network at transmit time.
        sent_at: simulated time the datagram entered the network.
    """

    __slots__ = ("src", "src_port", "dst", "dst_port", "payload",
                 "size_bytes", "msg_id", "sent_at")

    def __init__(
        self,
        src: str,
        src_port: int,
        dst: str,
        dst_port: int,
        payload: Any,
        size_bytes: int = DEFAULT_SIZE_BYTES,
        msg_id: int = -1,
        sent_at: float = 0.0,
    ) -> None:
        self.src = src
        self.src_port = src_port
        self.dst = dst
        self.dst_port = dst_port
        self.payload = payload
        self.size_bytes = size_bytes
        self.msg_id = msg_id
        self.sent_at = sent_at

    def reply_addr(self) -> tuple[str, int]:
        """(host, port) to which a reply should be sent."""
        return (self.src, self.src_port)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Message)
            and other.src == self.src
            and other.src_port == self.src_port
            and other.dst == self.dst
            and other.dst_port == self.dst_port
            and other.payload == self.payload
            and other.size_bytes == self.size_bytes
        )

    def __repr__(self) -> str:
        return (
            f"Message(src={self.src!r}, src_port={self.src_port!r}, "
            f"dst={self.dst!r}, dst_port={self.dst_port!r}, "
            f"payload={self.payload!r}, size_bytes={self.size_bytes!r}, "
            f"msg_id={self.msg_id!r}, sent_at={self.sent_at!r})"
        )
