"""UDP-like sockets over the simulated network."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import NetworkError
from repro.net.message import DEFAULT_SIZE_BYTES, Message
from repro.net.network import Network
from repro.sim.core import Event
from repro.sim.resources import Channel


class Socket:
    """A bound (host, port) endpoint with a receive queue.

    Sockets are cheap; protocol code typically opens an ephemeral socket
    per conversation (see :func:`repro.net.rpc.rpc_call`).
    """

    def __init__(self, network: Network, host: str, port: Optional[int] = None) -> None:
        """Bind a socket on *host*.

        Args:
            network: the network to bind on.
            host: host name.
            port: well-known port number, or None for an ephemeral port.
        """
        self.network = network
        self.host = host
        self.port = network.alloc_port(host) if port is None else int(port)
        self._queue = Channel(network.sim)
        self._closed = False
        network.bind(self)

    @property
    def addr(self) -> Tuple[str, int]:
        """This socket's (host, port) address."""
        return (self.host, self.port)

    @property
    def pending(self) -> int:
        """Number of datagrams queued for receipt."""
        return len(self._queue)

    def sendto(
        self,
        payload,
        dst: str,
        dst_port: int,
        size_bytes: int = DEFAULT_SIZE_BYTES,
    ) -> Event:
        """Transmit a datagram; yield the returned event to pay the
        sender-side software overhead (split-phase: delivery is async)."""
        if self._closed:
            raise NetworkError(f"sendto on closed socket {self.addr}")
        return self.network.transmit(self.host, self.port, dst, dst_port, payload, size_bytes)

    def recv(self) -> Event:
        """Event that succeeds with the next :class:`Message`."""
        if self._closed:
            raise NetworkError(f"recv on closed socket {self.addr}")
        return self._queue.recv()

    def cancel_recv(self, event: Event) -> bool:
        """Withdraw a pending :meth:`recv` (e.g. after a timeout raced it)."""
        return self._queue.cancel_get(event)

    def try_recv(self) -> Tuple[bool, Optional[Message]]:
        """Non-blocking receive: ``(True, msg)`` or ``(False, None)``.

        This is the polling primitive: the paper's workers poll the
        network between task executions rather than blocking.
        """
        if self._closed:
            raise NetworkError(f"try_recv on closed socket {self.addr}")
        ok, item = self._queue.try_get()
        return (ok, item)

    def buffered_messages(self) -> list:
        """Snapshot of delivered-but-not-yet-received datagrams.

        Crash accounting uses this: when a worker fail-stops, closures
        sitting in its receive buffer are lost exactly like closures in
        its deque, and the invariant checker must see them accounted.
        """
        return list(self._queue.items)

    def close(self) -> None:
        """Unbind; queued and future datagrams to this port are dropped."""
        if not self._closed:
            self._closed = True
            self.network.unbind(self)

    def _enqueue(self, msg: Message) -> None:
        if not self._closed:
            self._queue.send(msg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"pending={self.pending}"
        return f"<Socket {self.host}:{self.port} {state}>"
