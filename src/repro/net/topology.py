"""Network topologies: who pays which link costs to reach whom.

The 1994 evaluation ran on a single Ethernet segment, which
:class:`UniformTopology` models.  The paper's *future work* section
proposes scheduling that is aware of heterogeneous network capability
("preserve locality with respect to those network cuts that have the
least bandwidth"); :class:`SegmentedTopology` provides exactly that
substrate — several LAN segments joined by a slower backbone — and is
used by the heterogeneity ablation bench.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import NetworkError
from repro.net.network import NetworkParams


class Topology:
    """Maps an (src_host, dst_host) pair to the link parameters it pays."""

    def params_for(self, src: str, dst: str) -> NetworkParams:
        raise NotImplementedError

    def segment_of(self, host: str) -> str:
        """Name of the segment a host lives on (single segment by default)."""
        return "lan0"


class UniformTopology(Topology):
    """Every pair of hosts communicates with the same link parameters."""

    def __init__(self, params: NetworkParams) -> None:
        self.params = params

    def params_for(self, src: str, dst: str) -> NetworkParams:
        return self.params


class SegmentedTopology(Topology):
    """Hosts grouped into LAN segments joined by a slower backbone.

    Intra-segment traffic pays ``intra``; traffic crossing segments pays
    ``inter`` (typically higher latency / lower bandwidth — the "least
    bandwidth cut" of the paper's future-work discussion).
    """

    def __init__(
        self,
        segment_of: Mapping[str, str],
        intra: NetworkParams,
        inter: NetworkParams,
    ) -> None:
        self._segment_of: Dict[str, str] = dict(segment_of)
        self.intra = intra
        self.inter = inter

    def add_host(self, host: str, segment: str) -> None:
        """Place *host* on *segment* (hosts may be added as they appear)."""
        self._segment_of[host] = segment

    def segment_of(self, host: str) -> str:
        try:
            return self._segment_of[host]
        except KeyError:
            raise NetworkError(f"host {host!r} is not placed on any segment") from None

    def params_for(self, src: str, dst: str) -> NetworkParams:
        return self.intra if self.segment_of(src) == self.segment_of(dst) else self.inter
