"""Network topologies: who pays which link costs to reach whom.

The 1994 evaluation ran on a single Ethernet segment, which
:class:`UniformTopology` models.  The paper's *future work* section
proposes scheduling that is aware of heterogeneous network capability
("preserve locality with respect to those network cuts that have the
least bandwidth"); :class:`SegmentedTopology` provides exactly that
substrate — several LAN segments joined by a slower backbone — and is
used by the heterogeneity ablation bench.

:class:`DynamicTopology` layers *time-varying* behaviour on any base
topology: per-host straggler multipliers, :class:`CongestionSpike`
windows that inflate link latency, and :class:`PartitionWindow`\\ s
during which an island of hosts is unreachable from the rest of the
cluster (and heals afterwards).  It is the substrate for the
latency-aware stealing experiments and the partition/spike fuzzer
scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.net.network import NetworkParams


class Topology:
    """Maps an (src_host, dst_host) pair to the link parameters it pays."""

    def params_for(self, src: str, dst: str) -> NetworkParams:
        raise NotImplementedError

    def segment_of(self, host: str) -> str:
        """Name of the segment a host lives on (single segment by default)."""
        return "lan0"

    def is_reachable(self, src: str, dst: str) -> bool:
        """Whether a datagram sent now from *src* can reach *dst*.

        Static topologies are always fully connected; only dynamic
        topologies (partitions) override this.  The network layer skips
        the call entirely unless it is overridden, keeping the static
        hot path free of it.
        """
        return True


class UniformTopology(Topology):
    """Every pair of hosts communicates with the same link parameters."""

    def __init__(self, params: NetworkParams) -> None:
        self.params = params

    def params_for(self, src: str, dst: str) -> NetworkParams:
        return self.params


class SegmentedTopology(Topology):
    """Hosts grouped into LAN segments joined by a slower backbone.

    Intra-segment traffic pays ``intra``; traffic crossing segments pays
    ``inter`` (typically higher latency / lower bandwidth — the "least
    bandwidth cut" of the paper's future-work discussion).
    """

    def __init__(
        self,
        segment_of: Mapping[str, str],
        intra: NetworkParams,
        inter: NetworkParams,
    ) -> None:
        self._segment_of: Dict[str, str] = dict(segment_of)
        self.intra = intra
        self.inter = inter

    def add_host(self, host: str, segment: str) -> None:
        """Place *host* on *segment* (hosts may be added as they appear)."""
        self._segment_of[host] = segment

    def segment_of(self, host: str) -> str:
        try:
            return self._segment_of[host]
        except KeyError:
            raise NetworkError(f"host {host!r} is not placed on any segment") from None

    def params_for(self, src: str, dst: str) -> NetworkParams:
        return self.intra if self.segment_of(src) == self.segment_of(dst) else self.inter


@dataclass(frozen=True)
class CongestionSpike:
    """Latency on (some or all) links is multiplied during a window.

    ``segment=None`` congests every link; otherwise only links with an
    endpoint on that segment pay the factor.  Overlapping spikes
    compound multiplicatively.
    """

    start_s: float
    end_s: float
    factor: float
    segment: Optional[str] = None

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise NetworkError(
                f"spike window must have end > start, got "
                f"[{self.start_s}, {self.end_s}]")
        if self.factor < 1.0:
            raise NetworkError(
                f"spike factor must be >= 1 (it models congestion, not "
                f"acceleration), got {self.factor}")

    def active_at(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


@dataclass(frozen=True)
class PartitionWindow:
    """An island of hosts is cut off from the rest, then heals.

    While active, any datagram with exactly one endpoint inside
    ``island`` is dropped by the network (both directions).  Traffic
    wholly inside or wholly outside the island is unaffected.
    """

    start_s: float
    end_s: float
    island: FrozenSet[str]

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise NetworkError(
                f"partition window must have end > start, got "
                f"[{self.start_s}, {self.end_s}]")
        if not self.island:
            raise NetworkError("partition island must name at least one host")
        object.__setattr__(self, "island", frozenset(self.island))

    def active_at(self, now: float) -> bool:
        return self.start_s <= now < self.end_s

    def severs(self, src: str, dst: str) -> bool:
        return (src in self.island) != (dst in self.island)


class DynamicTopology(Topology):
    """Time-varying behaviour layered over a static base topology.

    * ``stragglers`` — per-host latency multipliers; a link pays the
      product of both endpoints' factors (a straggler is slow to talk
      *and* to be talked to).
    * ``spikes`` — :class:`CongestionSpike` windows scaling latency.
    * ``partitions`` — :class:`PartitionWindow`\\ s during which
      cross-island traffic is unreachable.

    ``clock`` supplies the current simulation time (wire it to
    ``sim.now``).  Scaled :class:`NetworkParams` are cached per
    (base params, factor), so steady factors cost one dict hit per
    send rather than an allocation.
    """

    def __init__(
        self,
        base: Topology,
        clock: Callable[[], float],
        spikes: Sequence[CongestionSpike] = (),
        partitions: Sequence[PartitionWindow] = (),
        stragglers: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.base = base
        self.clock = clock
        self.spikes = tuple(spikes)
        self.partitions = tuple(partitions)
        self.stragglers: Dict[str, float] = dict(stragglers or {})
        for host, factor in self.stragglers.items():
            if factor < 1.0:
                raise NetworkError(
                    f"straggler factor for {host!r} must be >= 1, got {factor}")
        self._scaled: Dict[Tuple[NetworkParams, float], NetworkParams] = {}

    def segment_of(self, host: str) -> str:
        return self.base.segment_of(host)

    def _latency_factor(self, src: str, dst: str, now: float) -> float:
        factor = (self.stragglers.get(src, 1.0)
                  * self.stragglers.get(dst, 1.0))
        for spike in self.spikes:
            if spike.active_at(now) and (
                    spike.segment is None
                    or spike.segment in (self.base.segment_of(src),
                                         self.base.segment_of(dst))):
                factor *= spike.factor
        return factor

    def params_for(self, src: str, dst: str) -> NetworkParams:
        params = self.base.params_for(src, dst)
        factor = self._latency_factor(src, dst, self.clock())
        if factor == 1.0:
            return params
        key = (params, factor)
        scaled = self._scaled.get(key)
        if scaled is None:
            scaled = replace(
                params,
                wire_latency_s=params.wire_latency_s * factor,
                jitter_s=params.jitter_s * factor,
            )
            self._scaled[key] = scaled
        return scaled

    def is_reachable(self, src: str, dst: str) -> bool:
        now = self.clock()
        for window in self.partitions:
            if window.active_at(now) and window.severs(src, dst):
                return False
        return True
