"""Simulated workstation-network substrate.

Models the communication environment the paper runs on: UDP/IP datagrams
over a shared LAN, with the two costs the paper calls out as the key
weakness of workstation networks versus supercomputer interconnects —
large *per-message software overhead* and modest *bandwidth* — plus
propagation latency, optional jitter, and optional loss (datagrams are
unreliable; the RPC layer retransmits).

Public surface: :class:`Message`, :class:`NetworkParams`,
:class:`Network`, :class:`Socket`, :class:`RpcServer`, :func:`rpc_call`,
topologies in :mod:`repro.net.topology`.
"""

from repro.net.message import Message
from repro.net.network import Network, NetworkParams
from repro.net.rpc import RpcServer, rpc_call
from repro.net.socket import Socket
from repro.net.topology import SegmentedTopology, Topology, UniformTopology

__all__ = [
    "Message",
    "Network",
    "NetworkParams",
    "Socket",
    "RpcServer",
    "rpc_call",
    "Topology",
    "UniformTopology",
    "SegmentedTopology",
]
