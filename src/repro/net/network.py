"""The simulated network: cost model, delivery, loss, and counters.

Delivery of one datagram costs::

    send_overhead            (sender-side software overhead, busies sender CPU)
    + wire_latency + size/bandwidth (+ jitter)     (in-flight)
    + recv_overhead          (receiver-side software overhead, busies receiver CPU)

The per-message software overhead is the term the paper singles out as
"often at least two orders of magnitude greater" on workstations than on
a parallel supercomputer; platform profiles in :mod:`repro.cluster`
instantiate it per machine type.

Message counters are the raw data behind the "Messages sent" row of the
paper's Table 2.

Hot-path notes: a transmitted datagram used to cost two kernel events
(delivery plus the sender-overhead completion) and a fresh closure per
delivery callback.  Delivery now rides a preallocated-shape
:class:`_DeliveryEvent` (slotted, shared callback tuple, no lambda), and
:meth:`Network.post` is a fire-and-forget variant of :meth:`Network.transmit`
for the many call sites that never wait on the sender-overhead event —
it skips that event entirely, halving kernel traffic for one-way sends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.errors import AddressError, NetworkError
from repro.net.message import Message
from repro.sim.core import NORMAL, Event, Simulator
from repro.util.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.socket import Socket


@dataclass(frozen=True)
class NetworkParams:
    """Link cost parameters (seconds and bytes/second).

    Defaults approximate mid-1990s Ethernet + UDP/IP as characterised in
    the paper's introduction: ~1 ms of software overhead per message end
    and ~10 Mbit/s shared bandwidth.
    """

    send_overhead_s: float = 1.0e-3
    recv_overhead_s: float = 1.0e-3
    wire_latency_s: float = 0.5e-3
    bandwidth_bytes_per_s: float = 1.25e6
    loss_prob: float = 0.0
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise NetworkError("bandwidth must be positive")
        if not (0.0 <= self.loss_prob < 1.0):
            raise NetworkError("loss_prob must be in [0, 1)")
        for name in ("send_overhead_s", "recv_overhead_s", "wire_latency_s", "jitter_s"):
            if getattr(self, name) < 0:
                raise NetworkError(f"{name} must be non-negative")

    def transfer_time(self, size_bytes: int) -> float:
        """In-flight time for a datagram of the given size (no overheads)."""
        return self.wire_latency_s + size_bytes / self.bandwidth_bytes_per_s


@dataclass
class NetCounters:
    """Aggregate and per-host message statistics."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_unroutable: int = 0
    #: Datagrams discarded because a partition window severed the link
    #: (see :class:`repro.net.topology.PartitionWindow`).
    dropped_partition: int = 0
    bytes_sent: int = 0
    #: Same-host datagrams (loopback): delivered but not "sent on the wire",
    #: so they do not count toward the paper's "Messages sent" statistic.
    local: int = 0
    sent_by_host: Dict[str, int] = field(default_factory=dict)
    received_by_host: Dict[str, int] = field(default_factory=dict)

    def messages_sent(self, host: Optional[str] = None) -> int:
        """Messages sent overall, or by one host."""
        if host is None:
            return self.sent
        return self.sent_by_host.get(host, 0)


class _DeliveryEvent(Event):
    """Internal event carrying one in-flight datagram (or several).

    Never exposed outside the network: its ``callbacks`` is a shared
    per-network tuple (the kernel only iterates callbacks and replaces
    the attribute with None), so constructing one allocates no list and
    no closure — and, because no caller can ever hold a reference, the
    object is recycled through a per-network free list after delivery.

    ``t`` is the absolute delivery time and ``more`` an optional list of
    extra ``(msg, params)`` pairs coalesced onto this event: sends that
    land at the same (time, destination) while this event is still the
    tail of its same-time queue position share one kernel event and are
    drained in send order (see :meth:`Network._send_wire`).
    """

    __slots__ = ("msg", "params", "more", "t")


#: Upper bound on the per-network delivery-event free list.
_EV_POOL_MAX = 256


class Network:
    """Connects sockets on named hosts; delivers datagrams with delay/loss.

    The network is intentionally unreliable (UDP semantics): datagrams to
    unbound ports or unknown hosts vanish, and ``loss_prob`` drops others
    at random.  Reliability, where needed, lives in :mod:`repro.net.rpc`.
    """

    def __init__(
        self,
        sim: Simulator,
        topology,
        rng: Optional[random.Random] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        from repro.net.topology import Topology  # local: avoid import cycle

        if not isinstance(topology, Topology):
            raise NetworkError(f"expected a Topology, got {topology!r}")
        self.sim = sim
        self.topology = topology
        self.rng = rng or random.Random(0)
        self.trace = trace
        self.counters = NetCounters()
        self._sockets: Dict[Tuple[str, int], "Socket"] = {}
        self._next_ephemeral: Dict[str, int] = {}
        self._next_msg_id = 0
        #: Optional per-host CPU accounting hooks: host -> charge(seconds).
        self._cpu_charge: Dict[str, Callable[[float], None]] = {}
        #: Hosts currently crashed (their sockets drop all traffic).
        self._down: set[str] = set()
        #: Optional hook ``on_drop(message, reason)`` called whenever a
        #: datagram is discarded (reason: "loss", "down", "unbound",
        #: "partition").  The invariant checker installs this to account
        #: for closures lost in flight; None in normal runs.
        self.on_drop: Optional[Callable[[Message, str], None]] = None
        #: True only when the topology overrides is_reachable (dynamic
        #: partitions); static topologies skip the reachability call on
        #: every send.
        self._check_reachability = (
            type(topology).is_reachable is not Topology.is_reachable)
        #: Shared callback tuples for delivery events (see _DeliveryEvent).
        self._deliver_cbs = (self._on_delivery,)
        self._deliver_local_cbs = (self._on_delivery_local,)
        #: Free list of recycled _DeliveryEvent objects.
        self._ev_pool: list = []
        #: Most recently enqueued delivery event + the queue-tail token
        #: taken right after its enqueue — the coalescing candidate.
        self._last_delivery: Optional[_DeliveryEvent] = None
        self._last_token = None
        #: Observability instruments (attach_metrics); None keeps the hot
        #: path at a single identity check per send/delivery.
        self._m_msg_latency = None
        self._m_inflight = None
        self._m_sent = None
        #: Health monitor (repro.obs.health): partition-drop detector.
        self._health = None
        #: Span profiler (repro.obs.prof): wire message/byte counters.
        self._prof = None

    def attach_metrics(self, registry) -> None:
        """Wire a :class:`~repro.obs.metrics.MetricsRegistry` in: message
        latency histogram (send to delivery, overheads included), an
        in-flight gauge, and a sent counter."""
        self._m_msg_latency = registry.histogram("net.msg.latency_s")
        self._m_inflight = registry.gauge("net.msg.inflight")
        self._m_sent = registry.counter("net.msg.sent.count")
        self._health = getattr(registry, "health", None)

    def attach_profiler(self, profiler) -> None:
        """Wire a :class:`~repro.obs.prof.SpanProfiler` in (wire-message
        and byte counters for the protocol-cost side of the profile)."""
        self._prof = profiler

    # -- host / socket management ------------------------------------------

    def attach_cpu(self, host: str, charge: Callable[[float], None]) -> None:
        """Register a CPU-time accounting hook for *host*.

        The network calls it with the send/recv software-overhead seconds
        so that workstation `rusage`-style accounting includes messaging
        cost, as real rusage did in the paper's measurements.
        """
        self._cpu_charge[host] = charge

    def bind(self, socket: "Socket") -> None:
        key = (socket.host, socket.port)
        if key in self._sockets:
            raise AddressError(f"port {socket.port} already bound on {socket.host!r}")
        self._sockets[key] = socket

    def unbind(self, socket: "Socket") -> None:
        self._sockets.pop((socket.host, socket.port), None)

    def alloc_port(self, host: str) -> int:
        """Allocate an ephemeral port number on *host* (never reused)."""
        port = self._next_ephemeral.get(host, 49152)
        self._next_ephemeral[host] = port + 1
        return port

    def set_host_down(self, host: str, down: bool = True) -> None:
        """Mark a host crashed/recovered; crashed hosts send and receive nothing."""
        if down:
            self._down.add(host)
        else:
            self._down.discard(host)

    def is_down(self, host: str) -> bool:
        return host in self._down

    # -- transmission -------------------------------------------------------

    def transmit(
        self,
        src: str,
        src_port: int,
        dst: str,
        dst_port: int,
        payload,
        size_bytes: int,
    ) -> Event:
        """Send one datagram.

        Returns an event that succeeds once the *sender-side* software
        overhead has elapsed (split-phase: the sender does not wait for
        delivery).  Delivery to the destination socket is scheduled
        independently.  Callers that never wait on the returned event
        should use :meth:`post` instead.
        """
        if self.is_down(src):
            # A crashed host cannot transmit; callers inside the host have
            # normally been interrupted already.  Succeed silently.
            ev = Event(self.sim)
            ev.succeed(None)
            return ev
        if src == dst:
            self._send_loopback(src, src_port, dst_port, payload, size_bytes)
            done = Event(self.sim)
            done.succeed(None, delay=self.LOOPBACK_S)
            return done
        params = self._send_wire(src, src_port, dst, dst_port, payload, size_bytes)
        done = Event(self.sim)
        done.succeed(None, delay=params.send_overhead_s)
        return done

    def post(
        self,
        src: str,
        src_port: int,
        dst: str,
        dst_port: int,
        payload,
        size_bytes: int,
    ) -> None:
        """Fire-and-forget :meth:`transmit`: same cost model and delivery
        schedule, but no sender-overhead completion event is created (the
        caller, by contract, would have discarded it)."""
        if self.is_down(src):
            return
        if src == dst:
            self._send_loopback(src, src_port, dst_port, payload, size_bytes)
        else:
            self._send_wire(src, src_port, dst, dst_port, payload, size_bytes)

    def _send_wire(
        self, src: str, src_port: int, dst: str, dst_port: int, payload, size_bytes: int
    ) -> NetworkParams:
        """Common wire-send path: counters, trace, loss, delivery event."""
        sim = self.sim
        params = self.topology.params_for(src, dst)
        self._next_msg_id += 1
        msg = Message(src, src_port, dst, dst_port, payload, size_bytes,
                      self._next_msg_id, sim.now)
        counters = self.counters
        counters.sent += 1
        counters.bytes_sent += size_bytes
        counters.sent_by_host[src] = counters.sent_by_host.get(src, 0) + 1
        if self.trace is not None:
            self.trace.emit(sim.now, "net.send", src, dst=dst, port=dst_port, id=msg.msg_id)
        if self._m_sent is not None:
            self._m_sent.inc()
        if self._prof is not None:
            self._prof.msg(size_bytes)

        charge = self._cpu_charge.get(src)
        if charge:
            charge(params.send_overhead_s)

        if self._check_reachability and not self.topology.is_reachable(src, dst):
            # The sender paid its overhead; the datagram dies on the
            # severed link.  UDP semantics: nobody is told.
            counters.dropped_partition += 1
            if self.trace is not None:
                self.trace.emit(sim.now, "net.partition", src, dst=dst,
                                id=msg.msg_id)
            if self.on_drop is not None:
                self.on_drop(msg, "partition")
            if self._health is not None:
                self._health.link_drop(sim.now, src, dst)
            return params

        if params.loss_prob > 0.0 and self.rng.random() < params.loss_prob:
            self.counters.dropped_loss += 1
            if self.trace is not None:
                self.trace.emit(sim.now, "net.loss", src, id=msg.msg_id)
            if self.on_drop is not None:
                self.on_drop(msg, "loss")
            return params

        flight = params.send_overhead_s + params.transfer_time(size_bytes)
        if params.jitter_s > 0.0:
            flight += self.rng.random() * params.jitter_s
        if self._m_inflight is not None:
            self._m_inflight.inc()
        t = sim.now + flight
        last = self._last_delivery
        if (last is not None and last.callbacks is self._deliver_cbs
                and last.t == t and last.msg.dst == dst
                and sim._at_tail(last, self._last_token)):
            # Same delivery tick, same destination, and the previous
            # delivery event is still the tail of its same-time queue
            # position: a separate event would drain immediately after
            # it anyway, so ride along and save one kernel event.  The
            # batch drains in send order (see _on_delivery).
            more = last.more
            if more is None:
                last.more = [(msg, params)]
            else:
                more.append((msg, params))
            return params
        pool = self._ev_pool
        if pool:
            deliver = pool.pop()
            deliver.callbacks = self._deliver_cbs
            deliver.defused = False
        else:
            deliver = _DeliveryEvent.__new__(_DeliveryEvent)
            deliver.sim = sim
            deliver.callbacks = self._deliver_cbs
            deliver._value = None
            deliver._ok = True
            deliver.defused = False
        deliver.msg = msg
        deliver.params = params
        deliver.more = None
        deliver.t = t
        sim._enqueue(deliver, flight, NORMAL)
        self._last_delivery = deliver
        self._last_token = sim._tail_token(deliver)
        return params

    #: Cost of a same-host (loopback) datagram: no wire, just a kernel copy.
    LOOPBACK_S = 5.0e-5

    def _send_loopback(
        self, host: str, src_port: int, dst_port: int, payload, size_bytes: int
    ) -> None:
        sim = self.sim
        self._next_msg_id += 1
        msg = Message(host, src_port, host, dst_port, payload, size_bytes,
                      self._next_msg_id, sim.now)
        self.counters.local += 1
        charge = self._cpu_charge.get(host)
        if charge:
            charge(self.LOOPBACK_S)
        t = sim.now + self.LOOPBACK_S
        last = self._last_delivery
        if (last is not None and last.callbacks is self._deliver_local_cbs
                and last.t == t and last.msg.dst == host
                and sim._at_tail(last, self._last_token)):
            more = last.more
            if more is None:
                last.more = [(msg, None)]
            else:
                more.append((msg, None))
            return
        pool = self._ev_pool
        if pool:
            deliver = pool.pop()
            deliver.defused = False
        else:
            deliver = _DeliveryEvent.__new__(_DeliveryEvent)
            deliver.sim = sim
            deliver._value = None
            deliver._ok = True
            deliver.defused = False
        deliver.callbacks = self._deliver_local_cbs
        deliver.msg = msg
        deliver.params = None
        deliver.more = None
        deliver.t = t
        sim._enqueue(deliver, self.LOOPBACK_S, NORMAL)
        self._last_delivery = deliver
        self._last_token = sim._tail_token(deliver)

    def _recycle(self, ev: "_DeliveryEvent") -> None:
        """Return a drained delivery event to the free list.  Safe even
        though the kernel has not finished with the object (its fields
        are reinitialised on reuse before it can be observed again), and
        callers never see these events, so no outside reference exists.
        """
        if self._last_delivery is ev:
            self._last_delivery = None
        ev.msg = None
        ev.params = None
        ev.more = None
        pool = self._ev_pool
        if len(pool) < _EV_POOL_MAX:
            pool.append(ev)

    def _on_delivery(self, ev: "_DeliveryEvent") -> None:
        msg = ev.msg
        params = ev.params
        more = ev.more
        self._recycle(ev)
        self._deliver(msg, params)
        if more is not None:
            for m, p in more:
                self._deliver(m, p)

    def _on_delivery_local(self, ev: "_DeliveryEvent") -> None:
        msg = ev.msg
        more = ev.more
        self._recycle(ev)
        self._deliver_local(msg)
        if more is not None:
            for m, _p in more:
                self._deliver_local(m)

    def _deliver_local(self, msg: Message) -> None:
        if self.is_down(msg.dst):
            self.counters.dropped_unroutable += 1
            if self.on_drop is not None:
                self.on_drop(msg, "down")
            return
        sock = self._sockets.get((msg.dst, msg.dst_port))
        if sock is None:
            self.counters.dropped_unroutable += 1
            if self.on_drop is not None:
                self.on_drop(msg, "unbound")
            return
        self.counters.delivered += 1
        if self.trace is not None:
            self.trace.emit(self.sim.now, "net.loopback", msg.dst, id=msg.msg_id,
                            port=msg.dst_port)
        sock._enqueue(msg)

    def _deliver(self, msg: Message, params: NetworkParams) -> None:
        if self._m_inflight is not None:
            self._m_inflight.dec()
        if self.is_down(msg.dst):
            self.counters.dropped_unroutable += 1
            if self.trace is not None:
                self.trace.emit(self.sim.now, "net.drop.down", msg.dst, id=msg.msg_id)
            if self.on_drop is not None:
                self.on_drop(msg, "down")
            return
        sock = self._sockets.get((msg.dst, msg.dst_port))
        if sock is None:
            self.counters.dropped_unroutable += 1
            if self.trace is not None:
                self.trace.emit(self.sim.now, "net.drop.unbound", msg.dst, id=msg.msg_id)
            if self.on_drop is not None:
                self.on_drop(msg, "unbound")
            return
        charge = self._cpu_charge.get(msg.dst)
        if charge:
            charge(params.recv_overhead_s)
        if self._m_msg_latency is not None:
            self._m_msg_latency.observe(self.sim.now - msg.sent_at + params.recv_overhead_s)
        self.counters.delivered += 1
        self.counters.received_by_host[msg.dst] = self.counters.received_by_host.get(msg.dst, 0) + 1
        if self.trace is not None:
            self.trace.emit(self.sim.now, "net.recv", msg.dst, src=msg.src,
                            id=msg.msg_id, port=msg.dst_port)
        sock._enqueue(msg)
