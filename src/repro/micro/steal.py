"""Victim-selection policies for work stealing.

The paper's thief "chooses uniformly at random a victim participant" —
the policy the Blumofe–Leiserson analysis ([2], FOCS'94) proves gives
linear speedup with tightly bounded communication.  A deterministic
round-robin alternative is provided for the ablation bench.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import SchedulerError


class VictimPolicy:
    """Chooses a steal victim from the current peer list."""

    name = "abstract"

    def choose(self, victims: Sequence[str]) -> str:
        raise NotImplementedError


class RandomVictim(VictimPolicy):
    """Uniformly random victim (the paper's policy)."""

    name = "random"

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def choose(self, victims: Sequence[str]) -> str:
        if not victims:
            raise SchedulerError("no victims to choose from")
        return victims[self.rng.randrange(len(victims))]


class RoundRobinVictim(VictimPolicy):
    """Cycle deterministically through the peer list (ablation baseline).

    Keeps its own cursor; robust to the peer list growing or shrinking
    between steals.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, victims: Sequence[str]) -> str:
        if not victims:
            raise SchedulerError("no victims to choose from")
        victim = victims[self._cursor % len(victims)]
        self._cursor += 1
        return victim


def make_victim_policy(name: str, rng: random.Random) -> VictimPolicy:
    """Construct a policy by name ("random" or "round-robin")."""
    policies: dict[str, VictimPolicy] = {
        "random": RandomVictim(rng),
        "round-robin": RoundRobinVictim(),
    }
    try:
        return policies[name]
    except KeyError:
        raise SchedulerError(
            f"unknown victim policy {name!r}; known: {sorted(policies)}"
        ) from None
