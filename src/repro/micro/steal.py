"""Victim-selection policies for work stealing.

The paper's thief "chooses uniformly at random a victim participant" —
the policy the Blumofe–Leiserson analysis ([2], FOCS'94) proves gives
linear speedup with tightly bounded communication.  A deterministic
round-robin alternative is provided for the ablation bench, and
:class:`LowLatencyVictim` adds the latency-aware selection suggested by
the Gast et al. / Khatiri et al. analyses of work stealing with
latency: prefer the victims whose steals have historically completed
fastest, with occasional uniform exploration so estimates never go
stale (and so new or recovered peers get probed).

Policies are constructed through a lazy name→factory registry
(:func:`register_victim_policy` / :func:`make_victim_policy`), so new
policies plug in without touching the factory and nothing is
instantiated until asked for.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Sequence

from repro.errors import SchedulerError


class VictimPolicy:
    """Chooses a steal victim from the current peer list.

    Policies may also *learn*: the worker reports every observed steal
    round-trip via :meth:`observe` and every steal that timed out via
    :meth:`observe_timeout`.  The base implementations ignore both, so
    stateless policies need not care.
    """

    name = "abstract"

    def choose(self, victims: Sequence[str]) -> str:
        raise NotImplementedError

    def observe(self, victim: str, rtt_s: float) -> None:
        """A steal round-trip to *victim* completed in ``rtt_s``."""

    def observe_timeout(self, victim: str, timeout_s: float) -> None:
        """A steal request to *victim* got no reply within ``timeout_s``."""

    def profile_snapshot(self) -> Dict[str, float]:
        """Learned per-victim state for profiling reports ({} when the
        policy is stateless)."""
        return {}


class RandomVictim(VictimPolicy):
    """Uniformly random victim (the paper's policy)."""

    name = "random"

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def choose(self, victims: Sequence[str]) -> str:
        if not victims:
            raise SchedulerError("no victims to choose from")
        return victims[self.rng.randrange(len(victims))]


class RoundRobinVictim(VictimPolicy):
    """Cycle deterministically through the peer list (ablation baseline).

    Keeps its own cursor; robust to the peer list growing or shrinking
    between steals.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, victims: Sequence[str]) -> str:
        if not victims:
            raise SchedulerError("no victims to choose from")
        victim = victims[self._cursor % len(victims)]
        self._cursor += 1
        return victim


class LowLatencyVictim(VictimPolicy):
    """Prefer the victim with the lowest estimated steal round-trip.

    Keeps an EWMA of observed steal RTTs per victim.  With probability
    ``explore`` (or whenever a listed victim has never been measured) it
    instead picks uniformly at random, so the estimates track link
    changes — congestion spikes, healed partitions, recovered
    stragglers.  Timeouts are charged as a penalized RTT so a
    non-responsive victim is de-prioritized rather than retried forever.

    Deterministic given the rng stream and the observation sequence.
    """

    name = "low-latency"

    #: Timeouts count as this multiple of the timeout budget.
    TIMEOUT_PENALTY = 2.0

    def __init__(self, rng: random.Random, explore: float = 0.1,
                 alpha: float = 0.3) -> None:
        if not 0.0 <= explore <= 1.0:
            raise SchedulerError(f"explore must be in [0, 1], got {explore}")
        if not 0.0 < alpha <= 1.0:
            raise SchedulerError(f"alpha must be in (0, 1], got {alpha}")
        self.rng = rng
        self.explore = explore
        self.alpha = alpha
        self._rtt: Dict[str, float] = {}

    def estimate(self, victim: str) -> float | None:
        """Current EWMA RTT estimate for *victim* (None if unmeasured)."""
        return self._rtt.get(victim)

    def choose(self, victims: Sequence[str]) -> str:
        if not victims:
            raise SchedulerError("no victims to choose from")
        # One rng draw per call regardless of branch keeps the stream
        # alignment independent of what has been learned so far.
        r = self.rng.random()
        unmeasured = [v for v in victims if v not in self._rtt]
        if unmeasured:
            return unmeasured[int(r * len(unmeasured)) % len(unmeasured)]
        if r < self.explore:
            return victims[int(r / self.explore * len(victims)) % len(victims)]
        # Exploit: lowest estimate, name as deterministic tiebreak.
        return min(victims, key=lambda v: (self._rtt[v], v))

    def observe(self, victim: str, rtt_s: float) -> None:
        prev = self._rtt.get(victim)
        self._rtt[victim] = rtt_s if prev is None else (
            (1.0 - self.alpha) * prev + self.alpha * rtt_s)

    def observe_timeout(self, victim: str, timeout_s: float) -> None:
        self.observe(victim, self.TIMEOUT_PENALTY * timeout_s)

    def profile_snapshot(self) -> Dict[str, float]:
        return dict(sorted(self._rtt.items()))


PolicyFactory = Callable[[random.Random], VictimPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {}


def register_victim_policy(name: str, factory: PolicyFactory) -> None:
    """Register *factory* under *name* (later registrations override)."""
    _REGISTRY[name] = factory


def victim_policy_names() -> list[str]:
    """Sorted names of every registered policy."""
    return sorted(_REGISTRY)


def make_victim_policy(name: str, rng: random.Random) -> VictimPolicy:
    """Construct a registered policy by name.

    Lazy: only the requested policy's factory runs, nothing is built
    just to populate an error message.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise SchedulerError(
            f"unknown victim policy {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(rng)


register_victim_policy("random", RandomVictim)
register_victim_policy("round-robin", lambda rng: RoundRobinVictim())
register_victim_policy("low-latency", LowLatencyVictim)
