"""Wire protocol shared by workers and the Clearinghouse.

All datagram payloads are tuples whose first element is a tag below.
Keeping tags and well-known ports in one module lets the worker and
Clearinghouse modules avoid importing each other.
"""

from __future__ import annotations

#: Well-known ports.
WORKER_PORT = 7000
CLEARINGHOUSE_PORT = 6000
#: Plain-datagram (non-RPC) traffic to the Clearinghouse: results, I/O.
CLEARINGHOUSE_DATA_PORT = 6001
JOBQ_PORT = 5000

# -- worker <-> worker -------------------------------------------------------

#: ("steal_req", thief_name) — reply goes to the datagram's source addr.
STEAL_REQ = "steal_req"
#: ("steal_reply", [closures]_or_None, victim_name, req_id) — a grant
#: carries one closure under steal-one, up to half the victim's deque
#: under steal-half; None is a refusal.
STEAL_REPLY = "steal_reply"
#: ("grant_ack", thief_name, req_id) — thief acknowledges receipt of a
#: grant; victims running with ``grant_ack_timeout_s`` reclaim unacked
#: grants (the closure may have died on a severed or lossy link).
GRANT_ACK = "grant_ack"
#: ("arg", continuation, value, sender_name, seq_or_None) — a non-local
#: synchronization.  ``seq`` is set by senders running with
#: ``arg_retry_timeout_s``: the worker that terminates the send (fills
#: the slot or recognises a duplicate) acks it back to ``sender_name``,
#: and unacked sends are retransmitted — a fill dropped on a severed or
#: lossy link would otherwise leave its join counter stuck forever.
ARG = "arg"
#: ("arg_ack", acker_name, seq) — terminates the retransmission of one
#: reliable argument send.
ARG_ACK = "arg_ack"
#: ("migrate", [closures], [suspended_closures], sender_name) — a dying or
#: retiring worker evacuating its tasks (also used by the central-queue
#: and sender-initiated baseline modes to move work).
MIGRATE = "migrate"
#: ("migrate_ack", acceptor_name) — the receiver took responsibility for
#: a migration batch (sent to the migrator's reply address).
MIGRATE_ACK = "migrate_ack"
#: ("load", sender_name, ready_list_length) — sender-initiated baseline's
#: periodic load broadcast (the Parform's "load sensors").
LOAD = "load"


#: Wire-size model (bytes).  The simulation does not serialise payloads;
#: these estimates feed the bandwidth term of the network cost model.
HEADER_BYTES = 28  # IP + UDP headers
CONTROL_BYTES = 36  # tag + ids + addresses
CLOSURE_BYTES = 96  # thread name, cid, small argument slots
VALUE_BYTES = 24  # one argument value (word-sized results dominate)


def estimate_size(payload: object) -> int:
    """Rough wire size of a protocol datagram.

    Tagged tuples get per-tag estimates (a MIGRATE batch scales with the
    number of closures it carries); anything else gets the control size.
    """
    size = HEADER_BYTES + CONTROL_BYTES
    if isinstance(payload, tuple) and payload:
        tag = payload[0]
        if tag == STEAL_REPLY and len(payload) > 1 and payload[1] is not None:
            size += CLOSURE_BYTES * len(payload[1])
        elif tag == ARG:
            size += VALUE_BYTES
        elif tag == MIGRATE and len(payload) > 2:
            size += CLOSURE_BYTES * (len(payload[1]) + len(payload[2]))
        elif tag == RESULT:
            size += VALUE_BYTES
        elif tag == SNAPSHOT_REPLY and len(payload) > 3:
            size += CLOSURE_BYTES * (len(payload[2]) + len(payload[3]))
    return size


def ports_for_job(job_id: int) -> tuple[int, int, int]:
    """(worker_port, ch_rpc_port, ch_data_port) for one macro-level job.

    Each job gets its own port block so several jobs can have workers
    and Clearinghouses on the same workstation.
    """
    if job_id < 0:
        raise ValueError("job_id must be non-negative")
    base = 10000 + job_id * 10
    return (base, base + 1, base + 2)

# -- clearinghouse -> worker ---------------------------------------------------

#: ("job_done", result)
JOB_DONE = "job_done"
#: ("peer_update", [worker names])
PEER_UPDATE = "peer_update"
#: ("worker_died", name) — triggers crash-redo of outstanding steals.
WORKER_DIED = "worker_died"
#: ("run_root",) — (re)start the root task on this worker.
RUN_ROOT = "run_root"
#: ("pause",) / ("resume",) — stop-the-world brackets for checkpointing.
PAUSE = "pause"
RESUME = "resume"
#: ("snapshot_req",) — reply ("snapshot_reply", name, ready, suspended, seq)
#: to the requester's address with this worker's frozen task state.
SNAPSHOT_REQ = "snapshot_req"
SNAPSHOT_REPLY = "snapshot_reply"

# -- worker -> clearinghouse ---------------------------------------------------

#: ("result", value, worker_name) — the job's final result.
RESULT = "result"

# -- RPC method names on the Clearinghouse -------------------------------------

RPC_REGISTER = "register"
RPC_UNREGISTER = "unregister"
RPC_UPDATE = "update"  # doubles as the heartbeat
RPC_RELOCATE = "relocate"
RPC_LOCATE = "locate"
RPC_IO_WRITE = "io_write"
