"""Per-worker and per-job scheduling statistics.

These counters are the raw material of the paper's Table 2: tasks
executed, maximum tasks in use, tasks stolen, synchronizations (local
versus non-local), messages sent, and execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.util.stats import speedup_paper


@dataclass
class WorkerStats:
    """Counters accumulated by one participating worker."""

    name: str
    tasks_executed: int = 0
    #: Steals in which this worker was the thief and got a task.
    tasks_stolen: int = 0
    #: Steals in which this worker was the victim and gave a task up.
    tasks_stolen_from: int = 0
    steal_requests_sent: int = 0
    steal_requests_received: int = 0
    failed_steal_attempts: int = 0
    #: All send_argument operations performed by tasks on this worker.
    synchronizations: int = 0
    #: The subset that crossed workers (needed a network message).
    non_local_synchs: int = 0
    #: Arguments dropped because the slot was already filled (crash redo).
    duplicate_sends: int = 0
    #: Closures re-enqueued because their thief crashed.
    tasks_redone: int = 0
    #: Subset of tasks_redone regenerated because a steal grant went
    #: unacknowledged (presumed lost in flight; grant-ack mode only).
    grants_reclaimed: int = 0
    #: Steal requests fired proactively (before going idle).
    proactive_steals_sent: int = 0
    #: Tasks received via migration (reclaim/retirement evacuations).
    tasks_migrated_in: int = 0
    tasks_migrated_out: int = 0
    #: Peak of (ready + suspended + executing) closures on this worker —
    #: the "Max tasks in use" working-set measure of Table 2.
    max_tasks_in_use: int = 0
    #: Wall-clock span of participation (simulated seconds).
    start_time: float = 0.0
    end_time: float = 0.0
    #: CPU-busy simulated seconds (compute + messaging overhead).
    busy_s: float = 0.0
    #: Total request→grant latency over this thief's successful steals
    #: (simulated seconds) and the number of steals it covers — the
    #: per-worker average the latency-aware analyses argue from.
    steal_latency_sum_s: float = 0.0
    steal_latency_count: int = 0

    @property
    def execution_time(self) -> float:
        """Per-participant wall-clock time, the T_P(i) of the paper."""
        return max(0.0, self.end_time - self.start_time)

    @property
    def local_synchs(self) -> int:
        return self.synchronizations - self.non_local_synchs

    @property
    def avg_steal_latency_s(self) -> float:
        """Mean request→grant latency of this worker's successful steals."""
        if self.steal_latency_count == 0:
            return 0.0
        return self.steal_latency_sum_s / self.steal_latency_count


@dataclass
class JobStats:
    """Aggregate statistics of one job execution (the Table 2 columns)."""

    workers: List[WorkerStats] = field(default_factory=list)
    #: Network datagrams sent between distinct hosts during the job.
    messages_sent: int = 0
    #: Simulated time from job start to result delivery.
    makespan: float = 0.0
    result: object = None

    @property
    def participants(self) -> int:
        return len(self.workers)

    @property
    def tasks_executed(self) -> int:
        return sum(w.tasks_executed for w in self.workers)

    @property
    def tasks_stolen(self) -> int:
        return sum(w.tasks_stolen for w in self.workers)

    @property
    def synchronizations(self) -> int:
        return sum(w.synchronizations for w in self.workers)

    @property
    def non_local_synchs(self) -> int:
        return sum(w.non_local_synchs for w in self.workers)

    @property
    def max_tasks_in_use(self) -> int:
        """Largest working set of any participant (Table 2 row 2)."""
        return max((w.max_tasks_in_use for w in self.workers), default=0)

    @property
    def tasks_redone(self) -> int:
        return sum(w.tasks_redone for w in self.workers)

    @property
    def execution_times(self) -> List[float]:
        return [w.execution_time for w in self.workers]

    @property
    def average_execution_time(self) -> float:
        """The quantity plotted by the paper's Figure 4."""
        times = self.execution_times
        return sum(times) / len(times) if times else 0.0

    def speedup_vs(self, t1: float) -> float:
        """The paper's S_P formula against a 1-participant time (Figure 5)."""
        return speedup_paper(t1, self.execution_times)

    @property
    def average_participants(self) -> float:
        """The paper's P-bar: the time average of the number of
        participants over the run (participants join/leave at different
        times, so P-bar <= P)."""
        if self.makespan <= 0:
            return float(self.participants)
        return sum(self.execution_times) / self.makespan

    def effective_speedup(self, t1: float) -> float:
        """T1 over the job's wall-clock makespan — the throughput view,
        robust to participants with unequal spans or speeds."""
        if self.makespan <= 0:
            raise ValueError("makespan not recorded")
        return t1 / self.makespan

    def effective_efficiency(self, t1: float) -> float:
        """Effective speedup normalised by the paper's P-bar."""
        pbar = self.average_participants
        if pbar <= 0:
            raise ValueError("no participation recorded")
        return self.effective_speedup(t1) / pbar

    @property
    def avg_steal_latency_s(self) -> float:
        """Mean request→grant latency over every successful steal."""
        total = sum(w.steal_latency_sum_s for w in self.workers)
        count = sum(w.steal_latency_count for w in self.workers)
        return total / count if count else 0.0

    def table2_rows(self, include_steal_latency: bool = False) -> Dict[str, float]:
        """The seven rows of the paper's Table 2, as a dict.

        ``include_steal_latency`` adds an eighth, non-paper row (average
        steal request→grant latency); off by default so the pinned
        Table 2 goldens are unchanged.
        """
        rows = {
            "Tasks executed": self.tasks_executed,
            "Max tasks in use": self.max_tasks_in_use,
            "Tasks stolen": self.tasks_stolen,
            "Synchronizations": self.synchronizations,
            "Non-local synchs": self.non_local_synchs,
            "Messages sent": self.messages_sent,
            "Execution time": self.average_execution_time,
        }
        if include_steal_latency:
            rows["Avg steal latency"] = self.avg_steal_latency_s
        return rows
