"""The ready-task list (Figure 1 of the paper).

The paper's discipline — execute from the **head** in LIFO order, steal
from the **tail** in FIFO order — is the default.  Both orders are
configurable so the ablation benches can demonstrate *why* the paper's
combination wins (FIFO execution blows up the working set; LIFO stealing
exports leaf tasks and therefore steals constantly).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterable, List, Optional

from repro.errors import SchedulerError
from repro.tasks.closure import Closure

_ORDERS = ("lifo", "fifo")

#: Observer callback signature: ``observer(op, closure)`` where *op* is
#: one of "push", "pop_exec", "pop_steal", "drain", "extend".
DequeObserver = Callable[[str, Closure], None]


class ReadyDeque:
    """Double-ended ready list with configurable execute/steal ends.

    ``exec_order="lifo"`` pops work where it is pushed (the head);
    ``steal_order="fifo"`` steals from the opposite end (the tail).

    An optional :attr:`observer` sees every insertion and removal — the
    invariant checker uses it to verify online that no closure enters or
    leaves the ready list out of thin air.  It is None (a single
    predicted branch per operation) in normal runs.
    """

    __slots__ = ("exec_order", "steal_order", "_exec_head", "_steal_tail",
                 "_items", "observer")

    def __init__(self, exec_order: str = "lifo", steal_order: str = "fifo") -> None:
        if exec_order not in _ORDERS:
            raise SchedulerError(f"exec_order must be one of {_ORDERS}, got {exec_order!r}")
        if steal_order not in _ORDERS:
            raise SchedulerError(f"steal_order must be one of {_ORDERS}, got {steal_order!r}")
        self.exec_order = exec_order
        self.steal_order = steal_order
        # Orders are fixed at construction; cache them as booleans so the
        # per-pop dispatch is a predicted branch, not a string compare.
        self._exec_head = exec_order == "lifo"
        self._steal_tail = steal_order == "fifo"
        self._items: Deque[Closure] = deque()
        self.observer: Optional[DequeObserver] = None

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def push(self, closure: Closure) -> None:
        """Insert a newly-ready task at the head (paper, Figure 1b)."""
        self._items.appendleft(closure)
        if self.observer is not None:
            self.observer("push", closure)

    def pop_exec(self) -> Optional[Closure]:
        """Take the next task to execute locally, or None if empty."""
        items = self._items
        if not items:
            return None
        if self._exec_head:
            closure = items.popleft()  # head: most recently pushed
        else:
            closure = items.pop()  # fifo execution (ablation)
        if self.observer is not None:
            self.observer("pop_exec", closure)
        return closure

    def pop_steal(self) -> Optional[Closure]:
        """Take the task to hand a thief, or None if empty."""
        items = self._items
        if not items:
            return None
        if self._steal_tail:
            closure = items.pop()  # tail: oldest task (paper, Figure 1c)
        else:
            closure = items.popleft()  # lifo stealing (ablation)
        if self.observer is not None:
            self.observer("pop_steal", closure)
        return closure

    def drain(self) -> List[Closure]:
        """Remove and return everything (head first) — used by migration."""
        items = list(self._items)
        self._items.clear()
        if self.observer is not None:
            for closure in items:
                self.observer("drain", closure)
        return items

    def extend_tail(self, closures: Iterable[Closure]) -> None:
        """Append migrated-in tasks at the tail, preserving their order.

        Migrated tasks are old work (like steals, they come from the far
        end of someone's list), so they belong behind local work.
        """
        closures = list(closures)
        self._items.extend(closures)
        if self.observer is not None:
            for closure in closures:
                self.observer("extend", closure)

    def peek_all(self) -> List[Closure]:
        """Snapshot (head first) for tests and debugging."""
        return list(self._items)
