"""The participating worker process: LIFO execution, FIFO random stealing.

One :class:`Worker` corresponds to one "participating process" of the
paper: an instance of the application program running on one
workstation.  It is realised as three simulation processes sharing the
worker's state:

* the **run loop** — pops ready tasks (LIFO) and executes them; when the
  ready list is empty, turns thief and steals (FIFO, random victim);
  after enough consecutive failed steals it concludes the job's
  parallelism has shrunk and retires, returning its workstation to the
  macro-level scheduler;
* the **net loop** — services the worker's UDP port: steal requests
  (answered immediately from the tail of the ready list, which is what
  keeps thieves from waiting on a busy victim's task boundary), incoming
  argument sends, migrations, and Clearinghouse broadcasts;
* the **update loop** — fetches a peer update from the Clearinghouse
  every ``update_interval_s`` (the paper's 2 minutes); this doubles as
  the heartbeat used for crash detection.

Fault-tolerance machinery ("enough redundant state is maintained so that
lost work can be redone"): a victim remembers every closure it gave a
thief; when the Clearinghouse announces a worker's death, victims
re-enqueue copies of the closures that worker had stolen.  Duplicate
argument sends produced by redo are deduplicated at the receiving slot.

Graceful departures (owner reclaim, retirement) migrate the ready list
and suspended closures to a peer; the departing worker's net loop lives
on as a tiny *forwarder* so in-flight and future sends still arrive (the
paper states data migrates before termination but leaves the forwarding
protocol unspecified; DESIGN.md documents this choice).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple

from repro.cluster.workstation import Workstation
from repro.micro import protocol as P
from repro.micro.deque import ReadyDeque
from repro.micro.stats import WorkerStats
from repro.micro.steal import make_victim_policy
from repro.net.network import Network
from repro.net.rpc import rpc_call
from repro.net.socket import Socket
from repro.obs.metrics import (
    DEPTH_BUCKETS,
    GRAIN_BUCKETS_S,
    MetricsRegistry,
)
from repro.sim.core import Event, Interrupt, Simulator
from repro.sim.events import AnyOf
from repro.sim.resources import Signal
from repro.tasks.closure import CLEARINGHOUSE_TARGET, Closure, ClosureId, Continuation
from repro.tasks.program import Frame, JobProgram
from repro.util.trace import TraceLog


@dataclass
class WorkerConfig:
    """Tunables of the micro-level scheduler.

    Defaults follow the paper where it gives numbers (2-minute
    Clearinghouse updates) and use LAN-plausible values elsewhere.
    """

    #: How long a thief waits for a steal reply before giving up on it.
    steal_timeout_s: float = 0.05
    #: Pause after a failed steal attempt before choosing a new victim.
    steal_backoff_s: float = 0.005
    #: Consecutive failed steals after which the worker retires (None:
    #: never retire — the mode used for fixed-P speedup measurements).
    retire_after_failed_steals: Optional[int] = None
    #: Peer-update / heartbeat period (paper: every 2 minutes).
    update_interval_s: float = 120.0
    #: One-time process startup cost (fork/exec, binary load, init).
    startup_cost_s: float = 0.25
    #: Task-list discipline ("lifo"/"fifo" each) — the paper uses
    #: LIFO execution with FIFO stealing; others are for ablations.
    exec_order: str = "lifo"
    steal_order: str = "fifo"
    #: Victim selection: "random" (paper), "round-robin" (ablation), or
    #: "low-latency" (prefer victims with the lowest observed steal RTT;
    #: see repro.micro.steal for the full registry).
    victim_policy: str = "random"
    #: How much work one grant carries: "one" (the paper's protocol) or
    #: "half" (up to half of the victim's ready list, amortising the
    #: steal round-trip over high-latency links).
    steal_amount: str = "one"
    #: Proactive (early) stealing: after finishing a task, if the ready
    #: list is at or below this depth, fire a no-wait steal request so
    #: the reply can arrive while the tail of local work still runs.
    #: 0 disables (the paper steals only when already idle).
    proactive_threshold: int = 0
    #: When set, steal grants must be acknowledged by the thief; a grant
    #: unacked after this many seconds is presumed lost in flight (lossy
    #: or partitioned link) and reclaimed as redo copies.  None keeps
    #: the paper's protocol: only a thief's *death* triggers redo, and a
    #: grant lost on the wire would hang the job.
    grant_ack_timeout_s: Optional[float] = None
    #: When set, non-local argument sends (and the job result, which the
    #: Clearinghouse confirms via the done broadcast rather than an ack)
    #: are retransmitted at this period until acknowledged.  None keeps
    #: the paper's fire-and-forget sends: an argument dropped on a
    #: severed or lossy link leaves its join counter stuck and hangs the
    #: job — the first hole the partition fuzz scenario found.
    arg_retry_timeout_s: Optional[float] = None
    #: Remember completed successor ids to deduplicate crash-redo sends.
    #: Costs memory proportional to task count; enable for fault runs.
    track_completed: bool = False
    #: Worker protocol port (macro scheduler gives each job its own).
    port: int = 7000
    #: Scheduling mode: "steal" (the paper's idle-initiated work
    #: stealing), "central" (all spawns go to a central queue — the
    #: locality-free baseline), or "push" (sender-initiated Parform-style
    #: load balancing driven by periodic load broadcasts).
    mode: str = "steal"
    #: push mode: keep at most this many ready tasks before exporting.
    push_threshold: int = 4
    #: push mode: period of the load broadcast.
    load_broadcast_s: float = 0.25
    #: Clearinghouse ports this job's workers talk to.
    ch_rpc_port: int = 6000
    ch_data_port: int = 6001


class Worker:
    """One participant of one parallel job."""

    def __init__(
        self,
        sim: Simulator,
        workstation: Workstation,
        network: Network,
        job: JobProgram,
        clearinghouse_host: str,
        config: Optional[WorkerConfig] = None,
        rng: Optional[random.Random] = None,
        trace: Optional[TraceLog] = None,
        name: Optional[str] = None,
        initial_state: Optional[tuple] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.workstation = workstation
        self.network = network
        self.job = job
        self.ch_host = clearinghouse_host
        self.config = config or WorkerConfig()
        self.rng = rng or random.Random(0)
        self.trace = trace
        #: Worker identity; one worker per workstation, so the host name.
        self.name = name or workstation.name
        self.host = workstation.name

        self.stats = WorkerStats(self.name)
        self.deque = ReadyDeque(self.config.exec_order, self.config.steal_order)
        #: Suspended (waiting) closures created here, keyed by cid —
        #: including closures migrated in from departing peers.
        self.suspended: Dict[ClosureId, Closure] = {}
        #: Redundant state: closure copies handed to each thief, for redo.
        self.outstanding: Dict[str, Dict[ClosureId, Closure]] = {}
        #: Completed-successor ids (dedup of crash-redo sends); only
        #: populated when config.track_completed.
        self.completed: Set[ClosureId] = set()
        #: After departure: where each of my suspended closures went.
        self.forward_map: Dict[ClosureId, str] = {}
        #: Redundant state for *migration* redo, symmetric to
        #: ``outstanding``: every closure this (departed) worker handed
        #: to a peer, keyed by the adopter.  If the adopter fail-stops,
        #: the batch is re-migrated to a survivor; without this, work
        #: evacuated by a graceful departure is unrecoverable when its
        #: new home crashes (the paper's redo only covers stolen work).
        self.migrated: Dict[str, List[Closure]] = {}
        #: True once this worker departed while still holding relay or
        #: redo duties (forward_map / outstanding / migrated).  A
        #: forwarder keeps heartbeating the Clearinghouse until JOB_DONE
        #: so its host's crash is detected like any worker's — fills
        #: routed through a silently-dead forwarder would otherwise be
        #: dropped forever and deadlock the job.
        self._forwarding = False
        #: Fills this forwarder relayed to migrated closures, retained so
        #: a re-migration can replay any that were in flight (and so
        #: dropped) when the adopter crashed.  Duplicate replays are
        #: rejected slot-wise at the receiver.
        self._forwarded: Dict[ClosureId, List[tuple]] = {}
        #: While a departure migration is in flight: argument sends to
        #: the suspended closures being handed off are parked here until
        #: the migration's outcome is known (None outside that window).
        #: Filling the shared closure object mid-handoff would race with
        #: the peer's adoption: the closure could turn ready *here*, be
        #: re-enqueued into the already-drained deque, and strand an
        #: unfillable copy at the peer.
        self._fill_hold: Optional[List[tuple]] = None
        self.peers: List[str] = [self.name]
        #: Every peer name this worker has ever seen registered.  The
        #: live ``peers`` list shrinks as workers retire, but retired
        #: machines stay reachable and rejoin when offered work — so
        #: migration handoffs draw their candidates from this set (minus
        #: observed deaths), not from the current registration snapshot.
        self._peers_seen: Set[str] = {self.name}
        self.victim_policy = make_victim_policy(self.config.victim_policy, self.rng)

        #: Observability (repro.obs): when a registry is wired in, the
        #: worker populates steal/fill latency histograms, a task-grain
        #: histogram, a redo counter, and a per-worker deque-depth
        #: series.  Instruments are resolved once here; every hot-path
        #: update is guarded by a single ``is not None`` check (the
        #: TraceLog.emit discipline), so disabled runs pay nothing.
        self.metrics = metrics
        if metrics is not None:
            self._m_steal_latency = metrics.histogram("micro.steal.latency_s")
            self._m_steal_latency_policy = metrics.histogram(
                f"micro.steal.latency_s.{self.config.victim_policy}")
            self._m_fill_latency = metrics.histogram("micro.fill.latency_s")
            self._m_task_grain = metrics.histogram(
                "micro.task.grain_s", GRAIN_BUCKETS_S)
            self._m_deque_depth = metrics.histogram(
                "micro.deque.depth", DEPTH_BUCKETS)
            self._m_deque_series = metrics.series(f"micro.deque.depth.{self.name}")
            self._m_redo = metrics.counter("micro.redo.count")
            self._m_steals = metrics.counter("micro.steal.success.count")
        else:
            self._m_steal_latency = None
            self._m_steal_latency_policy = None
            self._m_fill_latency = None
            self._m_task_grain = None
            self._m_deque_depth = None
            self._m_deque_series = None
            self._m_redo = None
            self._m_steals = None
        #: Online diagnosis (repro.obs.health): resolved off the
        #: registry — a HealthMonitor installs itself as
        #: ``registry.health`` before the cluster is built — and guarded
        #: by the same single ``is not None`` check per hook site.
        self._health = metrics.health if metrics is not None else None
        #: Critical-path span profiler (repro.obs.prof), same guarded
        #: discipline as the registry: None costs one attribute load per
        #: site.  ``_exec_cid`` is the closure whose thread function is
        #: currently running — the source of every DAG edge it creates.
        self._prof = profiler
        self._exec_cid: Optional[ClosureId] = None
        #: Steal-request send times, for request→grant latency (kept even
        #: without a registry: WorkerStats carries the per-worker sums).
        self._steal_sent: Dict[int, float] = {}
        #: Steal requests with no reply yet, req_id -> victim.  Unlike
        #: ``_steal_sent`` (dropped as soon as the thief stops waiting),
        #: an entry lives until the victim replies or dies: a request can
        #: still be answered by a grant after this worker departed, and a
        #: thief that *crashes* in that window silently drops the grant.
        #: The victim only regenerates stolen work when the thief is
        #: declared dead, so a departing thief with an open request must
        #: unregister as a forwarder and stay under Clearinghouse death
        #: surveillance (bug 12: a crash racing a reclaim, shrink seed
        #: 36291, lost the grant's redo obligation and deadlocked).
        self._steal_open: Dict[int, str] = {}
        #: Suspension times of parked closures, for fill latency.
        self._suspended_at: Dict[ClosureId, float] = {}

        self.done = False
        self.result: Any = None
        self.retired = False
        self.departed = False  # retired or evacuated (run loop gone)
        self.executing = False
        self._failed_steals = 0
        self._seq = 0
        #: push mode: last known ready-list length of each peer.
        self.peer_loads: Dict[str, int] = {}
        #: Outstanding steal attempts: req_id -> event the run loop awaits.
        self._steal_waiters: Dict[int, Event] = {}
        self._steal_seq = 0
        #: Grants awaiting the thief's GRANT_ACK, keyed by
        #: (thief, req_id) -> granted closures (grant-ack mode only).
        self._pending_grants: Dict[tuple, List[Closure]] = {}
        #: The one proactive steal allowed in flight: (req_id, victim).
        self._proactive: Optional[tuple] = None
        #: Deaths already processed; redo must stay idempotent now that
        #: death notices arrive both as a broadcast datagram and
        #: piggybacked on every heartbeat reply.
        self._seen_deaths: Set[str] = set()
        #: Reliable argument sends awaiting their ARG_ACK, keyed by seq
        #: (arg-retry mode only), plus unconfirmed RESULT values.
        self._pending_args: Dict[int, tuple] = {}
        self._pending_results: List[Any] = []
        self._arg_seq = 0
        self._arg_flusher_on = False
        #: Handoffs of straggler work currently in flight (late grants
        #: being re-homed, redo batches seeking an adopter).  The
        #: departure linger must not tear the worker down while one is
        #: active: the closures it carries are acked to their victim, so
        #: nobody else would ever regenerate them.
        self._handoffs_active = 0
        #: Acked migration offers this worker has adopted, keyed by
        #: (sender, offer seq).  A retransmitted MIGRATE (our ack died
        #: on a severed or congested link) is re-acked without
        #: re-adopting.  Only offers carrying a seq dedup — push-mode
        #: migrations are fire-and-forget, never retransmitted, and the
        #: same closure may legitimately ping-pong between two workers.
        self._adopted_batches: Set[Tuple[str, int]] = set()
        self._migrate_seq = 0
        #: A RUN_ROOT ping arrived while the retirement was still
        #: unwinding (the unregister RPC can sit in retry past the death
        #: timeout when a partition spans it), or named us as appointed
        #: owner.  The ping is fire-and-forget and never re-sent, so it
        #: is remembered here ("recruit" or "assigned") and answered
        #: when the departure completes / the rejoin registers.
        self._recruit_pending: Optional[str] = None
        #: Stop-the-world flag for checkpointing: the run loop idles and
        #: steal requests are refused while set.
        self.paused = False
        #: Set when the run loop has ended for any reason; the macro
        #: scheduler's JobManager waits on this.
        self.finished = Signal(sim)
        #: Why the run loop ended: "done", "retired", "reclaimed", "crashed".
        self.exit_reason: Optional[str] = None
        #: Optional hook invoked (reason) when the run loop ends.
        self.on_exit: Optional[Callable[[str], None]] = None

        if initial_state is not None:
            # Checkpoint restore: preload frozen task state.  Pushing in
            # reverse recreates the original head-to-tail order; the
            # sequence counter resumes above every id ever issued so
            # restored cids never collide with new ones.
            ready, suspended_list, seq = initial_state
            for closure in reversed(list(ready)):
                self.deque.push(closure)
            for closure in suspended_list:
                self.suspended[closure.cid] = closure
            self._seq = max(self._seq, int(seq))
            self._note_in_use()

        self.socket = Socket(network, self.host, self.config.port)
        self._run_proc = sim.process(self._run(), name=f"worker-run@{self.name}")
        self._net_proc = sim.process(self._net(), name=f"worker-net@{self.name}")
        self._update_proc = sim.process(self._updates(), name=f"worker-upd@{self.name}")
        workstation.register_process(self._run_proc)
        workstation.register_process(self._net_proc)
        workstation.register_process(self._update_proc)
        if self.config.mode == "push":
            self._balancer_proc = sim.process(
                self._balancer(), name=f"worker-bal@{self.name}"
            )
            workstation.register_process(self._balancer_proc)
        else:
            self._balancer_proc = None

    # ------------------------------------------------------------------
    # SchedulerOps interface (used by Frame)
    # ------------------------------------------------------------------

    def new_cid(self) -> ClosureId:
        self._seq += 1
        cid = (self.name, self._seq)
        if self._prof is not None and self._exec_cid is not None:
            # Creation edge: the executing task spawned a child or
            # created a successor (redo copies are minted outside task
            # execution, so they never land here).
            self._prof.edge(self._exec_cid, cid)
        if self.trace is not None:
            # Every closure birth on this worker (spawn, successor, root,
            # crash-redo copy) passes through here: the conservation
            # invariant's "created" set.
            self.trace.emit(self.sim.now, "closure.new", self.name, cid=cid)
        return cid

    def enqueue_ready(self, closure: Closure, local: bool = False) -> None:
        """Make a ready closure schedulable.

        Under the paper's work stealing this pushes at the head of the
        local ready list.  Under the "central" baseline, newly-enabled
        tasks are shipped to the central queue host instead (``local``
        forces local placement — used when adopting a task we just
        fetched, so it is not bounced straight back).
        """
        if (
            not local
            and self.config.mode == "central"
            and self.name != self.ch_host
        ):
            self.stats.tasks_migrated_out += 1
            self._post(self.ch_host, self.config.port, (P.MIGRATE, [closure], [], self.name))
            return
        self.deque.push(closure)
        self._note_in_use()
        if self._m_deque_series is not None:
            self._sample_deque()

    def register_suspended(self, closure: Closure) -> None:
        """Park a successor closure until its missing arguments arrive."""
        self.suspended[closure.cid] = closure
        self._note_in_use()
        if self._m_fill_latency is not None:
            self._suspended_at[closure.cid] = self.sim.now
        if self.trace is not None:
            self.trace.emit(self.sim.now, "closure.suspend", self.name,
                            cid=closure.cid, missing=closure.join_counter)

    def deliver(self, continuation: Continuation, value: Any) -> None:
        """send_argument, performed by a task running on this worker."""
        self.stats.synchronizations += 1
        if continuation.target == CLEARINGHOUSE_TARGET:
            if self.ch_host != self.host:
                self.stats.non_local_synchs += 1
                if self.config.arg_retry_timeout_s is not None:
                    # The Clearinghouse never acks results; resend until
                    # its done broadcast (or heartbeat reply) confirms.
                    self._pending_results.append(value)
                    self._ensure_arg_flusher()
            self._post(self.ch_host, self.config.ch_data_port, (P.RESULT, value, self.name))
            return
        if self._prof is not None and self._exec_cid is not None:
            # Dataflow edge: the successor cannot run before this send.
            self._prof.edge(self._exec_cid, continuation.target)
        if self._fill_local(continuation, value):
            return
        self.stats.non_local_synchs += 1
        dest = self.forward_map.get(continuation.target, continuation.target[0])
        self._send_arg(dest, continuation, value)

    # ------------------------------------------------------------------
    # Local argument delivery
    # ------------------------------------------------------------------

    def _fill_local(self, continuation: Continuation, value: Any) -> bool:
        """Try to fill a slot held on this worker.

        Returns True if the send terminated here (filled, or recognised
        as a duplicate/stray); False if the target lives elsewhere.
        """
        cid = continuation.target
        if self._fill_hold is not None and cid in self.suspended:
            self._fill_hold.append((continuation, value))
            return True
        closure = self.suspended.get(cid)
        if closure is not None:
            if closure.slot_filled(continuation.slot):
                self.stats.duplicate_sends += 1
                if self.trace is not None:
                    self.trace.emit(self.sim.now, "join.dup", self.name,
                                    cid=cid, slot=continuation.slot)
                return True
            if closure.fill(continuation.slot, value):
                del self.suspended[cid]
                if self._m_fill_latency is not None:
                    suspended_at = self._suspended_at.pop(cid, None)
                    if suspended_at is not None:
                        self._m_fill_latency.observe(self.sim.now - suspended_at)
                if self.config.track_completed:
                    self.completed.add(cid)
                if self.trace is not None:
                    self.trace.emit(self.sim.now, "join.fill", self.name,
                                    cid=cid, slot=continuation.slot, remaining=0)
                self.enqueue_ready(closure)
            elif self.trace is not None:
                self.trace.emit(self.sim.now, "join.fill", self.name, cid=cid,
                                slot=continuation.slot,
                                remaining=closure.join_counter)
            return True
        if cid in self.forward_map:
            return False  # departed: the caller forwards
        if cid[0] == self.name or cid in self.completed:
            # A send to a closure of mine that no longer exists: a
            # crash-redo duplicate (the original already ran).
            self.stats.duplicate_sends += 1
            if self.trace is not None:
                self.trace.emit(self.sim.now, "join.dup", self.name,
                                cid=cid, slot=continuation.slot)
            return True
        return False

    def _on_remote_arg(
        self,
        continuation: Continuation,
        value: Any,
        sender: str,
        seq: Optional[int] = None,
    ) -> None:
        """ARG datagram: fill locally or forward (no synch counted here —
        the synchronization was counted at the sending worker)."""
        if self._fill_local(continuation, value):
            self._ack_arg(sender, seq)
            return
        dest = self.forward_map.get(continuation.target, continuation.target[0])
        if dest == self.name:
            self.stats.duplicate_sends += 1
            self._ack_arg(sender, seq)
            return
        if continuation.target in self.forward_map:
            # Retain the relayed fill: if the adoptee crashes before it
            # lands, the migration redo replays it to the next home.
            self._forwarded.setdefault(continuation.target, []).append(
                (continuation, value)
            )
        # Forward with the sender's seq intact: the *final* recipient
        # acks the originator directly, so a forwarded hop dropped on a
        # bad link is retransmitted end to end.
        self._post(dest, self.config.port, (P.ARG, continuation, value, sender, seq))

    def _ack_arg(self, sender: str, seq: Optional[int]) -> None:
        """Confirm a reliable argument send back to its originator."""
        if seq is not None and sender != self.name:
            self._post(sender, self.config.port, (P.ARG_ACK, self.name, seq))

    def _send_arg(self, dest: str, continuation: Continuation, value: Any) -> None:
        """Send one of this worker's own argument fills to *dest*,
        registering it for retransmission when arg-retry mode is on."""
        seq = None
        if self.config.arg_retry_timeout_s is not None:
            self._arg_seq += 1
            seq = self._arg_seq
            self._pending_args[seq] = (continuation, value)
            self._ensure_arg_flusher()
        self._post(dest, self.config.port, (P.ARG, continuation, value, self.name, seq))

    def _ensure_arg_flusher(self) -> None:
        if self._arg_flusher_on:
            return
        self._arg_flusher_on = True
        proc = self.sim.process(self._arg_flusher(), name=f"arg-retry@{self.name}")
        self.workstation.register_process(proc)

    def _arg_flusher(self) -> Generator:
        """Retransmit unacknowledged argument sends (and unconfirmed
        results) every ``arg_retry_timeout_s``.

        Retransmits are idempotent at the receiver: a duplicate fill is
        rejected slot-wise (``join.dup``), exactly like crash-redo
        duplicates.  Sends addressed to a worker known to be dead are
        dropped — crash redo regenerates that subtree, so the value
        would fill a closure that no longer exists.
        """
        cfg = self.config
        try:
            while (self._pending_args or self._pending_results) and not self.done:
                yield self.sim.timeout(cfg.arg_retry_timeout_s)
                if self.done or self.workstation.crashed:
                    break
                for seq, (cont, value) in sorted(self._pending_args.items()):
                    dest = self.forward_map.get(cont.target, cont.target[0])
                    if dest in self._seen_deaths:
                        del self._pending_args[seq]
                        continue
                    if self.trace is not None:
                        self.trace.emit(self.sim.now, "arg.retry", self.name,
                                        cid=cont.target, slot=cont.slot, seq=seq)
                    if self._health is not None:
                        self._health.retransmission(self.sim.now, self.name,
                                                    "arg", seq)
                    self._post(dest, cfg.port, (P.ARG, cont, value, self.name, seq))
                for value in self._pending_results:
                    self._post(self.ch_host, cfg.ch_data_port,
                               (P.RESULT, value, self.name))
        except Interrupt:
            pass
        finally:
            self._arg_flusher_on = False

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def _run(self) -> Generator:
        cfg = self.config
        prof = self._prof
        try:
            if prof is not None:
                prof.worker_begin(self.sim.now, self.name)
                # Startup + registration handshake: protocol overhead.
                prof.phase_begin(self.sim.now, self.name, "protocol")
            yield self.sim.timeout(cfg.startup_cost_s)
            reply = yield from rpc_call(
                self.network, self.host, self.ch_host, self.config.ch_rpc_port,
                P.RPC_REGISTER, self.name,
            )
            if prof is not None:
                prof.phase_end(self.sim.now, self.name, "protocol")
            self.stats.start_time = self.sim.now
            if reply.get("done"):
                # The job finished before we could join.
                self._on_job_done(reply.get("result"))
                self._finish("done")
                return
            self._set_peers(reply["peers"])
            if reply["run_root"]:
                self._enqueue_root()
            if self.trace is not None:
                self.trace.emit(self.sim.now, "worker.start", self.name)

            departed = yield from self._main_loop()
            if not departed:
                self._finish("done")
        except Interrupt as intr:
            yield from self._on_run_interrupt(intr)

    def _main_loop(self) -> Generator:
        """Steal/execute until the job ends or this worker departs.

        Returns True if the worker departed (retirement already ran its
        own finish protocol), False when the loop ended because the job
        is done.
        """
        cfg = self.config
        while not self.done:
                if self.paused:
                    # Checkpoint in progress: hold still between tasks.
                    yield self.sim.timeout(cfg.steal_backoff_s)
                    continue
                closure = self.deque.pop_exec()
                if closure is not None:
                    self._failed_steals = 0
                    yield from self._execute(closure)
                    if cfg.mode == "push":
                        self._maybe_push()
                    elif (cfg.proactive_threshold > 0
                          and cfg.mode == "steal"
                          and not self.done
                          and len(self.deque) <= cfg.proactive_threshold):
                        self._proactive_steal()
                    continue
                if self.done:
                    break
                if cfg.mode == "push":
                    # Sender-initiated balancing: idle workers wait for
                    # work to be pushed to them (no stealing).
                    self.stats.failed_steal_attempts += 1
                    yield self.sim.timeout(cfg.steal_backoff_s)
                    continue
                got = yield from self._steal_once()
                if got:
                    self._failed_steals = 0
                    continue
                self._failed_steals += 1
                if (
                    cfg.retire_after_failed_steals is not None
                    and self._failed_steals >= cfg.retire_after_failed_steals
                    and len(self.peers) > 1
                    and not self.suspended_or_deque_nonempty()
                ):
                    yield from self._depart(reason="retired", migrate_ready=False)
                    return True
                yield self.sim.timeout(cfg.steal_backoff_s)
        return False

    def _on_run_interrupt(self, intr: Interrupt) -> Generator:
        cause = str(intr.cause)
        if cause == "machine-crash":
            self._finish("crashed")
            return
        if cause == "worker-stop":
            # Teardown halt (Worker.stop()): no migration, no protocol.
            self._finish("stopped")
            return
        # Graceful eviction (owner reclaim or priority preemption):
        # migrate tasks and die.
        reason = {"owner-reclaimed": "reclaimed"}.get(cause, cause)
        yield from self._depart(reason=reason, migrate_ready=True)

    def suspended_or_deque_nonempty(self) -> bool:
        """True if this worker still holds closures it cannot abandon
        without migrating them (blocks no-migration retirement paths)."""
        return bool(self.deque) or bool(self.suspended)

    def _finish(self, reason: str) -> None:
        if self.stats.end_time == 0.0:
            self.stats.end_time = self.sim.now
        self.stats.busy_s = self.workstation.cpu_busy_s
        self.exit_reason = reason
        if self.trace is not None:
            if reason == "crashed":
                # Fail-stop: everything still resident here is lost (the
                # conservation invariant accounts these against redo).
                lost = [c.cid for c in self.deque.peek_all()]
                lost += list(self.suspended)
                # Closures can also die in the socket receive buffer: a
                # steal reply or migration batch that was *delivered* but
                # not yet picked up by the net loop (busy in a send) when
                # the crash landed.  The protocol recovers via the
                # sender's redo obligation; the accounting must still
                # record where these copies terminated.
                for msg in self.socket.buffered_messages():
                    payload = msg.payload
                    if not isinstance(payload, tuple) or not payload:
                        continue
                    if payload[0] == P.STEAL_REPLY and payload[1] is not None:
                        lost += [c.cid for c in payload[1]]
                    elif payload[0] == P.MIGRATE:
                        lost += [c.cid for c in payload[1]]
                        lost += [c.cid for c in payload[2]]
                if lost:
                    self.trace.emit(self.sim.now, "closure.lost", self.name,
                                    cids=lost, reason="crash")
            self.trace.emit(
                self.sim.now, f"worker.exit.{reason}", self.name,
                deque=len(self.deque), susp=len(self.suspended),
                failed=self._failed_steals,
                threshold=self.config.retire_after_failed_steals,
                port=self.config.port,
            )
        if self._prof is not None:
            # Closes the participation span; any phase the exit
            # interrupted (crash mid-steal, mid-protocol) is swept shut.
            self._prof.worker_end(self.sim.now, self.name, reason)
        if self.on_exit:
            self.on_exit(reason)
        self.finished.set(reason)

    def _enqueue_root(self) -> None:
        """Create and enqueue the job's root closure (Clearinghouse said so)."""
        args = [Continuation(CLEARINGHOUSE_TARGET, 0), *self.job.root_args]
        root = Closure(self.new_cid(), self.job.root.name, args, depth=0)
        self.enqueue_ready(root)

    def _on_run_root(self, assigned: Optional[str] = None) -> None:
        """The Clearinghouse lost the root owner and picked (or is
        recruiting) this machine to restart the root task.

        ``assigned`` names the worker the Clearinghouse appointed as the
        new owner (the survivor path); ``None`` is an open recruitment
        ping where the first re-registrant inherits the root.
        """
        if self.done or self.workstation.crashed:
            return
        if self.departed:
            # Ping to an ex-member.  Only an idle retired machine may
            # answer (a reclaimed one belongs to its owner again); it
            # rejoins and re-registers, and for an open recruitment the
            # Clearinghouse grants run_root to the first registrant
            # after clearing the owner.
            forced = "assigned" if assigned == self.name else "recruit"
            if self._maybe_rejoin_idle():
                if forced == "assigned":
                    # We are the appointed owner: the register reply
                    # will not re-grant the root (root_owner still
                    # names us), so _run_rejoined must force it.
                    self._recruit_pending = forced
            elif self.retired:
                # Mid-departure: the run loop is still unwinding (its
                # unregister RPC may be stuck in retry behind a
                # partition).  Park the ping; _depart answers it.
                self._recruit_pending = forced
            return
        self._enqueue_root()

    def _execute(self, closure: Closure) -> Generator:
        self.executing = True
        self._note_in_use()
        if self.trace is not None:
            # Emitted before the thread function runs: its spawns/sends
            # take effect synchronously, so by the time a crash interrupt
            # can land (the cycle-charging yield) the task has executed.
            self.trace.emit(self.sim.now, "closure.exec", self.name,
                            cid=closure.cid, thread=closure.thread_name)
        frame = Frame(self, self.workstation.profile, closure)
        ref = self.job.program.resolve(closure.thread_name)
        prof = self._prof
        if prof is not None:
            # The thread function runs synchronously here, so every DAG
            # edge it creates (spawn, successor, send) is recorded under
            # _exec_cid before exec_end — which is what lets the
            # profiler finish this node's span immediately.
            self._exec_cid = closure.cid
            prof.exec_begin(self.sim.now, self.name, closure.cid,
                            closure.thread_name, closure.depth)
        ref.fn(frame, *closure.call_args())
        self.stats.tasks_executed += 1
        if self._m_task_grain is not None or self._health is not None:
            service_s = self.workstation.seconds_for(frame.cycles)
            if self._m_task_grain is not None:
                self._m_task_grain.observe(service_s)
                self._sample_deque()
            if self._health is not None:
                self._health.task_done(self.sim.now, self.name, service_s)
        if self.config.track_completed and closure.join_counter == 0:
            self.completed.add(closure.cid)
        self.executing = False
        # Charge the task's simulated cycles (dispatch + work + spawns +
        # sends); yielding here is also the poll point where concurrent
        # steal requests and arriving arguments interleave.
        if prof is None:
            yield self.workstation.execute(frame.cycles)
            return
        self._exec_cid = None
        prof.exec_end(self.sim.now, self.name, closure.cid,
                      self.workstation.seconds_for(frame.cycles))
        try:
            yield self.workstation.execute(frame.cycles)
        finally:
            # Also reached by a crash Interrupt landing in the yield:
            # the working interval and its B/E pair must close before
            # _finish ends the participation span.
            prof.exec_done(self.sim.now, self.name, closure.cid)

    # ------------------------------------------------------------------
    # Stealing (thief side)
    # ------------------------------------------------------------------

    def _steal_once(self) -> Generator:
        prof = self._prof
        if prof is None:
            return (yield from self._steal_attempt())
        prof.phase_begin(self.sim.now, self.name, "stealing")
        try:
            return (yield from self._steal_attempt())
        finally:
            prof.phase_end(self.sim.now, self.name, "stealing")

    def _steal_attempt(self) -> Generator:
        cfg = self.config
        if cfg.mode == "central":
            # Central-queue baseline: the only place to fetch work is
            # the queue holder (the Clearinghouse host's worker).
            victims = [] if self.name == self.ch_host else [self.ch_host]
        else:
            victims = sorted(p for p in self.peers if p != self.name)
        if not victims:
            self.stats.failed_steal_attempts += 1
            yield self.sim.timeout(cfg.steal_backoff_s)
            return False
        victim = self.victim_policy.choose(victims)
        self.stats.steal_requests_sent += 1
        # Replies come back to the worker's *main* socket (tagged with a
        # request id), so a reply that arrives after we stopped waiting —
        # slow link, or we were interrupted by the owner — is adopted by
        # the net loop rather than lost.  The victim only regenerates
        # stolen work on a *crash*, so a lost grant would hang the job.
        self._steal_seq += 1
        req_id = self._steal_seq
        if self._prof is not None:
            self._prof.steal_request(self.sim.now, self.name, victim, req_id)
        if self.trace is not None:
            self.trace.emit(self.sim.now, "steal.request", self.name,
                            victim=victim, req=req_id)
        waiter = Event(self.sim)
        self._steal_waiters[req_id] = waiter
        self._steal_sent[req_id] = self.sim.now
        self._steal_open[req_id] = victim
        try:
            self._post(victim, cfg.port, (P.STEAL_REQ, self.name, req_id))
            deadline = self.sim.timeout(cfg.steal_timeout_s)
            settled = yield AnyOf(self.sim, [waiter, deadline])
        finally:
            self._steal_waiters.pop(req_id, None)
            self._steal_sent.pop(req_id, None)
        if waiter in settled and settled[waiter]:
            return True  # the net loop already enqueued the task
        self.stats.failed_steal_attempts += 1
        if waiter not in settled:
            # No reply at all inside the budget: teach the policy, so a
            # latency-aware thief de-prioritizes unresponsive victims
            # (stragglers, partitioned or congested links).
            self.victim_policy.observe_timeout(victim, cfg.steal_timeout_s)
            if self._health is not None:
                self._health.steal_timeout(self.sim.now, self.name, victim)
        elif self._health is not None:
            self._health.steal_refused(self.sim.now, self.name, victim)
        return False

    def _proactive_steal(self) -> None:
        """Fire-and-forget steal request before going idle.

        Early stealing hides the steal round-trip behind the tail of
        local work: the reply is adopted by the net loop whenever it
        arrives (the no-waiter path of :meth:`_on_steal_reply`).  At
        most one proactive request is in flight at a time.
        """
        cfg = self.config
        if self._proactive is not None:
            req, victim = self._proactive
            sent_at = self._steal_sent.get(req)
            if sent_at is not None and self.sim.now - sent_at < cfg.steal_timeout_s:
                return  # one in flight is enough
            # The outstanding one went unanswered past the budget.
            self._steal_sent.pop(req, None)
            self._proactive = None
            self.victim_policy.observe_timeout(victim, cfg.steal_timeout_s)
            if self._health is not None:
                self._health.steal_timeout(self.sim.now, self.name, victim)
        victims = sorted(p for p in self.peers if p != self.name)
        if not victims:
            return
        victim = self.victim_policy.choose(victims)
        self.stats.steal_requests_sent += 1
        self.stats.proactive_steals_sent += 1
        self._steal_seq += 1
        req_id = self._steal_seq
        self._proactive = (req_id, victim)
        self._steal_sent[req_id] = self.sim.now
        self._steal_open[req_id] = victim
        if self._prof is not None:
            self._prof.steal_request(self.sim.now, self.name, victim, req_id)
        if self.trace is not None:
            self.trace.emit(self.sim.now, "steal.request", self.name,
                            victim=victim, req=req_id, proactive=True)
        self._post(victim, cfg.port, (P.STEAL_REQ, self.name, req_id))

    # ------------------------------------------------------------------
    # The net loop (victim side + control messages)
    # ------------------------------------------------------------------

    def _net(self) -> Generator:
        try:
            while True:
                msg = yield self.socket.recv()
                payload = msg.payload
                if not isinstance(payload, tuple) or not payload:
                    continue
                tag = payload[0]
                if tag == P.STEAL_REQ:
                    yield from self._serve_steal(msg, payload[1], payload[2])
                elif tag == P.STEAL_REPLY:
                    yield from self._on_steal_reply(payload[1], payload[2], payload[3])
                elif tag == P.GRANT_ACK:
                    self._pending_grants.pop((payload[1], payload[2]), None)
                elif tag == P.ARG:
                    self._on_remote_arg(payload[1], payload[2], payload[3],
                                        payload[4] if len(payload) > 4 else None)
                elif tag == P.ARG_ACK:
                    self._pending_args.pop(payload[2], None)
                elif tag == P.MIGRATE:
                    self._on_migrate(msg, payload[1], payload[2], payload[3],
                                     payload[4] if len(payload) > 4 else None)
                elif tag == P.JOB_DONE:
                    self._on_job_done(payload[1])
                    if self.departed:
                        return  # forwarder duty over
                elif tag == P.PEER_UPDATE:
                    self._on_peer_update(payload[1])
                elif tag == P.WORKER_DIED:
                    self._on_worker_died(payload[1])
                elif tag == P.RUN_ROOT:
                    self._on_run_root(payload[1] if len(payload) > 1 else None)
                elif tag == P.LOAD:
                    self.peer_loads[payload[1]] = payload[2]
                elif tag == P.PAUSE:
                    self.paused = True
                elif tag == P.RESUME:
                    self.paused = False
                elif tag == P.SNAPSHOT_REQ:
                    host, port = msg.reply_addr()
                    self._post(
                        host, port,
                        (
                            P.SNAPSHOT_REPLY,
                            self.name,
                            self.deque.peek_all(),
                            list(self.suspended.values()),
                            self._seq,
                        ),
                    )
        except Interrupt:
            return
        finally:
            if self.done or self.workstation.crashed:
                self.socket.close()

    def _serve_steal(self, msg, thief: str, req_id: int) -> Generator:
        self.stats.steal_requests_received += 1
        batch: Optional[List[Closure]] = None
        if not self.departed and not self.done and not self.paused:
            # Steal-one hands over a single tail closure; steal-half up
            # to half the ready list (amortising one round-trip over
            # several tasks on high-latency links).
            take = (max(1, len(self.deque) // 2)
                    if self.config.steal_amount == "half" else 1)
            for _ in range(take):
                closure = self.deque.pop_steal()
                if closure is None:
                    break
                if batch is None:
                    batch = []
                batch.append(closure)
        if batch is not None:
            self.stats.tasks_stolen_from += len(batch)
            # Redundant state for crash redo: remember what went where.
            mine = self.outstanding.setdefault(thief, {})
            for closure in batch:
                mine[closure.cid] = closure
                if self.trace is not None:
                    self.trace.emit(self.sim.now, "steal.grant", self.name,
                                    thief=thief, cid=closure.cid, req=req_id)
            self._note_in_use()
            if self._prof is not None:
                self._prof.steal_grant(self.sim.now, self.name, thief,
                                       len(batch), req_id)
            if self._m_deque_series is not None:
                self._sample_deque()
            if self.config.grant_ack_timeout_s is not None:
                # The grant may die on a lossy or partitioned link; arm
                # the reclaim timer (disarmed by the thief's GRANT_ACK).
                self._pending_grants[(thief, req_id)] = list(batch)
                proc = self.sim.process(
                    self._grant_reclaim_timer(thief, req_id),
                    name=f"grant-ack@{self.name}",
                )
                self.workstation.register_process(proc)
        host, port = msg.reply_addr()
        reply = (P.STEAL_REPLY, batch, self.name, req_id)
        yield self.socket.sendto(reply, host, port, size_bytes=P.estimate_size(reply))

    def _grant_reclaim_timer(self, thief: str, req_id: int) -> Generator:
        try:
            yield self.sim.timeout(self.config.grant_ack_timeout_s)
        except Interrupt:
            return
        batch = self._pending_grants.pop((thief, req_id), None)
        if batch:
            self._reclaim_grant(thief, req_id, batch)

    def _reclaim_grant(self, thief: str, req_id: int, batch: List[Closure]) -> None:
        """No GRANT_ACK in time: presume the grant died in flight and
        regenerate the closures, exactly like a crash redo.

        If the grant (or only its ack) actually survived, the thief runs
        the originals and the copies' duplicate sends are rejected
        slot-wise at the receivers — the same safety argument as redo
        after a falsely-suspected death.
        """
        if self.done or self.workstation.crashed:
            return
        mine = self.outstanding.get(thief)
        originals: List[Closure] = []
        if mine:
            for closure in batch:
                if mine.pop(closure.cid, None) is not None:
                    originals.append(closure)
            if not mine:
                self.outstanding.pop(thief, None)
        if not originals:
            return  # already redone (the thief was declared dead first)
        copies = [c.redo_copy(self.new_cid()) for c in originals]
        self.stats.tasks_redone += len(copies)
        self.stats.grants_reclaimed += len(copies)
        if self._prof is not None:
            self._prof.redo(self.sim.now, self.name,
                            [(o.cid, c.cid) for o, c in zip(originals, copies)])
        if self._m_redo is not None:
            self._m_redo.inc(len(copies))
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "steal.reclaim", self.name, thief=thief,
                req=req_id,
                pairs=[(o.cid, c.cid) for o, c in zip(originals, copies)],
            )
        if self.departed and not self._maybe_rejoin_idle():
            proc = self.sim.process(
                self._redo_handoff(copies, []),
                name=f"reclaim-handoff@{self.name}",
            )
            self.workstation.register_process(proc)
        else:
            for copy in copies:
                self.enqueue_ready(copy)

    def _on_steal_reply(self, batch: Optional[List[Closure]], victim: str, req_id: int) -> Generator:
        """A steal reply (possibly late) arrived at the main socket."""
        waiter = self._steal_waiters.pop(req_id, None)
        self._steal_open.pop(req_id, None)
        if self._proactive is not None and self._proactive[0] == req_id:
            self._proactive = None
        # Request→grant latency (the quantity the latency-aware
        # work-stealing analyses argue drives makespan).  Late grants
        # adopted after the thief stopped waiting have no recorded send
        # time and are skipped.  Refusals still carry RTT information,
        # so the victim policy learns from every reply.
        sent_at = self._steal_sent.pop(req_id, None)
        if sent_at is not None:
            latency = self.sim.now - sent_at
            self.victim_policy.observe(victim, latency)
            if batch is not None:
                self.stats.steal_latency_sum_s += latency
                self.stats.steal_latency_count += 1
                if self._m_steal_latency is not None:
                    self._m_steal_latency.observe(latency)
                if self._m_steal_latency_policy is not None:
                    self._m_steal_latency_policy.observe(latency)
        if batch is not None:
            if self.config.grant_ack_timeout_s is not None:
                # Receipt ack: disarms the victim's reclaim timer.  Sent
                # in every branch — the grant physically arrived; what
                # this worker then does with it is traced separately.
                self._post(victim, self.config.port,
                           (P.GRANT_ACK, self.name, req_id))
            if self.done:
                # Job over; the victim's redundant copy is harmless, but
                # the checker must know the grant terminated here.
                if self.trace is not None:
                    for closure in batch:
                        self.trace.emit(self.sim.now, "closure.drop",
                                        self.name, cid=closure.cid,
                                        reason="thief-done")
            elif self.departed:
                if self._maybe_rejoin_idle():
                    # Retired for lack of work — and work just arrived.
                    self._adopt_stolen(batch, victim, req_id)
                else:
                    # Evacuated: pass the late grant to a peer.
                    handoff = list(batch)  # may be re-keyed on failover
                    self._handoffs_active += 1
                    try:
                        target = yield from self._migrate_with_ack(handoff, [])
                    finally:
                        self._handoffs_active -= 1
                    if target is None and self.trace is not None:
                        # Nobody took it: the closures are gone (the
                        # victim still believes we have them and will not
                        # redo them unless we crash) — surface the loss
                        # to the checker.
                        for closure in handoff:
                            self.trace.emit(self.sim.now, "closure.drop",
                                            self.name, cid=closure.cid,
                                            reason="no-peer")
            else:
                self._adopt_stolen(batch, victim, req_id)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(batch is not None)

    def _adopt_stolen(self, batch: List[Closure], victim: str, req_id: int) -> None:
        self.stats.tasks_stolen += len(batch)
        if self._prof is not None:
            self._prof.steal_adopt(self.sim.now, self.name, victim,
                                   len(batch), req_id)
        if self._m_steals is not None:
            self._m_steals.inc(len(batch))
        if self._health is not None:
            self._health.steal_ok(self.sim.now, self.name)
        for closure in batch:
            self.enqueue_ready(closure, local=True)
            if self.trace is not None:
                self.trace.emit(self.sim.now, "steal.success", self.name,
                                victim=victim, cid=closure.cid, req=req_id)

    def _on_migrate(self, msg, ready: List[Closure], suspended: List[Closure],
                    sender: str, offer: Optional[int] = None) -> None:
        if self.done or self.workstation.crashed:
            return
        if self.departed:
            if not self.retired or self._run_proc.is_alive:
                # Reclaimed (the owner has the machine back), or retired
                # but the old run loop is still mid-departure.  We cannot
                # take responsibility; send no ack — the migrating worker
                # will retry with another peer.
                return
            # Retired for lack of work — but work just arrived.  The
            # machine is idle and its owner still permits the job, so it
            # rejoins the computation (the adaptive join/leave of the
            # paper's NOW model).  Without this, a schedule where every
            # live worker retires while an undetected-dead peer holds
            # the remaining closures would strand the job: the migration
            # redo that regenerates them would find no adopter.
            self._rejoin()
        host, port = msg.reply_addr()
        if offer is not None:
            # Acked-offer path only: push-mode migrations never carry an
            # offer seq — they are fire-and-forget, never retransmitted,
            # and the same closure may legitimately ping-pong between
            # two workers, which a cid-based dedup would swallow.
            key = (sender, offer)
            if key in self._adopted_batches:
                # Retransmitted offer: the sender never saw our ack
                # (lost on a severed or congested link).  Re-ack without
                # re-adopting — double-enqueueing the same closure
                # objects would execute them twice.
                self._post(host, port, (P.MIGRATE_ACK, self.name))
                if self.trace is not None:
                    self.trace.emit(self.sim.now, "migrate.dup", self.name,
                                    sender=sender,
                                    n=len(ready) + len(suspended))
                return
            self._adopted_batches.add(key)
        for closure in suspended:
            self.suspended[closure.cid] = closure
        self.deque.extend_tail(ready)
        self.stats.tasks_migrated_in += len(ready) + len(suspended)
        if self._prof is not None:
            self._prof.migrate_in(self.sim.now, self.name, sender,
                                  len(ready) + len(suspended))
        self._note_in_use()
        self._post(host, port, (P.MIGRATE_ACK, self.name))
        if self.trace is not None:
            self.trace.emit(self.sim.now, "migrate.in", self.name,
                            sender=sender, n=len(ready) + len(suspended),
                            cids=[c.cid for c in ready] + [c.cid for c in suspended])

    def _on_job_done(self, result: Any) -> None:
        self.done = True
        self.result = result
        if self.stats.end_time == 0.0:
            self.stats.end_time = self.sim.now

    def _on_peer_update(self, names: List[str]) -> None:
        self._set_peers(names)

    def _set_peers(self, names: List[str]) -> None:
        self.peers = list(names)
        self._peers_seen.update(names)

    def _on_worker_died(self, dead: str) -> None:
        """Crash redo: re-enqueue copies of everything *dead* stole from
        us, and re-home everything we migrated to it at departure.

        Idempotent: the notice arrives both as the Clearinghouse's
        broadcast datagram (which a partition can drop) and piggybacked
        on every heartbeat reply (reliable RPC)."""
        if dead in self._seen_deaths:
            return
        self._seen_deaths.add(dead)
        # A dead victim will never answer an open steal request (a grant
        # it sent before crashing is covered by its own victims' redo).
        for req in [r for r, v in self._steal_open.items() if v == dead]:
            del self._steal_open[req]
        # Grants to the dead thief pending an ack are covered by the
        # death redo below; disarm their reclaim bookkeeping.
        for key in [k for k in self._pending_grants if k[0] == dead]:
            del self._pending_grants[key]
        stolen = self.outstanding.pop(dead, None)
        if stolen:
            originals = list(stolen.values())
            copies = [c.redo_copy(self.new_cid()) for c in originals]
            self.stats.tasks_redone += len(copies)
            if self._prof is not None:
                self._prof.redo(
                    self.sim.now, self.name,
                    [(o.cid, c.cid) for o, c in zip(originals, copies)])
            if self._m_redo is not None:
                self._m_redo.inc(len(copies))
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "redo", self.name, dead=dead, n=len(copies),
                    pairs=[(o.cid, c.cid) for o, c in zip(originals, copies)],
                )
            if self.departed and not self._maybe_rejoin_idle():
                # Evacuated: hand the regenerated work to a peer that
                # explicitly acks adoption — our peer list may be stale
                # (we stopped fetching updates at departure), so a blind
                # post could vanish into a dead or departed machine.
                proc = self.sim.process(
                    self._redo_handoff(copies, []), name=f"redo-handoff@{self.name}"
                )
                self.workstation.register_process(proc)
            else:
                for copy in copies:
                    self.enqueue_ready(copy)
        self._redo_migrated(dead)

    def _maybe_rejoin_idle(self) -> bool:
        """Rejoin to adopt work locally, if retired (idle) — else False.

        A retired worker that regenerates lost work is an idle machine
        with runnable closures in hand: running them itself always beats
        hunting for an adopter through a peer list frozen at retirement
        (which may name nobody still alive).
        """
        if (
            self.retired
            and not self.done
            and not self.workstation.crashed
            and not self._run_proc.is_alive
        ):
            self._rejoin()
            return True
        return False

    def _redo_migrated(self, dead: str) -> None:
        """Migration redo: the peer that adopted our closures fail-stopped.

        The retained batch must find a new home.  Closures that were (or
        became) ready are re-issued as redo copies under fresh identities
        — the adopter may already have executed them, and a re-execution's
        duplicate sends are dropped at the receivers.  Closures still
        awaiting arguments keep their identity (continuations elsewhere
        point at it); the relayed fills retained for them are replayed
        after the handoff in case any were in flight at the crash.
        """
        batch = self.migrated.pop(dead, None)
        if not batch:
            return
        ready: List[Closure] = []
        still_suspended: List[Closure] = []
        pairs = []
        for closure in batch:
            if closure.is_ready:
                copy = closure.redo_copy(self.new_cid())
                ready.append(copy)
                pairs.append((closure.cid, copy.cid))
                # The old identity is finished with: stop forwarding for
                # it so late duplicate fills terminate here as duplicates.
                self.forward_map.pop(closure.cid, None)
                self._forwarded.pop(closure.cid, None)
            else:
                still_suspended.append(closure)
                pairs.append((closure.cid, closure.cid))
        self.stats.tasks_redone += len(batch)
        if self._prof is not None:
            # Only re-keyed copies transfer pending span state;
            # suspended closures keep their identity (and their entry).
            self._prof.redo(self.sim.now, self.name,
                            [(o, c) for o, c in pairs if o != c])
        if self._m_redo is not None:
            self._m_redo.inc(len(batch))
        if self.trace is not None:
            self.trace.emit(self.sim.now, "redo", self.name, dead=dead,
                            n=len(batch), pairs=pairs)
        if self.departed and not self._maybe_rejoin_idle():
            proc = self.sim.process(
                self._redo_handoff(ready, still_suspended),
                name=f"redo-migrated@{self.name}",
            )
            self.workstation.register_process(proc)
            return
        # Rejoined (or a prior redo this event already rejoined us):
        # adopt the batch locally.
        for copy in ready:
            self.enqueue_ready(copy)
        for closure in still_suspended:
            self.forward_map.pop(closure.cid, None)
            self.suspended[closure.cid] = closure
            for continuation, value in self._forwarded.pop(closure.cid, []):
                self._fill_local(continuation, value)

    def _redo_handoff(self, ready: List[Closure], suspended: List[Closure]) -> Generator:
        """Post-departure redo: find a live adopter for regenerated work.

        ``suspended`` closures keep their identities: on success the
        forward map is repointed at the adopter and every fill this
        worker relayed to the dead adopter is replayed — a fill applied
        before the crash is rejected slot-wise as a duplicate, while one
        dropped in flight at the crash would otherwise be lost forever.
        """
        self._handoffs_active += 1
        try:
            target = yield from self._migrate_with_ack(ready, suspended)
        except Interrupt:
            target = None
        finally:
            self._handoffs_active -= 1
        if target is None:
            if self.trace is not None:
                cids = [c.cid for c in ready] + [c.cid for c in suspended]
                self.trace.emit(self.sim.now, "closure.lost", self.name,
                                cids=cids, reason="redo-no-peer")
            return
        for closure in suspended:
            self.forward_map[closure.cid] = target
        for closure in suspended:
            for continuation, value in self._forwarded.get(closure.cid, ()):
                self._send_arg(target, continuation, value)

    # ------------------------------------------------------------------
    # Rejoin after retirement
    # ------------------------------------------------------------------

    def _rejoin(self) -> None:
        """Un-retire: restart the run loop and heartbeat to adopt work."""
        self.departed = False
        self.retired = False
        self._forwarding = False
        self._failed_steals = 0
        self.exit_reason = None
        self.stats.end_time = 0.0
        if self.trace is not None:
            self.trace.emit(self.sim.now, "worker.rejoin", self.name)
        self._run_proc = self.sim.process(
            self._run_rejoined(), name=f"worker-rejoin@{self.name}"
        )
        self.workstation.register_process(self._run_proc)
        if not self._update_proc.is_alive:
            # (The old heartbeat loop may not have noticed the departure
            # yet; if it is still running it simply carries on.)
            self._update_proc = self.sim.process(
                self._updates(), name=f"worker-upd@{self.name}"
            )
            self.workstation.register_process(self._update_proc)

    def _run_rejoined(self) -> Generator:
        """The run loop of a re-recruited worker: re-register, then work.

        Re-registration restores Clearinghouse heartbeat tracking (and
        peer visibility); if the root owner died with no survivors, the
        re-registrant is handed the root again.
        """
        prof = self._prof
        try:
            if prof is not None:
                prof.worker_begin(self.sim.now, self.name)
                prof.phase_begin(self.sim.now, self.name, "protocol")
            reply = yield from rpc_call(
                self.network, self.host, self.ch_host, self.config.ch_rpc_port,
                P.RPC_REGISTER, self.name,
            )
            if prof is not None:
                prof.phase_end(self.sim.now, self.name, "protocol")
            if reply.get("done"):
                self._on_job_done(reply.get("result"))
                self._finish("done")
                return
            self._set_peers(reply["peers"])
            forced = self._recruit_pending == "assigned"
            self._recruit_pending = None
            if reply["run_root"] or forced:
                # ``forced``: the Clearinghouse appointed us owner while
                # we were mid-departure; the register reply cannot
                # re-grant the root (root_owner still names us), so the
                # parked ping is honored here.
                self._enqueue_root()
            departed = yield from self._main_loop()
            if not departed:
                self._finish("done")
        except Interrupt as intr:
            yield from self._on_run_interrupt(intr)

    # ------------------------------------------------------------------
    # Sender-initiated balancing (the "push" baseline)
    # ------------------------------------------------------------------

    def _balancer(self) -> Generator:
        """Periodically broadcast our load and export excess tasks."""
        try:
            while not self.done and not self.departed:
                yield self.sim.timeout(self.config.load_broadcast_s)
                if self.done or self.departed:
                    return
                for peer in self.peers:
                    if peer != self.name:
                        self._post(
                            peer, self.config.port, (P.LOAD, self.name, len(self.deque))
                        )
                self._maybe_push()
        except Interrupt:
            return

    def _maybe_push(self) -> None:
        """Export tasks to the least-loaded peer when we hold too many."""
        cfg = self.config
        if len(self.deque) <= cfg.push_threshold:
            return
        candidates = [
            (load, name)
            for name, load in self.peer_loads.items()
            if name in self.peers and name != self.name
        ]
        if not candidates:
            return
        load, target = min(candidates)
        if load + 1 >= len(self.deque):
            return
        batch: List[Closure] = []
        while len(self.deque) > cfg.push_threshold and len(batch) < 4:
            closure = self.deque.pop_steal()
            if closure is None:
                break
            batch.append(closure)
        if batch:
            self.stats.tasks_migrated_out += len(batch)
            self.peer_loads[target] = load + len(batch)
            self._post(target, cfg.port, (P.MIGRATE, batch, [], self.name))

    # ------------------------------------------------------------------
    # Peer updates / heartbeat
    # ------------------------------------------------------------------

    def _updates(self) -> Generator:
        try:
            while not self.done:
                yield self.sim.timeout(self.config.update_interval_s)
                if self.done:
                    return
                if (self.departed and not self._forwarding
                        and self.exit_reason is not None):
                    # Departure protocol complete (unregister landed or
                    # fail-stop).  Until then keep heartbeating: the
                    # unregister RPC can sit in retransmission behind a
                    # partition for longer than the death timeout, and a
                    # partition must delay heartbeats, not forge false
                    # deaths.
                    return
                try:
                    reply = yield from rpc_call(
                        self.network, self.host, self.ch_host, self.config.ch_rpc_port,
                        P.RPC_UPDATE, self.name,
                    )
                except Exception:
                    continue  # Clearinghouse unreachable; try next period
                if self._prof is not None:
                    # Counted, not wall-attributed: this loop runs
                    # concurrently with the run loop's buckets.
                    self._prof.heartbeat(self.sim.now, self.name)
                if not self.done and not self.departed:
                    self._set_peers(reply["peers"])
                # Deaths piggybacked on the (reliable) heartbeat reply:
                # the WORKER_DIED broadcast is a plain datagram, so a
                # victim partitioned at announcement time would otherwise
                # never learn of its redo obligation — forwarders
                # included, which is why this runs even when departed.
                for dead in reply.get("dead", ()):
                    if dead != self.name:
                        self._on_worker_died(dead)
        except Interrupt:
            return

    # ------------------------------------------------------------------
    # Departure: retirement and owner reclaim
    # ------------------------------------------------------------------

    def _depart(self, reason: str, migrate_ready: bool) -> Generator:
        """Leave the computation gracefully, migrating tasks to a peer."""
        self.retired = reason == "retired"
        self.departed = True
        ready = self.deque.drain() if migrate_ready else []
        suspended = list(self.suspended.values())
        if ready or suspended:
            self._fill_hold = []
            try:
                target = yield from self._migrate_with_ack(ready, suspended)
            finally:
                held, self._fill_hold = self._fill_hold, None
            if target is None:
                if reason == "reclaimed":
                    # Owner wants the machine *now* and nobody took the
                    # work: treat it as a fail-stop.  The closures are
                    # lost; the Clearinghouse times our heartbeat out and
                    # the crash-redo protocol regenerates the work.
                    if self.trace is not None:
                        lost = [c.cid for c in ready] + [c.cid for c in suspended]
                        if lost:
                            self.trace.emit(self.sim.now, "closure.lost",
                                            self.name, cids=lost,
                                            reason="reclaim-failstop")
                    self.suspended.clear()
                    self._finish("crashed")
                    # Complete the fail-stop: fall silent.  With the
                    # socket closed, peers' datagrams are dropped at the
                    # NIC exactly as on a machine crash — a "dead"
                    # worker that kept receiving would confuse both
                    # peers and the causality invariant.
                    self._net_proc.interrupt("reclaim-failstop")
                    self._update_proc.interrupt("reclaim-failstop")
                    self.socket.close()
                    return
                # Voluntary retirement: undo and keep living (the run
                # loop returns us to stealing); replay the parked sends
                # against the suspended table we kept.
                self.deque.extend_tail(ready)
                self.departed = False
                self.retired = False
                for continuation, value in held:
                    self._fill_local(continuation, value)
                if self._recruit_pending:
                    # A root-recruitment ping landed during the aborted
                    # departure; we are alive and registered, so answer
                    # it directly (a duplicate root is sound — its sends
                    # are dropped at the receivers).
                    self._recruit_pending = None
                    self._enqueue_root()
                return
            for closure in suspended:
                self.forward_map[closure.cid] = target
            self.suspended.clear()
            self.stats.tasks_migrated_out += len(ready) + len(suspended)
            if self.trace is not None:
                self.trace.emit(self.sim.now, "migrate.out", self.name,
                                target=target, n=len(ready) + len(suspended),
                                cids=[c.cid for c in ready] + [c.cid for c in suspended])
            # Sends that arrived mid-handoff chase the closures to their
            # new home (the forward_map now routes any later ones).
            for continuation, value in held:
                self._send_arg(target, continuation, value)
        # Relay/redo duties outlive the departure: the Clearinghouse must
        # keep watching our heartbeat, because fills routed through a
        # silently-crashed forwarder are dropped forever (no victim would
        # ever redo them) and the job deadlocks.  An unanswered steal
        # request counts as a duty: the grant it may yet draw is only
        # regenerated if our crash is *detected*, so the crash window
        # between departure and the reply must stay under surveillance.
        self._forwarding = bool(self.forward_map or self.outstanding
                                or self.migrated or self._steal_open)
        if self._prof is not None:
            self._prof.phase_begin(self.sim.now, self.name, "protocol")
        try:
            yield from rpc_call(
                self.network, self.host, self.ch_host, self.config.ch_rpc_port,
                P.RPC_UNREGISTER,
                {"name": self.name, "graceful": True,
                 "forwarding": self._forwarding},
            )
        except Exception:
            pass  # Clearinghouse will eventually time us out
        finally:
            if self._prof is not None:
                self._prof.phase_end(self.sim.now, self.name, "protocol")
        self._finish(reason)
        if self._forwarding and not self._update_proc.is_alive \
                and not self.workstation.crashed:
            # The heartbeat loop may have noticed ``departed`` and exited
            # during the migration handshake; forwarders need it back.
            self._update_proc = self.sim.process(
                self._updates(), name=f"worker-upd@{self.name}"
            )
            self.workstation.register_process(self._update_proc)
        if self.retired:
            # Stay reachable.  A retired worker is an idle machine whose
            # owner still permits the job, so its daemon keeps listening
            # until JOB_DONE.  Arriving migrated work — a late grant, or
            # a migration redo after an adopter's crash — re-recruits the
            # machine via _rejoin; without this, a schedule where every
            # live worker retires while an undetected-dead peer holds the
            # remaining work strands the job forever.
            if self._recruit_pending and not self.done \
                    and not self.workstation.crashed:
                # The Clearinghouse pinged us with RUN_ROOT while the
                # unregister was still in flight; answer it now that the
                # departure has completed.
                self._rejoin()
            return
        if not self.forward_map and not self.outstanding and not self.migrated:
            # Nothing to forward and no redo obligations — but a steal
            # reply may still be in
            # flight to us, and a grant lost here would hang the job
            # (victims only regenerate stolen work on a *crash*).
            # Linger one steal-timeout so the net loop can adopt any
            # straggler and pass it to a live peer, then release the
            # port so this machine can rejoin the job with a fresh
            # worker.
            try:
                yield self.sim.timeout(self.config.steal_timeout_s)
            except Interrupt:
                return  # crashed/stopped while lingering
            if (self.forward_map or self.outstanding or self.migrated
                    or self._handoffs_active):
                # A straggler adopted during the linger left us with
                # relay duties after all (or a late grant's handoff is
                # still seeking an adopter — its closures are acked to
                # the victim, so tearing down now would lose them):
                # stay up as a forwarder, and
                # amend the unregister so the Clearinghouse watches our
                # heartbeat (the first one said forwarding=False).
                self._forwarding = True
                try:
                    yield from rpc_call(
                        self.network, self.host, self.ch_host,
                        self.config.ch_rpc_port, P.RPC_UNREGISTER,
                        {"name": self.name, "graceful": True,
                         "forwarding": True},
                    )
                except Exception:
                    pass
                if not self._update_proc.is_alive \
                        and not self.workstation.crashed:
                    self._update_proc = self.sim.process(
                        self._updates(), name=f"worker-upd@{self.name}"
                    )
                    self.workstation.register_process(self._update_proc)
                return
            if self._steal_open:
                # Open steal requests outlived the full linger window.
                # Stop waiting and fall silent *while still flagged as a
                # forwarder*: the Clearinghouse times our heartbeat out,
                # and if any reply was a grant lost in flight, the
                # WORKER_DIED it broadcasts makes the victim redo the
                # closures (a lost refusal just yields a harmless false
                # death — our outstanding tables are empty).
                self._steal_open.clear()
            elif self._forwarding:
                # We unregistered as a forwarder only for steal requests
                # that have since all been answered; amend so the
                # Clearinghouse stops watching a heartbeat that is about
                # to stop on purpose.
                self._forwarding = False
                try:
                    yield from rpc_call(
                        self.network, self.host, self.ch_host,
                        self.config.ch_rpc_port, P.RPC_UNREGISTER,
                        {"name": self.name, "graceful": True,
                         "forwarding": False},
                    )
                except Exception:
                    pass
            self._net_proc.interrupt("departed-no-forwarding")
            self._update_proc.interrupt("departed")
            self.socket.close()
        # Otherwise the net loop stays alive until JOB_DONE — forwarding
        # sends to migrated closures, and listening for WORKER_DIED so
        # closures we granted to a since-crashed thief still get redone.

    def _migrate_with_ack(self, ready: List[Closure], suspended: List[Closure]) -> Generator:
        prof = self._prof
        if prof is None:
            return (yield from self._migrate_attempts(ready, suspended))
        prof.phase_begin(self.sim.now, self.name, "migrating")
        try:
            target = yield from self._migrate_attempts(ready, suspended)
        finally:
            prof.phase_end(self.sim.now, self.name, "migrating")
        if target is not None:
            prof.migrate_out(self.sim.now, self.name, target,
                             len(ready) + len(suspended))
        return target

    def _migrate_attempts(self, ready: List[Closure], suspended: List[Closure]) -> Generator:
        """Hand our closures to a peer, requiring an explicit ack.

        Tries peers in random order until one acknowledges (a peer may
        itself be departing or already done, in which case it stays
        silent and we try the next).  Returns the accepting peer's name,
        or None if nobody took the work.

        Under ``arg_retry_timeout_s`` (schedules whose links sever or
        congest) the offer is retransmitted to the *same* target before
        failing over — enough attempts to span any partition window —
        because an adopted-but-unacked batch at a live peer is a double
        home for the same closure identities.  The adopter re-acks
        duplicates without re-adopting.  If every retry still goes
        unanswered, the target may yet hold the batch, so the ready
        closures are re-keyed as redo copies before the next offer: a
        stale adopter running the originals then just produces duplicate
        sends, absorbed slot-wise like any crash-redo duplicate.
        (Suspended closures must keep their identities — continuations
        elsewhere name them — which is why failover past a live adopted
        target must be prevented rather than absorbed.)
        """
        resilient = self.config.arg_retry_timeout_s is not None
        attempts = 4 if resilient else 1
        # Candidates: everyone ever registered, minus observed deaths —
        # NOT the current peer list.  Retirements shrink ``peers``, but a
        # retired machine is still listening and rejoins when offered
        # work; a handoff that only consults the live snapshot can find
        # nothing but an undetected-dead peer and drop the closures
        # (fuzz: shrink seed 42, reclaim + crash + every thief retired).
        candidates = sorted(
            (self._peers_seen | set(self.peers)) - self._seen_deaths - {self.name}
        )
        self.rng.shuffle(candidates)
        for i, target in enumerate(candidates):
            if resilient and i > 0 and ready:
                copies = [c.redo_copy(self.new_cid()) for c in ready]
                self.stats.tasks_redone += len(copies)
                if self._prof is not None:
                    self._prof.redo(
                        self.sim.now, self.name,
                        [(o.cid, c.cid) for o, c in zip(ready, copies)])
                if self.trace is not None:
                    self.trace.emit(
                        self.sim.now, "migrate.reoffer", self.name,
                        pairs=[(o.cid, c.cid) for o, c in zip(ready, copies)],
                    )
                # In place: the caller's view (undo-retirement requeue,
                # loss accounting) must track the live identities.
                ready[:] = copies
            sock = Socket(self.network, self.host)  # ephemeral ack port
            try:
                ack_ev = sock.recv()
                # One offer seq per target: retransmissions share it (so
                # the adopter can dedup them), a failover is a new offer.
                self._migrate_seq += 1
                batch = (P.MIGRATE, ready, suspended, self.name,
                         self._migrate_seq)
                acked = received = False
                for attempt in range(attempts):
                    if attempt and self._health is not None:
                        self._health.retransmission(
                            self.sim.now, self.name, "migrate",
                            self._migrate_seq)
                    yield sock.sendto(
                        batch, target, self.config.port,
                        size_bytes=P.estimate_size(batch),
                    )
                    deadline = self.sim.timeout(self.config.steal_timeout_s)
                    # An Interrupt here (crash, reclaim fail-stop) must
                    # propagate: the callers all handle it, and eating it
                    # would keep this loop offering work from a worker
                    # whose socket is being torn down.
                    settled = yield AnyOf(self.sim, [ack_ev, deadline])
                    if ack_ev in settled:
                        received = True
                        payload = settled[ack_ev].payload
                        acked = (isinstance(payload, tuple)
                                 and payload[0] == P.MIGRATE_ACK)
                        break
                if acked:
                    if self.departed and (ready or suspended):
                        # Redundant state for migration redo: keep
                        # the batch until JOB_DONE so the adopter's
                        # crash does not orphan it.
                        self.migrated.setdefault(target, []).extend(
                            ready + suspended
                        )
                    return target
                if not received:
                    sock.cancel_recv(ack_ev)
            finally:
                sock.close()
        return None

    def _pick_live_peer(self) -> Optional[str]:
        candidates = sorted(p for p in self.peers if p != self.name)
        if not candidates:
            return None
        return candidates[self.rng.randrange(len(candidates))]

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _post(self, host: str, port: int, payload: tuple) -> None:
        """Fire-and-forget datagram (split-phase: nobody waits on it)."""
        self.network.post(
            self.host, self.socket.port, host, port, payload,
            P.estimate_size(payload),
        )

    def _note_in_use(self) -> None:
        n = len(self.deque) + len(self.suspended) + (1 if self.executing else 0)
        if n > self.stats.max_tasks_in_use:
            self.stats.max_tasks_in_use = n

    def _sample_deque(self) -> None:
        """Feed the ready-list depth into the registry (metrics wired)."""
        depth = len(self.deque)
        self._m_deque_series.record(self.sim.now, depth)
        self._m_deque_depth.observe(depth)
        if self._health is not None:
            self._health.deque_sample(self.sim.now, self.name, depth)

    def stop(self) -> None:
        """Forcibly stop all of this worker's processes (test teardown)."""
        procs = [self._run_proc, self._net_proc, self._update_proc]
        if self._balancer_proc is not None:
            procs.append(self._balancer_proc)
        for proc in procs:
            proc.interrupt("worker-stop")
        self.socket.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Worker {self.name} deque={len(self.deque)} "
            f"susp={len(self.suspended)} done={self.done}>"
        )
