"""The micro-level (intra-application) idle-initiated scheduler.

Implements the paper's Section 2 "Micro-level scheduling": each
participating worker keeps a local ready-task list, executes in LIFO
order, and when out of work becomes a *thief* stealing the tail task of
a uniformly-random victim.  Also implements the machinery around it:
the worker's network protocol, task migration on owner reclaim,
graceful retirement when parallelism shrinks, and crash redo.
"""

from repro.micro.deque import ReadyDeque
from repro.micro.steal import RandomVictim, RoundRobinVictim, VictimPolicy, make_victim_policy
from repro.micro.stats import JobStats, WorkerStats
from repro.micro.worker import Worker, WorkerConfig

__all__ = [
    "ReadyDeque",
    "VictimPolicy",
    "RandomVictim",
    "RoundRobinVictim",
    "make_victim_policy",
    "Worker",
    "WorkerConfig",
    "WorkerStats",
    "JobStats",
]
