"""The Clearinghouse: worker registry, peer updates, I/O, termination.

From the paper (Section 3): "The Clearinghouse is a special program
(independent of the particular application) that is responsible for
keeping track of all worker processes participating in the job and
providing various services to the workers.  ...  a worker process
communicates with the Clearinghouse once to register, once to
unregister, and once every 2 minutes to obtain an update.  The only
other communication between the Clearinghouse and its workers is for
I/O which is buffered as much as possible."

This implementation adds the two pieces the paper asserts but does not
detail:

* **Termination**: the job's root continuation points here; the first
  result datagram wins, and a ``job_done`` broadcast tells every worker
  (current and departed) to stop.
* **Crash detection**: the 2-minute update doubles as a heartbeat; a
  worker silent for ``death_timeout_s`` is declared dead and a
  ``worker_died`` broadcast triggers the victims' redo of its stolen
  closures ("enough redundant state is maintained so that lost work can
  be redone in the event of a machine crash").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.micro import protocol as P
from repro.net.network import Network
from repro.net.rpc import RpcServer
from repro.net.socket import Socket
from repro.obs.metrics import MetricsRegistry
from repro.sim.core import Interrupt, Simulator
from repro.sim.resources import Signal
from repro.util.trace import TraceLog


@dataclass
class ClearinghouseConfig:
    """Clearinghouse tunables (defaults follow the paper where given)."""

    #: Period of the worker-side update; used here to size death_timeout.
    update_interval_s: float = 120.0
    #: Silence after which a worker is declared crashed.
    death_timeout_s: float = 360.0
    #: How often the death detector looks at the heartbeat table.
    check_interval_s: float = 30.0
    #: Buffered-I/O flush threshold (lines); "buffered as much as possible".
    io_flush_lines: int = 64


class Clearinghouse:
    """One Clearinghouse instance serves one parallel job."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host: str,
        job_name: str = "job",
        config: Optional[ClearinghouseConfig] = None,
        trace: Optional[TraceLog] = None,
        worker_port: int = P.WORKER_PORT,
        rpc_port: int = P.CLEARINGHOUSE_PORT,
        data_port: int = P.CLEARINGHOUSE_DATA_PORT,
        assign_root: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[Any] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.host = host
        self.job_name = job_name
        self.config = config or ClearinghouseConfig()
        self.trace = trace
        self.worker_port = worker_port
        self.rpc_port = rpc_port
        self.data_port = data_port
        #: When False (checkpoint restore), nobody is handed the root —
        #: it already ran in the checkpointed past.
        self.assign_root = assign_root

        #: Live workers -> last heartbeat time.
        self.workers: Dict[str, float] = {}
        #: Cached ``sorted(self.workers)``; rebuilt on membership change.
        #: Shared (never mutated in place) across peer updates and RPC
        #: replies — heartbeats are frequent, membership changes are not.
        self._peers_sorted: Optional[List[str]] = None
        #: Departed workers that still relay fills or hold redo
        #: obligations -> last heartbeat time.  A forwarder is off the
        #: peer list but must stay under death surveillance: fills routed
        #: through a silently-crashed forwarder are dropped forever, and
        #: only a ``worker_died`` broadcast makes the victims redo the
        #: lost subtree.
        self.forwarders: Dict[str, float] = {}
        #: Every worker that ever registered (job_done goes to all).
        self.ever_registered: Set[str] = set()
        #: Workers declared dead by the death detector (never recruited).
        self.dead: Set[str] = set()
        self.root_owner: Optional[str] = None
        self.done = Signal(sim)
        self.result: Any = None
        #: Time the first worker registered / the result arrived.
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

        #: Buffered worker I/O: flushed batches of (time, worker, text).
        self.io_output: List[Tuple[float, str, str]] = []
        self._io_buffer: List[Tuple[float, str, str]] = []
        self.io_flushes = 0

        #: Observability: heartbeat-gap histogram (silence between a
        #: worker's consecutive updates — the crash detector's signal)
        #: and a live-participants series (a Perfetto counter track).
        self.metrics = metrics
        if metrics is not None:
            self._m_heartbeat_gap = metrics.histogram("ch.heartbeat.gap_s")
            self._m_participants = metrics.series("macro.participants")
            self._m_deaths = metrics.counter("ch.deaths.count")
        else:
            self._m_heartbeat_gap = None
            self._m_participants = None
            self._m_deaths = None
        #: Online diagnosis (repro.obs.health), resolved off the
        #: registry like the worker's seam: heartbeat-gap/false-death
        #: detection and the liveness watchdog ride the death detector's
        #: existing scan — no extra processes, purely observational.
        self._health = metrics.health if metrics is not None else None
        #: Span profiler (repro.obs.prof): control-plane instants on the
        #: profile's control track, same is-not-None discipline.
        self._prof = profiler

        self.rpc = RpcServer(network, host, rpc_port, name=f"ch:{job_name}")
        self.rpc.register(P.RPC_REGISTER, self._rpc_register)
        self.rpc.register(P.RPC_UNREGISTER, self._rpc_unregister)
        self.rpc.register(P.RPC_UPDATE, self._rpc_update)
        self.rpc.register(P.RPC_IO_WRITE, self._rpc_io_write)

        self.data_socket = Socket(network, host, data_port)
        self._data_proc = sim.process(self._data_loop(), name=f"ch-data:{job_name}")
        self._detector_proc = sim.process(self._death_detector(), name=f"ch-detect:{job_name}")

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------

    def _rpc_register(self, name: str, _msg) -> Dict[str, Any]:
        if self.done.is_set:
            # Late arrival: the job already finished; don't admit it.
            return {
                "peers": [],
                "run_root": False,
                "done": True,
                "result": self.result,
            }
        run_root = False
        if self.root_owner is None and self.assign_root:
            self.root_owner = name
            run_root = True
        if self.started_at is None:
            self.started_at = self.sim.now
        self.workers[name] = self.sim.now
        self._peers_sorted = None
        self.forwarders.pop(name, None)  # a rejoining retiree is live again
        self.ever_registered.add(name)
        if self._prof is not None:
            self._prof.control(self.sim.now, "ch.register", worker=name)
        if self.trace is not None:
            self.trace.emit(self.sim.now, "ch.register", self.host, worker=name)
        if self._m_participants is not None:
            self._m_participants.record(self.sim.now, len(self.workers))
        self._broadcast_peers()
        return {"peers": self._sorted_workers(), "run_root": run_root, "done": False}

    def _rpc_unregister(self, args: Dict[str, Any], _msg) -> bool:
        name = args["name"]
        self.workers.pop(name, None)
        self._peers_sorted = None
        if args.get("forwarding"):
            # Departed but still forwarding/holding redo state: keep it
            # on heartbeat watch (it reports until JOB_DONE).
            self.forwarders[name] = self.sim.now
        else:
            # A re-sent unregister may downgrade forwarding: the duties
            # the first one announced (e.g. an unanswered steal request)
            # have all resolved, and the worker is about to fall silent
            # legitimately — stop watching its heartbeat.
            self.forwarders.pop(name, None)
        if self.trace is not None:
            self.trace.emit(self.sim.now, "ch.unregister", self.host, worker=name)
        if self._m_participants is not None:
            self._m_participants.record(self.sim.now, len(self.workers))
        self._broadcast_peers()
        return True

    def _rpc_update(self, name: str, _msg) -> Dict[str, Any]:
        if name in self.workers:
            gap = self.sim.now - self.workers[name]
            if self._m_heartbeat_gap is not None:
                self._m_heartbeat_gap.observe(gap)
            if self._health is not None:
                self._health.heartbeat(self.sim.now, name, gap)
            self.workers[name] = self.sim.now  # heartbeat (no membership change)
        elif name in self.forwarders:
            gap = self.sim.now - self.forwarders[name]
            if self._m_heartbeat_gap is not None:
                self._m_heartbeat_gap.observe(gap)
            if self._health is not None:
                self._health.heartbeat(self.sim.now, name, gap)
            self.forwarders[name] = self.sim.now  # forwarder heartbeat
        elif name in self.dead and self._health is not None:
            # The failure detector was wrong: a declared-dead worker is
            # still heartbeating (e.g. a partition outlasted the death
            # timeout).  The protocol absorbs this (redo duplicates are
            # rejected slot-wise); the diagnosis layer records it.
            self._health.false_death(self.sim.now, name)
        # Deaths piggyback on the (reliable, retried) RPC reply: the
        # WORKER_DIED broadcast is a lone datagram, and a victim behind a
        # partition at announcement time would otherwise never learn of
        # its redo obligation.  Workers process the list idempotently.
        return {"peers": self._sorted_workers(), "done": self.done.is_set,
                "dead": sorted(self.dead)}

    def _rpc_io_write(self, args: Dict[str, Any], _msg) -> bool:
        """Buffered worker I/O: 'a user need only watch the Clearinghouse
        to see job output.'"""
        self._io_buffer.append((self.sim.now, args["worker"], args["text"]))
        if len(self._io_buffer) >= self.config.io_flush_lines:
            self.flush_io()
        return True

    def flush_io(self) -> None:
        """Flush the I/O buffer to the visible output log."""
        if self._io_buffer:
            self.io_output.extend(self._io_buffer)
            self._io_buffer.clear()
            self.io_flushes += 1

    # ------------------------------------------------------------------
    # Result collection & termination broadcast
    # ------------------------------------------------------------------

    def _data_loop(self) -> Generator:
        try:
            while True:
                msg = yield self.data_socket.recv()
                payload = msg.payload
                if not isinstance(payload, tuple) or not payload:
                    continue
                if payload[0] == P.RESULT and not self.done.is_set:
                    self.result = payload[1]
                    self.finished_at = self.sim.now
                    self.flush_io()
                    if self._prof is not None:
                        self._prof.control(self.sim.now, "ch.result",
                                           sender=payload[2])
                    if self.trace is not None:
                        self.trace.emit(self.sim.now, "ch.result", self.host,
                                        sender=payload[2])
                    self.done.set(payload[1])
                    self._broadcast((P.JOB_DONE, payload[1]), to=self.ever_registered)
        except Interrupt:
            return

    # ------------------------------------------------------------------
    # Crash detection
    # ------------------------------------------------------------------

    def _death_detector(self) -> Generator:
        cfg = self.config
        try:
            while not self.done.is_set:
                yield self.sim.timeout(cfg.check_interval_s)
                if self.done.is_set:
                    return
                now = self.sim.now
                last_seen: Dict[str, float] = {}
                if self._health is not None:
                    # Heartbeat-gap warnings and the liveness watchdog
                    # ride this scan (read-only over the same tables).
                    self._health.pulse(now, self.workers, self.forwarders,
                                       cfg.death_timeout_s, self.done.is_set)
                    last_seen = dict(self.workers)
                    last_seen.update(self.forwarders)
                dead = [
                    name
                    for name, last in self.workers.items()
                    if now - last > cfg.death_timeout_s
                ]
                for name in dead:
                    del self.workers[name]
                    self._peers_sorted = None
                # Departed-but-forwarding workers get the same watch: a
                # forwarder that crashes silently would drop every fill
                # routed through it, and nobody redoes those without a
                # death broadcast.
                dead_forwarders = [
                    name
                    for name, last in self.forwarders.items()
                    if now - last > cfg.death_timeout_s
                ]
                for name in dead_forwarders:
                    del self.forwarders[name]
                for name in dead + dead_forwarders:
                    self.dead.add(name)
                    if self._health is not None:
                        self._health.death(now, name, last_seen[name])
                    if self._prof is not None:
                        self._prof.control(now, "ch.death", worker=name)
                    if self.trace is not None:
                        self.trace.emit(now, "ch.worker_died", self.host, worker=name)
                    if self._m_deaths is not None:
                        self._m_deaths.inc()
                    # To *everyone*, not just current registrants: a
                    # gracefully-departed victim still holds the redo
                    # obligation for closures this worker stole from it,
                    # and must learn of the death to discharge it.
                    self._broadcast((P.WORKER_DIED, name), to=self.ever_registered)
                    if name == self.root_owner and not self.done.is_set:
                        self._reassign_root()
                if dead:
                    if self._m_participants is not None:
                        self._m_participants.record(now, len(self.workers))
                    self._broadcast_peers()
        except Interrupt:
            return

    def _reassign_root(self) -> None:
        """The root owner died: restart the root task on a survivor.

        If the root closure had in fact already executed, the redo is
        wasted work whose duplicate sends are dropped at the receivers —
        sound, merely inefficient (documented in DESIGN.md).
        """
        survivors = sorted(self.workers)
        if survivors:
            # The ping names the appointee: a survivor that is secretly
            # mid-departure (its unregister still in flight) parks the
            # assignment and honors it after rejoining, when the
            # register reply can no longer re-grant the root.
            self.root_owner = survivors[0]
            self._post(survivors[0], (P.RUN_ROOT, survivors[0]))
        else:
            # No registered survivors — but retired machines may still
            # be listening (an idle NOW machine stays available to the
            # job until JOB_DONE).  Clear the owner so the first worker
            # to (re-)register inherits the root, and ping every
            # ex-member to rejoin; pings to crashed hosts are dropped at
            # the NIC, and a "dead" member may in fact be a live retiree
            # whose silence was a partition-delayed unregister — skipping
            # it would strand the job.  Without this, a schedule where
            # the root owner fail-stops after every other worker retired
            # strands the job forever.
            self.root_owner = None
            for name in sorted(self.ever_registered):
                self._post(name, (P.RUN_ROOT,))

    # ------------------------------------------------------------------
    # Broadcast helpers
    # ------------------------------------------------------------------

    def _sorted_workers(self) -> List[str]:
        """The (cached) sorted live-worker list.  Callers must not mutate
        the returned list: it is shared across replies and broadcasts."""
        peers = self._peers_sorted
        if peers is None:
            peers = self._peers_sorted = sorted(self.workers)
        return peers

    def _broadcast_peers(self) -> None:
        """One membership snapshot, fanned out as a batch: the sorted
        peer list and the payload tuple are built once and shared across
        every recipient's datagram."""
        peers = self._sorted_workers()
        if self.trace is not None:
            # The checker pairs these with per-host deliveries to assert
            # that no peer update reaches a worker declared dead.
            self.trace.emit(self.sim.now, "ch.peer_update", self.host,
                            peers=peers)
        self._broadcast((P.PEER_UPDATE, peers), to_sorted=peers)

    def _broadcast(self, payload: tuple, to: Optional[Set[str]] = None,
                   to_sorted: Optional[List[str]] = None) -> None:
        if to_sorted is None:
            to_sorted = sorted(to) if to is not None else self._sorted_workers()
        for name in to_sorted:
            self._post(name, payload)

    def _post(self, worker: str, payload: tuple) -> None:
        # Worker name == host name in this model (one worker per host).
        # Fire-and-forget: the Clearinghouse never waits on its sends.
        self.network.post(
            self.host, self.data_port, worker, self.worker_port, payload,
            P.estimate_size(payload),
        )

    def stop(self) -> None:
        """Tear the Clearinghouse down (test/maintenance path)."""
        self.rpc.stop()
        self._data_proc.interrupt("ch-stop")
        self._detector_proc.interrupt("ch-stop")
        self.data_socket.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Clearinghouse {self.job_name}@{self.host} workers={len(self.workers)} "
            f"done={self.done.is_set}>"
        )
