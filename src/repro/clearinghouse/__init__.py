"""The per-job Clearinghouse (Figure 3 of the paper)."""

from repro.clearinghouse.clearinghouse import Clearinghouse, ClearinghouseConfig

__all__ = ["Clearinghouse", "ClearinghouseConfig"]
