"""Benchmark driver behind ``python -m repro.cli bench``.

Measures the simulation substrate itself — the thing that bounds how
large a reproduction run can get — and records the numbers in
``BENCH_kernel.json`` so later changes have a trajectory to beat:

* ``kernel``: raw timeout throughput of the DES kernel (the same 10k-event
  workload as ``benchmarks/test_kernel_throughput.py``).
* ``timeouts``: interleaved timeout churn — many generator processes
  sleeping on a small quantized delay set, the steal-backoff regime
  (``repro bench --profile timeouts``).
* ``process_switch``: generator-process ping-pong through a Store.
* ``fib`` / ``knary``: end-to-end macro-benchmarks — a full simulated
  cluster (workers, Clearinghouse, network) executing the paper's
  synthetic applications.

All wall-clock numbers are best-of-``repeats``: the minimum over several
runs is the standard low-noise estimator for CPU-bound microbenchmarks
(mean and max measure the machine's background load, not the code).
"""

from __future__ import annotations

import gc
import json
import platform
import time
from typing import Any, Callable, Dict, Optional, Tuple

#: Results file name; lives at the repository root by convention.
DEFAULT_OUT = "BENCH_kernel.json"

#: Schema version of the JSON payload.
SCHEMA = 1


def _best_of(fn: Callable[[], Any], repeats: int) -> Tuple[float, Any]:
    """(best wall seconds, last return value) over *repeats* calls.

    The collector is paused around each timed call: cyclic GC pauses
    scale with the size of the *host* process's heap (a pytest session
    holds far more live objects than the CLI), which would otherwise
    make the same workload measure very differently in different
    harnesses.
    """
    best = float("inf")
    value = None
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(max(1, repeats)):
            gc.disable()
            t0 = time.perf_counter()
            value = fn()
            elapsed = time.perf_counter() - t0
            if gc_was_enabled:
                gc.enable()
                gc.collect(1)
            if elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, value


def bench_kernel(n_events: int = 10_000, repeats: int = 10) -> Dict[str, Any]:
    """Raw timeout scheduling + processing rate of the DES kernel.

    Mirrors ``test_kernel_event_throughput`` exactly so the recorded
    number and the pytest-benchmark number describe the same workload.
    """
    from repro.sim.core import Simulator

    def run() -> int:
        sim = Simulator()
        for i in range(n_events):
            sim.timeout(float(i % 97))
        sim.run()
        return sim.events_processed

    best_s, processed = _best_of(run, repeats)
    assert processed == n_events
    return {
        "n_events": n_events,
        "repeats": repeats,
        "best_s": best_s,
        "events_per_s": n_events / best_s,
    }


def bench_timeouts(n_events: int = 10_000, repeats: int = 10) -> Dict[str, Any]:
    """Pure-timeout churn matching the steal-backoff regime.

    Unlike :func:`bench_kernel` (schedule everything, then drain), this
    keeps ~50 generator processes alive, each repeatedly sleeping on a
    delay drawn from a small quantized set — the shape the micro
    scheduler's steal backoff, heartbeat, and retry timers produce.
    Pushes and pops interleave throughout, so the queue never leaves its
    steady state, and the calendar backend's timeout free list is
    exercised on every iteration.
    """
    from repro.sim.core import Simulator

    #: A handful of recurring deltas, like steal_backoff_s and friends.
    delays = (0.0005, 0.001, 0.002, 0.004, 0.008)
    n_procs = 50
    rounds = max(1, n_events // n_procs)

    def run() -> int:
        sim = Simulator()

        def churn(sim, i):
            d = delays[i % len(delays)]
            for _ in range(rounds):
                yield sim.timeout(d)

        for i in range(n_procs):
            sim.process(churn(sim, i))
        sim.run()
        return sim.events_processed

    best_s, processed = _best_of(run, repeats)
    return {
        "n_events": processed,
        "n_procs": n_procs,
        "rounds": rounds,
        "repeats": repeats,
        "best_s": best_s,
        "events_per_s": processed / best_s,
    }


def bench_process_switch(n_roundtrips: int = 1_000, repeats: int = 5) -> Dict[str, Any]:
    """Generator-process ping-pong through a Store (context-switch cost)."""
    from repro.sim.core import Simulator
    from repro.sim.resources import Store

    def run() -> int:
        sim = Simulator()
        a_to_b, b_to_a = Store(sim), Store(sim)

        def ping(sim):
            for i in range(n_roundtrips):
                yield a_to_b.put(i)
                yield b_to_a.get()

        def pong(sim):
            for _ in range(n_roundtrips):
                value = yield a_to_b.get()
                yield b_to_a.put(value)

        sim.process(ping(sim))
        sim.process(pong(sim))
        sim.run()
        return sim.events_processed

    best_s, events = _best_of(run, repeats)
    return {
        "n_roundtrips": n_roundtrips,
        "repeats": repeats,
        "best_s": best_s,
        "events": events,
        "roundtrips_per_s": n_roundtrips / best_s,
    }


def bench_fib(n: int = 16, workers: int = 4, repeats: int = 3) -> Dict[str, Any]:
    """Macro-benchmark: simulated cluster executing fib(*n*)."""
    from repro.apps.fib import fib_job, fib_serial
    from repro.phish import run_job

    def run():
        return run_job(fib_job(n), n_workers=workers, seed=0)

    best_s, result = _best_of(run, repeats)
    assert result.result == fib_serial(n)
    tasks = result.stats.tasks_executed
    return {
        "n": n,
        "workers": workers,
        "repeats": repeats,
        "best_s": best_s,
        "tasks": tasks,
        "tasks_per_s": tasks / best_s,
        "makespan_sim_s": result.makespan,
    }


def bench_knary(n: int = 5, k: int = 5, r: int = 2, workers: int = 4,
                repeats: int = 3) -> Dict[str, Any]:
    """Macro-benchmark: the paper's synthetic knary(n, k, r) tree."""
    from repro.apps.knary import knary_job
    from repro.phish import run_job

    def run():
        return run_job(knary_job(n, k, r), n_workers=workers, seed=0)

    best_s, result = _best_of(run, repeats)
    tasks = result.stats.tasks_executed
    return {
        "n": n,
        "k": k,
        "r": r,
        "workers": workers,
        "repeats": repeats,
        "best_s": best_s,
        "tasks": tasks,
        "tasks_per_s": tasks / best_s,
        "makespan_sim_s": result.makespan,
    }


#: ``run_bench`` profiles: which benchmark sections a run measures.
PROFILES = ("full", "timeouts")


def run_bench(repeats: int = 10, quick: bool = False,
              profile: str = "full") -> Dict[str, Any]:
    """Run a benchmark profile and return the results dict (not yet written).

    ``profile="full"`` measures everything; ``profile="timeouts"`` only
    the timeout-churn microbench (a partial record — :func:`write_bench`
    merges it over the existing file without clobbering other sections).
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown bench profile {profile!r}; known: {PROFILES}")
    macro_repeats = 1 if quick else 3
    kernel_repeats = max(3, repeats // 3) if quick else repeats
    results: Dict[str, Any] = {
        "schema": SCHEMA,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    if profile == "timeouts":
        results["timeouts"] = bench_timeouts(repeats=kernel_repeats)
        return results
    results["kernel"] = bench_kernel(repeats=kernel_repeats)
    results["timeouts"] = bench_timeouts(repeats=kernel_repeats)
    results["process_switch"] = bench_process_switch(repeats=max(2, kernel_repeats // 2))
    results["fib"] = bench_fib(repeats=macro_repeats)
    results["knary"] = bench_knary(repeats=macro_repeats)
    return results


def format_bench(results: Dict[str, Any]) -> str:
    """Human-readable summary; tolerates partial/empty results dicts.

    Missing sections render as ``(not measured)`` rather than raising —
    the CLI may be asked to print a hand-edited or truncated file.
    """
    from repro.experiments.report import render_table

    rows = []
    kernel = results.get("kernel") or {}
    if kernel:
        rows.append(("kernel events/s", f"{kernel.get('events_per_s', 0):,.0f}",
                     f"best of {kernel.get('repeats', '?')}"))
    touts = results.get("timeouts") or {}
    if touts:
        rows.append(("timeout churn events/s", f"{touts.get('events_per_s', 0):,.0f}",
                     f"{touts.get('n_procs', '?')} procs, "
                     f"best of {touts.get('repeats', '?')}"))
    switch = results.get("process_switch") or {}
    if switch:
        rows.append(("process roundtrips/s", f"{switch.get('roundtrips_per_s', 0):,.0f}",
                     f"best of {switch.get('repeats', '?')}"))
    for name in ("fib", "knary"):
        macro = results.get(name) or {}
        if macro:
            rows.append((f"{name} tasks/s", f"{macro.get('tasks_per_s', 0):,.0f}",
                         f"{macro.get('tasks', '?')} tasks, "
                         f"{macro.get('workers', '?')} workers"))
    if not rows:
        rows.append(("(not measured)", "-", "-"))
    title = "Substrate benchmarks"
    recorded = results.get("recorded_at")
    if recorded:
        title += f" — {recorded}"
    return render_table(title, ["benchmark", "rate", "notes"], rows)


#: Historical baseline blocks that must survive every re-record: the
#: seed kernel (``pre_overhaul``, recorded before PR 2's queue overhaul)
#: and the three-mode heap kernel (``pre_calendar``, recorded before the
#: calendar-queue backend became the default).  They are the trajectory
#: the README's perf table tells; a re-record may never lose them.
HISTORY_KEYS = ("pre_overhaul", "pre_calendar")


def write_bench(results: Dict[str, Any], out_path: str = DEFAULT_OUT) -> None:
    """Write *results* as pretty-printed JSON, preserving history.

    The recorded file may carry keys this run does not produce — e.g.
    a full record over a ``--profile timeouts`` partial, or vice versa.
    Any such key in the existing file is merged back in rather than
    clobbered; keys the new results do produce win — except the
    :data:`HISTORY_KEYS` baseline blocks, where the *recorded* value
    always wins (history is written once, by hand, and a later
    re-record must carry it forward verbatim).
    """
    existing = load_bench(out_path) or {}
    merged = dict(results)
    for key, value in existing.items():
        if key not in merged or key in HISTORY_KEYS:
            merged[key] = value
    with open(out_path, "w") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str = DEFAULT_OUT) -> Optional[Dict[str, Any]]:
    """Load a recorded results file, or None if absent/unreadable."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None
