"""Phish, reproduced: idle-initiated scheduling of large-scale parallel
computations on (simulated) networks of workstations.

A from-scratch Python reproduction of Blumofe & Park, *Scheduling
Large-Scale Parallel Computations on Networks of Workstations*,
HPDC 1994 — the two-level idle-initiated scheduler (macro: PhishJobQ +
PhishJobManagers; micro: LIFO execution + random FIFO work stealing),
the Phish runtime machinery (Clearinghouse, split-phase UDP protocols,
task migration, crash redo), the paper's four applications, and the
harnesses regenerating every table and figure of its evaluation.

Quickstart::

    from repro import run_job
    from repro.apps.fib import fib_job

    result = run_job(fib_job(20), n_workers=8)
    print(result.result, result.stats.tasks_stolen)

See README.md for the architecture tour and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.errors import ReproError
from repro.phish import JobResult, run_job
from repro.micro.worker import Worker, WorkerConfig
from repro.micro.stats import JobStats, WorkerStats
from repro.tasks.program import JobProgram, ThreadProgram
from repro.cluster.platform import (
    CM5_NODE,
    PLATFORMS,
    SPARCSTATION_1,
    SPARCSTATION_10,
    PlatformProfile,
)

__version__ = "1.0.0"

__all__ = [
    "run_job",
    "JobResult",
    "JobProgram",
    "ThreadProgram",
    "Worker",
    "WorkerConfig",
    "JobStats",
    "WorkerStats",
    "PlatformProfile",
    "SPARCSTATION_1",
    "SPARCSTATION_10",
    "CM5_NODE",
    "PLATFORMS",
    "ReproError",
    "__version__",
]
