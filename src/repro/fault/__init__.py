"""Fault injection and checkpointing.

* :mod:`repro.fault.crash` — fail-stop crash plans exercising the redo
  protocol ("enough redundant state is maintained so that lost work can
  be redone").
* :mod:`repro.fault.checkpoint` — checkpoint/restart of a whole job (the
  paper's Section-6 planned extension), for outages redo cannot survive.
"""

from repro.fault.checkpoint import (
    JobCheckpoint,
    WorkerState,
    checkpoint_and_kill_run,
    restore_job,
    take_checkpoint,
)
from repro.fault.crash import CrashPlan, run_job_with_crashes

__all__ = [
    "CrashPlan",
    "run_job_with_crashes",
    "JobCheckpoint",
    "WorkerState",
    "take_checkpoint",
    "restore_job",
    "checkpoint_and_kill_run",
]
