"""Crash injection: fail-stop workstations at chosen times.

"Phish is fault tolerant.  Enough redundant state is maintained so that
lost work can be redone in the event of a machine crash."  This module
drives that machinery: it builds the same dedicated cluster as
:func:`repro.phish.run_job`, crashes the scheduled machines, and lets
the victims' outstanding-steal tables and the Clearinghouse's death
detector regenerate the lost work.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

from repro.clearinghouse.clearinghouse import Clearinghouse, ClearinghouseConfig
from repro.cluster.platform import SPARCSTATION_1, PlatformProfile
from repro.errors import ReproError
from repro.micro.stats import JobStats
from repro.micro.worker import Worker, WorkerConfig
from repro.phish import JobResult, build_cluster
from repro.sim.core import Simulator
from repro.tasks.program import JobProgram
from repro.util.rng import RngRegistry


@dataclass(frozen=True)
class CrashPlan:
    """Which machines to crash, when.

    ``crashes`` is (time_s, worker_index) pairs.  Crashing worker 0 is
    allowed (the Clearinghouse reassigns the root) but crashing the
    Clearinghouse host kills the job's coordinator, which the paper's
    prototype did not survive either — the plan refuses it.
    """

    crashes: Tuple[Tuple[float, int], ...]

    def __init__(self, crashes: Sequence[Tuple[float, int]]) -> None:
        object.__setattr__(self, "crashes", tuple(crashes))
        for t, idx in self.crashes:
            if t < 0:
                raise ReproError("crash time must be non-negative")
            if idx == 0:
                raise ReproError(
                    "worker 0 hosts the Clearinghouse in this harness; "
                    "crashing it would kill the job coordinator"
                )


#: Fast failure detection for experiments (the paper's 2-minute update
#: period detects deaths in minutes; tests should not wait that long).
FAST_FAULT_WORKER = WorkerConfig(update_interval_s=2.0, track_completed=True)
FAST_FAULT_CH = ClearinghouseConfig(
    update_interval_s=2.0, death_timeout_s=5.0, check_interval_s=1.0
)


def run_job_with_crashes(
    job: JobProgram,
    n_workers: int,
    plan: CrashPlan,
    profile: PlatformProfile = SPARCSTATION_1,
    seed: int = 0,
    worker_config: Optional[WorkerConfig] = None,
    ch_config: Optional[ClearinghouseConfig] = None,
    start_jitter_s: float = 0.1,
    timeout_s: float = 1e6,
) -> JobResult:
    """Like :func:`repro.phish.run_job`, plus scheduled machine crashes."""
    for _t, idx in plan.crashes:
        if not (0 < idx < n_workers):
            raise ReproError(f"crash index {idx} out of range for {n_workers} workers")
    sim = Simulator()
    reg = RngRegistry(seed)
    network, hosts = build_cluster(sim, n_workers, profile, reg)
    ch = Clearinghouse(
        sim, network, hosts[0].name, job.name, ch_config or FAST_FAULT_CH
    )
    base_cfg = worker_config or FAST_FAULT_WORKER
    jitter_rng = reg.stream("start.jitter")
    workers: List[Worker] = []
    for i, ws in enumerate(hosts):
        jitter = jitter_rng.random() * start_jitter_s if i > 0 else 0.0
        cfg = dataclasses.replace(
            base_cfg, startup_cost_s=base_cfg.startup_cost_s + jitter
        )
        workers.append(
            Worker(sim, ws, network, job, hosts[0].name, config=cfg,
                   rng=reg.stream(f"worker.{i}"))
        )

    def crasher(delay: float, index: int) -> Generator:
        yield sim.timeout(delay)
        hosts[index].crash()

    for t, idx in plan.crashes:
        sim.process(crasher(t, idx), name=f"crash@{t}:{idx}")

    done = ch.done.wait()
    deadline = timeout_s
    while not done.processed:
        if sim.peek() > deadline:
            raise ReproError(f"job did not survive the crashes within {timeout_s}s")
        sim.step()
    sim.run(until=sim.now + 2.0)

    stats = JobStats(
        workers=[w.stats for w in workers],
        messages_sent=network.counters.sent,
        makespan=(ch.finished_at or sim.now) - (ch.started_at or 0.0),
        result=ch.result,
    )
    return JobResult(
        result=ch.result,
        stats=stats,
        makespan=stats.makespan,
        sim=sim,
        workers=workers,
        clearinghouse=ch,
        network=network,
    )
