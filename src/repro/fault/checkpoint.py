"""Checkpoint and restart of a running job (the paper's planned extension).

Section 6 lists "support for checkpointing" among Phish's planned
extensions; this module builds it on the worker protocol:

1. **Pause** — the coordinator datagrams ``pause`` to every participant;
   workers hold still between tasks and refuse steal requests.
2. **Quiesce** — the coordinator waits long enough for every in-flight
   argument/steal message to land (the simulated network has bounded
   delay), so the global task state stops changing.
3. **Snapshot** — each worker replies to ``snapshot_req`` with its ready
   list, suspended closures, and closure-id counter.
4. **Resume** — workers continue as if nothing happened.

The resulting :class:`JobCheckpoint` is a *consistent global state*: a
fresh cluster restored from it (same worker names, so continuations
still resolve; counters restarted above every issued id) finishes the
job with the exact same result.  :func:`restore_job` does that.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.clearinghouse.clearinghouse import Clearinghouse, ClearinghouseConfig
from repro.cluster.platform import SPARCSTATION_1, PlatformProfile
from repro.errors import ReproError
from repro.micro import protocol as P
from repro.micro.stats import JobStats
from repro.micro.worker import Worker, WorkerConfig
from repro.net.socket import Socket
from repro.phish import JobResult, build_cluster
from repro.sim.core import Simulator
from repro.tasks.closure import Closure
from repro.tasks.program import JobProgram
from repro.util.rng import RngRegistry


@dataclass
class WorkerState:
    """One participant's frozen task state."""

    name: str
    ready: List[Closure]
    suspended: List[Closure]
    seq: int

    @property
    def live_closures(self) -> int:
        return len(self.ready) + len(self.suspended)


@dataclass
class JobCheckpoint:
    """A consistent global snapshot of one job."""

    job_name: str
    taken_at: float
    workers: Dict[str, WorkerState] = field(default_factory=dict)

    @property
    def live_closures(self) -> int:
        return sum(ws.live_closures for ws in self.workers.values())


def take_checkpoint(
    result_harness_workers: List[Worker],
    quiesce_s: float = 0.25,
) -> Generator:
    """Coordinator process body: checkpoint the given (live) workers.

    Drive with ``checkpoint = yield from take_checkpoint(workers)`` from
    a simulation process running alongside the job.  Returns a
    :class:`JobCheckpoint`.
    """
    workers = [w for w in result_harness_workers if not w.done and not w.departed]
    if not workers:
        raise ReproError("no live workers to checkpoint")
    sim = workers[0].sim
    network = workers[0].network
    port = workers[0].config.port
    coordinator_host = workers[0].host
    sock = Socket(network, coordinator_host)  # ephemeral

    try:
        # 1. Pause everyone.
        for w in workers:
            yield sock.sendto((P.PAUSE,), w.host, port)
        # 2. Quiesce: let in-flight sends land.
        yield sim.timeout(quiesce_s)
        # 3. Snapshot.
        for w in workers:
            yield sock.sendto((P.SNAPSHOT_REQ,), w.host, port)
        checkpoint = JobCheckpoint(job_name=workers[0].job.name, taken_at=sim.now)
        while len(checkpoint.workers) < len(workers):
            msg = yield sock.recv()
            payload = msg.payload
            if not (isinstance(payload, tuple) and payload[0] == P.SNAPSHOT_REPLY):
                continue
            _tag, name, ready, suspended, seq = payload
            checkpoint.workers[name] = WorkerState(
                name=name, ready=list(ready), suspended=list(suspended), seq=seq
            )
        # 4. Resume.
        for w in workers:
            yield sock.sendto((P.RESUME,), w.host, port)
        return checkpoint
    finally:
        sock.close()


def restore_job(
    checkpoint: JobCheckpoint,
    job: JobProgram,
    profile: PlatformProfile = SPARCSTATION_1,
    seed: int = 1,
    worker_config: Optional[WorkerConfig] = None,
    ch_config: Optional[ClearinghouseConfig] = None,
    drain_s: float = 2.0,
) -> JobResult:
    """Restart a checkpointed job on a fresh cluster and run to completion.

    The fresh workstations take the checkpointed workers' *names* so that
    saved continuations still address the right hosts; the root is not
    re-run (it lives inside the checkpointed state).
    """
    if not checkpoint.workers:
        raise ReproError("empty checkpoint")
    if checkpoint.live_closures == 0:
        raise ReproError(
            "checkpoint holds no closures — the job had effectively finished"
        )
    names = sorted(checkpoint.workers)
    sim = Simulator()
    reg = RngRegistry(seed)
    network, hosts = build_cluster(sim, len(names), profile, reg)
    # Rename hosts to the checkpointed identities.
    for ws, name in zip(hosts, names):
        ws.name = name
        network.attach_cpu(name, ws.charge)
    ch = Clearinghouse(
        sim, network, names[0], checkpoint.job_name, ch_config, assign_root=False
    )
    base_cfg = worker_config or WorkerConfig()
    workers = []
    for i, (ws, name) in enumerate(zip(hosts, names)):
        state = checkpoint.workers[name]
        cfg = dataclasses.replace(base_cfg)
        workers.append(
            Worker(
                sim, ws, network, job, names[0], config=cfg,
                rng=reg.stream(f"restore.{i}"),
                initial_state=(state.ready, state.suspended, state.seq),
            )
        )
    sim.run(ch.done.wait())
    sim.run(until=sim.now + drain_s)
    stats = JobStats(
        workers=[w.stats for w in workers],
        messages_sent=network.counters.sent,
        makespan=(ch.finished_at or sim.now) - (ch.started_at or 0.0),
        result=ch.result,
    )
    return JobResult(
        result=ch.result,
        stats=stats,
        makespan=stats.makespan,
        sim=sim,
        workers=workers,
        clearinghouse=ch,
        network=network,
    )


def checkpoint_and_kill_run(
    job: JobProgram,
    n_workers: int,
    checkpoint_at_s: float,
    profile: PlatformProfile = SPARCSTATION_1,
    seed: int = 0,
    worker_config: Optional[WorkerConfig] = None,
) -> Tuple[JobCheckpoint, JobResult]:
    """The full demo: run, checkpoint mid-flight, abandon, restart.

    Returns (checkpoint, result-of-restored-run).  Models a whole-site
    outage that no redo protocol survives — exactly what checkpointing
    is for.
    """
    sim = Simulator()
    reg = RngRegistry(seed)
    network, hosts = build_cluster(sim, n_workers, profile, reg)
    ch = Clearinghouse(sim, network, hosts[0].name, job.name)
    base_cfg = worker_config or WorkerConfig()
    workers = [
        Worker(sim, ws, network, job, hosts[0].name,
               config=dataclasses.replace(base_cfg),
               rng=reg.stream(f"worker.{i}"))
        for i, ws in enumerate(hosts)
    ]

    box: List[JobCheckpoint] = []

    def coordinator(sim) -> Generator:
        yield sim.timeout(checkpoint_at_s)
        if ch.done.is_set:
            raise ReproError(
                f"job finished before the checkpoint at t={checkpoint_at_s}"
            )
        snap = yield from take_checkpoint(workers)
        box.append(snap)

    proc = sim.process(coordinator(sim), name="checkpoint-coordinator")
    sim.run(proc)  # run exactly until the checkpoint is taken
    checkpoint = box[0]
    # Site outage: abandon this simulation entirely and restart elsewhere.
    restored = restore_job(checkpoint, job, profile=profile, seed=seed + 1,
                           worker_config=worker_config)
    return checkpoint, restored
