"""The macro-level (inter-application) idle-initiated scheduler.

Implements the paper's Section 2 "Macro-level scheduling" and the
Section 3 architecture of Figure 2: parallel jobs are submitted to the
**PhishJobQ** (an RPC server managing the job pool with non-preemptive
round-robin assignment); every workstation runs a **PhishJobManager**
daemon that polls its owner's idleness policy and *requests* a job when
the machine is idle — work is never pushed onto a machine.  When the
owner returns, the JobManager kills the worker within the reclaim-poll
period (the paper's 2 seconds), after the worker migrates its tasks.
"""

from repro.macro.job import JobHandle, JobRecord
from repro.macro.jobmanager import JobManagerConfig, PhishJobManager
from repro.macro.jobq import PhishJobQ
from repro.macro.policies import (
    AssignmentPolicy,
    FairShareAssignment,
    InterruptSharingAssignment,
    LeastWorkersAssignment,
    PriorityAssignment,
    RoundRobinAssignment,
    ShortestRemainingAssignment,
    make_policy,
)
from repro.macro.system import PhishSystem, PhishSystemConfig

__all__ = [
    "JobRecord",
    "JobHandle",
    "PhishJobQ",
    "PhishJobManager",
    "JobManagerConfig",
    "AssignmentPolicy",
    "RoundRobinAssignment",
    "LeastWorkersAssignment",
    "PriorityAssignment",
    "ShortestRemainingAssignment",
    "FairShareAssignment",
    "InterruptSharingAssignment",
    "make_policy",
    "PhishSystem",
    "PhishSystemConfig",
]
