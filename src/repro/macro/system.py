"""PhishSystem: the whole network of workstations, assembled.

Builds the environment of the paper's Figure 2 — a network of
workstations, each with an owner (activity trace) and a PhishJobManager
daemon, plus the PhishJobQ — and provides the user-facing ``submit``
that models typing ``ray my-scene`` on a workstation: it starts the
job's Clearinghouse and first worker locally and registers the job with
the PhishJobQ so that idle machines pick it up.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from repro.clearinghouse.clearinghouse import Clearinghouse, ClearinghouseConfig
from repro.cluster.owner import AlwaysIdleTrace, Owner, OwnerTrace
from repro.cluster.platform import SPARCSTATION_1, PlatformProfile
from repro.cluster.workstation import Workstation
from repro.errors import JobError
from repro.macro.job import JobHandle, JobRecord
from repro.macro.jobmanager import JobManagerConfig, PhishJobManager
from repro.macro.jobq import PhishJobQ
from repro.macro.policies import AssignmentPolicy
from repro.micro import protocol as P
from repro.micro.worker import Worker
from repro.net.network import Network
from repro.net.rpc import rpc_call
from repro.net.topology import Topology, UniformTopology
from repro.obs.metrics import MetricsRegistry
from repro.sim.core import Simulator
from repro.sim.events import AllOf
from repro.tasks.program import JobProgram
from repro.util.rng import RngRegistry
from repro.util.trace import TraceLog

#: Signature of an owner-trace factory: (rng, host_name) -> OwnerTrace.
TraceFactory = Callable[[random.Random, str], OwnerTrace]


@dataclass
class PhishSystemConfig:
    """Shape of the simulated workstation network."""

    n_workstations: int = 8
    profile: PlatformProfile = SPARCSTATION_1
    seed: int = 0
    jobmanager: JobManagerConfig = field(default_factory=JobManagerConfig)
    clearinghouse: ClearinghouseConfig = field(default_factory=ClearinghouseConfig)
    #: Factory building each workstation's owner activity trace
    #: (default: machines are always idle, the paper's measurement mode).
    owner_trace: TraceFactory = field(
        default=lambda rng, host: AlwaysIdleTrace()
    )
    #: Assignment policy for the JobQ (None: paper's round-robin).
    policy: Optional[AssignmentPolicy] = None
    topology: Optional[Topology] = None
    trace: bool = False
    #: Wire a MetricsRegistry through every layer (network, JobQ,
    #: JobManagers, Clearinghouses, workers).  Off by default: the
    #: macro experiments only need the NetCounters/JobStats numbers.
    metrics: bool = False


class PhishSystem:
    """A running Phish network: JobQ + JobManagers + owners."""

    def __init__(self, config: Optional[PhishSystemConfig] = None) -> None:
        self.config = config or PhishSystemConfig()
        cfg = self.config
        if cfg.n_workstations < 1:
            raise JobError("need at least one workstation")
        self.sim = Simulator()
        self.rng = RngRegistry(cfg.seed)
        self.trace = TraceLog(enabled=True, capacity=200_000) if cfg.trace else None
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if cfg.metrics else None
        )
        self.network = Network(
            self.sim,
            cfg.topology or UniformTopology(cfg.profile.net),
            rng=self.rng.stream("net"),
            trace=self.trace,
        )
        if self.metrics is not None:
            self.network.attach_metrics(self.metrics)
        self.workstations: List[Workstation] = []
        self.owners: List[Owner] = []
        self.jobmanagers: Dict[str, PhishJobManager] = {}
        for i in range(cfg.n_workstations):
            ws = Workstation(self.sim, f"ws{i:02d}", cfg.profile, self.network)
            self.workstations.append(ws)
            trace = cfg.owner_trace(self.rng.stream(f"owner.{i}"), ws.name)
            self.owners.append(Owner(ws, trace))
        #: The JobQ lives on the first workstation (paper: "one computer").
        self.jobq = PhishJobQ(
            self.sim, self.network, self.workstations[0].name, cfg.policy, self.trace,
            metrics=self.metrics,
        )
        for i, ws in enumerate(self.workstations):
            self.jobmanagers[ws.name] = PhishJobManager(
                self.sim,
                ws,
                self.network,
                jobq_host=self.workstations[0].name,
                config=cfg.jobmanager,
                rng=self.rng.stream(f"jm.{i}"),
                trace=self.trace,
                metrics=self.metrics,
            )
        self.handles: List[JobHandle] = []

    def workstation(self, name: str) -> Workstation:
        for ws in self.workstations:
            if ws.name == name:
                return ws
        raise JobError(f"no workstation named {name!r}")

    # ------------------------------------------------------------------

    def submit(
        self,
        program: JobProgram,
        from_host: Optional[str] = None,
        priority: int = 0,
        start_first_worker: bool = True,
    ) -> JobHandle:
        """Submit a job the way a user invokes a Phish program.

        Starts the Clearinghouse (and, by default, the first worker) on
        *from_host* and pools the job at the PhishJobQ.  Idle machines
        then join via their JobManagers.
        """
        host = from_host or self.workstations[0].name
        self.workstation(host)  # validates
        record = self.jobq.submit_record(
            program, host, priority, register_first_worker=start_first_worker,
        )
        worker_port, ch_rpc, ch_data = record.ports()
        ch = Clearinghouse(
            self.sim,
            self.network,
            host,
            job_name=record.name,
            config=self.config.clearinghouse,
            trace=self.trace,
            worker_port=worker_port,
            rpc_port=ch_rpc,
            data_port=ch_data,
            metrics=self.metrics,
        )
        first_worker: Optional[Worker] = None
        if start_first_worker:
            wcfg = dataclasses.replace(
                self.config.jobmanager.worker_config,
                port=worker_port,
                ch_rpc_port=ch_rpc,
                ch_data_port=ch_data,
            )
            first_worker = Worker(
                self.sim,
                self.workstation(host),
                self.network,
                program,
                clearinghouse_host=host,
                config=wcfg,
                rng=self.rng.stream(f"job{record.job_id}.first"),
                trace=self.trace,
                metrics=self.metrics,
            )
        self.sim.process(
            self._job_watcher(record, ch, first_worker),
            name=f"job-watcher:{record.job_id}",
        )
        handle = JobHandle(record=record, clearinghouse=ch, first_worker=first_worker)
        self.handles.append(handle)
        return handle

    def _job_watcher(self, record: JobRecord, ch: Clearinghouse, first_worker) -> Generator:
        """Submitter-side bookkeeping: release the first worker's slot and
        mark the job done at the JobQ."""
        if first_worker is not None:
            yield first_worker.finished.wait()
            yield from rpc_call(
                self.network, record.ch_host, self.jobq.host, P.JOBQ_PORT,
                "release", {"job_id": record.job_id, "workstation": record.ch_host},
            )
        yield ch.done.wait()
        yield from rpc_call(
            self.network, record.ch_host, self.jobq.host, P.JOBQ_PORT,
            "job_done", record.job_id,
        )

    # ------------------------------------------------------------------

    def run_until_done(self, timeout_s: float = 1e7, drain_s: float = 5.0) -> None:
        """Run until every submitted job completed (or raise on timeout)."""
        if not self.handles:
            raise JobError("no jobs submitted")
        all_done = AllOf(self.sim, [h.done.wait() for h in self.handles])
        deadline = self.sim.now + timeout_s
        while not all_done.triggered:
            if self.sim.peek() > deadline:
                raise JobError(
                    f"jobs did not finish within {timeout_s} simulated seconds"
                )
            self.sim.step()
        self.sim.run(until=self.sim.now + drain_s)

    def run(self, until: float) -> None:
        """Advance the whole system to an absolute simulated time."""
        self.sim.run(until=until)

    def stop(self) -> None:
        """Tear all daemons down (end of an experiment)."""
        for jm in self.jobmanagers.values():
            jm.stop()
        self.jobq.stop()
        for handle in self.handles:
            handle.clearinghouse.stop()
