"""The PhishJobManager: the per-workstation idle-cycle harvesting daemon.

"The PhishJobManager, a background daemon, resides on every workstation
that is part of the Phish network and tries to obtain a job from the
PhishJobQ when the workstation becomes idle. ... While users are logged
in, the PhishJobManager checks every five minutes to see if they have
logged out.  As soon as the PhishJobManager discovers that its
workstation is idle, it requests a job from the PhishJobQ.  If the
PhishJobQ responds negatively ... the PhishJobManager continues to
request a job every thirty seconds ...  If the PhishJobQ responds
positively by assigning a job, the PhishJobManager starts a worker
process to participate in the job and waits for the worker to
terminate.  In the meantime, the PhishJobManager checks every two
seconds to see if anyone has logged in.  If the PhishJobManager
discovers that the workstation is no longer idle, it terminates the
worker process."
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.cluster.owner import NobodyLoggedInPolicy
from repro.cluster.workstation import Workstation
from repro.errors import AddressError, RpcError
from repro.micro import protocol as P
from repro.micro.worker import Worker, WorkerConfig
from repro.net.network import Network
from repro.net.rpc import rpc_call
from repro.obs.metrics import MetricsRegistry
from repro.sim.core import Interrupt, Simulator
from repro.sim.events import AnyOf
from repro.util.trace import TraceLog


@dataclass
class JobManagerConfig:
    """Poll intervals (paper defaults) and worker parameters."""

    #: While the owner is logged in, re-check this often (paper: 5 min).
    busy_poll_s: float = 300.0
    #: While the job pool is empty, re-request this often (paper: 30 s).
    no_job_retry_s: float = 30.0
    #: While a worker runs, check for owner login this often (paper: 2 s).
    reclaim_poll_s: float = 2.0
    #: Idleness policy (paper default: nobody logged in).
    idleness_policy: object = field(default_factory=NobodyLoggedInPolicy)
    #: Preempt the running worker when a strictly-higher-priority job
    #: waits in the pool ("the only case in which the macro-level
    #: scheduler performs time-sharing").  Checked on the reclaim poll.
    enable_preemption: bool = False
    #: Template for workers this manager starts.  Macro-managed workers
    #: retire after this many consecutive failed steals so the machine
    #: goes back into the pool when a job's parallelism shrinks.
    worker_config: WorkerConfig = field(
        default_factory=lambda: WorkerConfig(retire_after_failed_steals=25)
    )


class PhishJobManager:
    """Idle-cycle harvesting daemon for one workstation."""

    def __init__(
        self,
        sim: Simulator,
        workstation: Workstation,
        network: Network,
        jobq_host: str,
        config: Optional[JobManagerConfig] = None,
        rng: Optional[random.Random] = None,
        trace: Optional[TraceLog] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.workstation = workstation
        self.network = network
        self.jobq_host = jobq_host
        self.config = config or JobManagerConfig()
        self.rng = rng or random.Random(0)
        self.trace = trace
        self.metrics = metrics
        self.current_worker: Optional[Worker] = None
        self.current_job_id: Optional[int] = None
        #: Counters for the macro experiments.
        self.jobs_started = 0
        self.workers_reclaimed = 0
        self.workers_preempted = 0
        self.process = sim.process(self._run(), name=f"jobmanager@{workstation.name}")
        workstation.register_process(self.process)

    # ------------------------------------------------------------------

    def _run(self) -> Generator:
        cfg = self.config
        ws = self.workstation
        try:
            while True:
                # Phase 1: wait for the machine to become idle.
                while not cfg.idleness_policy.is_idle(ws):
                    yield self.sim.timeout(cfg.busy_poll_s)
                # Phase 2: get a job (retrying while the pool is empty).
                descriptor = None
                while descriptor is None:
                    if not cfg.idleness_policy.is_idle(ws):
                        break  # owner came back while we were asking
                    try:
                        descriptor = yield from rpc_call(
                            self.network, ws.name, self.jobq_host, P.JOBQ_PORT,
                            "request_job", ws.name,
                        )
                    except RpcError:
                        descriptor = None  # JobQ unreachable; retry later
                    if descriptor is None:
                        yield self.sim.timeout(cfg.no_job_retry_s)
                if descriptor is None:
                    continue
                # Phase 3: run a worker and watch for the owner's return.
                yield from self._run_worker(descriptor)
        except Interrupt:
            if self.current_worker is not None:
                self.current_worker.stop()
            return

    def _run_worker(self, descriptor: dict) -> Generator:
        cfg = self.config
        ws = self.workstation
        worker_cfg = dataclasses.replace(
            cfg.worker_config,
            port=descriptor["worker_port"],
            ch_rpc_port=descriptor["ch_rpc_port"],
            ch_data_port=descriptor["ch_data_port"],
        )
        try:
            worker = Worker(
                self.sim,
                ws,
                self.network,
                descriptor["program"],
                clearinghouse_host=descriptor["ch_host"],
                config=worker_cfg,
                rng=random.Random(self.rng.getrandbits(64)),
                trace=self.trace,
                metrics=self.metrics,
            )
        except AddressError:
            # A previous worker for this job still forwards on the port;
            # release the slot and come back later.
            try:
                yield from rpc_call(
                    self.network, ws.name, self.jobq_host, P.JOBQ_PORT,
                    "release", {"job_id": descriptor["job_id"], "workstation": ws.name},
                )
            except RpcError:
                pass
            yield self.sim.timeout(self.config.no_job_retry_s)
            return
        self.current_worker = worker
        self.current_job_id = descriptor["job_id"]
        self.jobs_started += 1
        if self.trace is not None:
            self.trace.emit(self.sim.now, "jm.start_worker", ws.name,
                            job=descriptor["job_id"])
        finished = worker.finished.wait()
        while not worker.finished.is_set:
            tick = self.sim.timeout(cfg.reclaim_poll_s)
            yield AnyOf(self.sim, [finished, tick])
            if worker.finished.is_set:
                break
            if not cfg.idleness_policy.is_idle(ws):
                # Owner is back: kill the worker (it migrates its tasks).
                self.workers_reclaimed += 1
                if self.trace is not None:
                    self.trace.emit(self.sim.now, "jm.reclaim", ws.name)
                worker._run_proc.interrupt("owner-reclaimed")
                yield worker.finished.wait()
                break
            if cfg.enable_preemption:
                try:
                    should = yield from rpc_call(
                        self.network, ws.name, self.jobq_host, P.JOBQ_PORT,
                        "check_preempt",
                        {"workstation": ws.name, "job_id": descriptor["job_id"]},
                    )
                except RpcError:
                    should = False
                if should and not worker.finished.is_set:
                    self.workers_preempted += 1
                    if self.trace is not None:
                        self.trace.emit(self.sim.now, "jm.preempt", ws.name)
                    worker._run_proc.interrupt("preempted")
                    yield worker.finished.wait()
                    break
        # Tell the JobQ this machine no longer participates.
        try:
            yield from rpc_call(
                self.network, ws.name, self.jobq_host, P.JOBQ_PORT,
                "release", {"job_id": self.current_job_id, "workstation": ws.name},
            )
        except RpcError:
            pass
        self.current_worker = None
        self.current_job_id = None

    def stop(self) -> None:
        """Shut the daemon down (and any worker it is running)."""
        self.process.interrupt("jobmanager-stop")
