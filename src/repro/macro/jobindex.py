"""Indexed containers backing the JobQ assignment policies.

The seed JobQ rebuilt ``pool()`` — a linear scan over every job record —
on *every* assignment request, which is fine for the paper's "handful of
jobs" but quadratic once the pool holds thousands of queued jobs under
production traffic.  The structures here keep assignment sublinear:

* :class:`CycleList` — a circular doubly-linked list in submission
  order with an embedded cursor: O(1) append/remove and O(1) cursor
  advance, the natural index for round-robin cycling.
* :class:`LazyMinHeap` — a binary heap of ``(key, item)`` pairs with
  lazy invalidation: re-keying an item is a push (O(log n)); stale
  entries are discarded as they surface at the top.  The index for
  every best-first policy (priority, least-workers, SRP, fair-share).

Both are deterministic: iteration order depends only on the sequence of
operations, never on hashes or insertion addresses, so policy decisions
are reproducible across runs and processes.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError


class _Node:
    __slots__ = ("item", "prev", "next")

    def __init__(self, item: Any) -> None:
        self.item = item
        self.prev: "_Node" = self
        self.next: "_Node" = self


class CycleList:
    """A circular list in insertion order with a round-robin cursor.

    ``append`` inserts at the tail (just "behind" the oldest entry in
    cycle order), ``remove`` unlinks anywhere, and :meth:`from_cursor`
    walks at most one full revolution starting at the cursor.  When the
    cursor's own node is removed the cursor slides to its successor, so
    a completed job never stalls the rotation.
    """

    def __init__(self) -> None:
        self._nodes: Dict[Any, _Node] = {}
        self._tail: Optional[_Node] = None
        self._cursor: Optional[_Node] = None

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, item: Any) -> bool:
        return item in self._nodes

    def append(self, item: Any) -> None:
        if item in self._nodes:
            raise ReproError(f"CycleList already contains {item!r}")
        node = _Node(item)
        self._nodes[item] = node
        if self._tail is None:
            self._tail = node
            self._cursor = node
            return
        head = self._tail.next
        self._tail.next = node
        node.prev = self._tail
        node.next = head
        head.prev = node
        self._tail = node

    def remove(self, item: Any) -> None:
        node = self._nodes.pop(item, None)
        if node is None:
            return
        if not self._nodes:
            self._tail = None
            self._cursor = None
            return
        node.prev.next = node.next
        node.next.prev = node.prev
        if self._tail is node:
            self._tail = node.prev
        if self._cursor is node:
            self._cursor = node.next

    @property
    def cursor(self) -> Optional[Any]:
        return self._cursor.item if self._cursor is not None else None

    def from_cursor(self) -> Iterator[Any]:
        """Yield items starting at the cursor, one full revolution.

        Safe against the *current* item being removed mid-iteration
        (the walk holds the next pointer before yielding).
        """
        node = self._cursor
        if node is None:
            return
        seen = 0
        total = len(self._nodes)
        while seen < total:
            nxt = node.next
            yield node.item
            seen += 1
            node = nxt

    def advance_past(self, item: Any) -> None:
        """Move the cursor to *item*'s successor (after a grant)."""
        node = self._nodes.get(item)
        if node is not None:
            self._cursor = node.next


class LazyMinHeap:
    """Min-heap of ``(key, item)`` with O(log n) re-key by reinsertion.

    Each item has exactly one *current* key (:meth:`push` replaces it);
    superseded heap entries are skipped lazily when popped.  Keys must
    be totally ordered — callers embed a unique tie-breaker (the job
    id) so ordering never falls back to comparing records.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[Any, Any]] = []
        self._key: Dict[Any, Any] = {}

    def __len__(self) -> int:
        return len(self._key)

    def __contains__(self, item: Any) -> bool:
        return item in self._key

    def push(self, item: Any, key: Any) -> None:
        """Insert *item* with *key*, superseding any previous key."""
        self._key[item] = key
        heapq.heappush(self._heap, (key, item))

    def discard(self, item: Any) -> None:
        """Remove *item* (its heap entries die lazily)."""
        self._key.pop(item, None)

    def pop_min(self) -> Optional[Tuple[Any, Any]]:
        """Remove and return the smallest live ``(key, item)``, or None."""
        heap = self._heap
        while heap:
            key, item = heapq.heappop(heap)
            if self._key.get(item) == key:
                del self._key[item]
                return key, item
        return None

    def compact(self) -> None:
        """Drop stale entries (call when the heap grows far past live)."""
        if len(self._heap) > 4 * max(8, len(self._key)):
            self._heap = [(k, i) for i, k in self._key.items()]
            heapq.heapify(self._heap)
