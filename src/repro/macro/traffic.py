"""Production-traffic workloads for the macro scheduler.

The paper measures the macro level with a handful of hand-submitted
jobs.  This module subjects the same PhishJobQ to *production* traffic:
a seeded arrival process (Poisson, diurnal, bursty) submits thousands
of synthetic jobs with heavy-tailed service demands to the real JobQ
RPC server, while one agent per workstation plays the machine side of
the protocol — request a job when the owner is away, serve it in
quanta, give the machine back the moment the owner returns (the
paper's sovereignty contract), and release/complete over RPC.

Jobs are synthetic at the micro level: a job is a service demand in
machine-seconds (``JobRecord.remaining_s``) that participating machines
drain in parallel, so a thousand-job run costs thousands of simulator
events instead of millions of task steps — the macro decisions (who
gets which job, when) still travel through the real RPC protocol and
the real assignment-policy indexes.

Everything is seeded: the full arrival schedule (times, sizes, owners)
is drawn up front from named RNG streams, so a
:class:`TrafficConfig` maps to exactly one simulated execution and one
:class:`TrafficReport`, bit-for-bit, regardless of host or process
count (the property the sharded sweeps assert).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Generator, Iterable, List, Optional, Set, Tuple

from repro.cluster.owner import AlwaysIdleTrace, Owner, OwnerTrace
from repro.cluster.platform import SPARCSTATION_1
from repro.cluster.workstation import Workstation
from repro.errors import JobError, ReproError
from repro.macro.jobq import PhishJobQ
from repro.macro.policies import make_policy
from repro.micro import protocol as P
from repro.net.network import Network
from repro.net.rpc import rpc_call
from repro.net.topology import UniformTopology
from repro.obs.metrics import DURATION_BUCKETS_S, MetricsRegistry
from repro.sim.core import Interrupt, Simulator
from repro.sim.events import AnyOf
from repro.sim.resources import Signal
from repro.tasks.program import JobProgram, ThreadProgram
from repro.util.rng import RngRegistry


# ======================================================================
# Arrival processes
# ======================================================================


class ArrivalProcess:
    """Generates the absolute submission times of a job stream."""

    name = "abstract"

    def times(self, rng, n: int) -> List[float]:
        """The first *n* arrival times (strictly increasing), seconds."""
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate_per_s``."""

    name = "poisson"

    def __init__(self, rate_per_s: float) -> None:
        if rate_per_s <= 0:
            raise ReproError("arrival rate must be positive")
        self.rate_per_s = rate_per_s

    def times(self, rng, n: int) -> List[float]:
        t = 0.0
        out: List[float] = []
        for _ in range(n):
            t += rng.expovariate(self.rate_per_s)
            out.append(t)
        return out


class ModulatedArrivals(ArrivalProcess):
    """Non-homogeneous Poisson arrivals by Lewis–Shedler thinning.

    Subclasses define the instantaneous rate ``rate_at(t)`` and its
    upper bound ``peak_rate_per_s``; candidates are drawn at the peak
    rate and accepted with probability ``rate_at(t) / peak`` — two RNG
    draws per candidate, so the draw sequence (and thus the schedule)
    is a pure function of the seed.
    """

    name = "modulated"

    def __init__(self, peak_rate_per_s: float) -> None:
        if peak_rate_per_s <= 0:
            raise ReproError("peak arrival rate must be positive")
        self.peak_rate_per_s = peak_rate_per_s

    def rate_at(self, t: float) -> float:
        raise NotImplementedError

    def times(self, rng, n: int) -> List[float]:
        t = 0.0
        peak = self.peak_rate_per_s
        out: List[float] = []
        while len(out) < n:
            t += rng.expovariate(peak)
            if rng.random() * peak <= self.rate_at(t):
                out.append(t)
        return out


class DiurnalArrivals(ModulatedArrivals):
    """A sinusoidal day/night load profile, period-scaled to the run.

    ``rate(t) = mean * (1 + depth * sin(2 pi t / period))`` — the
    long-run mean equals *rate_per_s* while the first half of each
    period runs hot and the second half cold, a day compressed to the
    simulation's horizon.
    """

    name = "diurnal"

    def __init__(self, rate_per_s: float, period_s: float = 1800.0,
                 depth: float = 0.8) -> None:
        if not 0.0 < depth < 1.0:
            raise ReproError("diurnal depth must be in (0, 1)")
        if period_s <= 0:
            raise ReproError("diurnal period must be positive")
        super().__init__(rate_per_s * (1.0 + depth))
        self.rate_per_s = rate_per_s
        self.period_s = period_s
        self.depth = depth

    def rate_at(self, t: float) -> float:
        phase = 2.0 * math.pi * (t / self.period_s)
        return self.rate_per_s * (1.0 + self.depth * math.sin(phase))


class BurstyArrivals(ModulatedArrivals):
    """A square-wave burst profile: 4x rate in bursts, 0.25x between.

    With ``duty = 0.2`` the long-run mean equals *rate_per_s* exactly
    (``0.2 * 4 + 0.8 * 0.25 = 1``): one fifth of the time the queue is
    slammed at four times the average rate — the regime where policy
    choice (and interrupt-driven wakeup) separates from round-robin.
    """

    name = "bursty"

    _HI = 4.0
    _LO = 0.25
    _DUTY = 0.2

    def __init__(self, rate_per_s: float, period_s: float = 600.0) -> None:
        if period_s <= 0:
            raise ReproError("burst period must be positive")
        super().__init__(rate_per_s * self._HI)
        self.rate_per_s = rate_per_s
        self.period_s = period_s

    def rate_at(self, t: float) -> float:
        in_burst = (t % self.period_s) < self._DUTY * self.period_s
        return self.rate_per_s * (self._HI if in_burst else self._LO)


#: Name -> factory(rate_per_s) for the sweep/CLI selectors.
ARRIVAL_FACTORIES: Dict[str, Callable[[float], ArrivalProcess]] = {
    "poisson": PoissonArrivals,
    "diurnal": DiurnalArrivals,
    "bursty": BurstyArrivals,
}


def make_arrivals(name: str, rate_per_s: float) -> ArrivalProcess:
    """Build an arrival process by name."""
    try:
        factory = ARRIVAL_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {name!r}; "
            f"known: {sorted(ARRIVAL_FACTORIES)}"
        ) from None
    return factory(rate_per_s)


# ======================================================================
# Job-size distributions
# ======================================================================


class SizeDistribution:
    """Draws per-job service demands (machine-seconds)."""

    name = "abstract"

    @property
    def mean_s(self) -> float:
        """Analytic mean — offered load is ``rate * mean / machines``."""
        raise NotImplementedError

    def sample(self, rng) -> float:
        raise NotImplementedError


class ExponentialSizes(SizeDistribution):
    """Memoryless service demands (the classic M/M baseline)."""

    name = "exponential"

    def __init__(self, mean_s: float) -> None:
        if mean_s <= 0:
            raise ReproError("mean job size must be positive")
        self._mean_s = mean_s

    @property
    def mean_s(self) -> float:
        return self._mean_s

    def sample(self, rng) -> float:
        return rng.expovariate(1.0 / self._mean_s)


class BoundedParetoSizes(SizeDistribution):
    """Heavy-tailed service demands, Pareto(alpha) truncated to [lo, hi].

    Sampled by inverse CDF (one uniform draw per job).  The default
    parameters (alpha=1.3, 5 s .. 5000 s) give a mean near 19 s with a
    tail where the biggest percent of jobs carries a large share of the
    total work — the regime where SRP-style policies beat round-robin.
    """

    name = "pareto"

    def __init__(self, alpha: float = 1.3, lo_s: float = 5.0,
                 hi_s: float = 5000.0) -> None:
        if alpha <= 0 or alpha == 1.0:
            raise ReproError("pareto alpha must be positive and != 1")
        if not 0 < lo_s < hi_s:
            raise ReproError("pareto bounds must satisfy 0 < lo < hi")
        self.alpha = alpha
        self.lo_s = lo_s
        self.hi_s = hi_s

    @property
    def mean_s(self) -> float:
        a, lo, hi = self.alpha, self.lo_s, self.hi_s
        num = a * (lo ** a) * (lo ** (1.0 - a) - hi ** (1.0 - a))
        den = (a - 1.0) * (1.0 - (lo / hi) ** a)
        return num / den

    def sample(self, rng) -> float:
        a, lo, hi = self.alpha, self.lo_s, self.hi_s
        u = rng.random()
        la, ha = lo ** a, hi ** a
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / a)


# ======================================================================
# Owner login/logout replay
# ======================================================================


class ReplayOwnerTrace(OwnerTrace):
    """An owner trace replayed from a login/logout event log.

    Where :class:`~repro.cluster.owner.ScriptedTrace` takes period
    lengths, this takes the raw form real workstation logs come in —
    timestamped ``login``/``logout`` events — and converts them to the
    alternating periods the :class:`~repro.cluster.owner.Owner`
    process consumes.  The state after the final event persists.
    """

    def __init__(self, periods: Iterable[Tuple[str, float]]) -> None:
        self._periods: List[Tuple[str, float]] = list(periods)
        for state, dur in self._periods:
            if state not in ("busy", "idle"):
                raise ReproError(f"bad trace state {state!r}")
            if dur < 0:
                raise ReproError(f"negative trace duration {dur!r}")

    def periods(self):
        return iter(self._periods)

    @classmethod
    def from_events(
        cls,
        events: Iterable[Tuple[float, str]],
        initially_logged_in: bool = False,
    ) -> "ReplayOwnerTrace":
        """Build a trace from sorted ``(time_s, "login"|"logout")`` events."""
        periods: List[Tuple[str, float]] = []
        state = "busy" if initially_logged_in else "idle"
        last = 0.0
        for t, kind in events:
            if kind not in ("login", "logout"):
                raise ReproError(f"bad owner event {kind!r}")
            if t < last:
                raise ReproError("owner events must be sorted by time")
            new = "busy" if kind == "login" else "idle"
            if new == state:
                continue  # duplicate login/logout: no transition
            periods.append((state, t - last))
            state, last = new, t
        periods.append((state, float("inf")))  # final state persists
        return cls(periods)


def workday_events(
    rng, horizon_s: float, busy_mean_s: float, idle_mean_s: float,
) -> List[Tuple[float, str]]:
    """A synthetic login/logout event log for one workstation owner.

    Alternating exponentially-distributed away/at-desk stretches up to
    *horizon_s* — the raw material :meth:`ReplayOwnerTrace.from_events`
    replays, standing in for the unavailable 1994 MIT LCS logs.
    """
    events: List[Tuple[float, str]] = []
    t = 0.0
    logged_in = False
    while t < horizon_s:
        mean = busy_mean_s if logged_in else idle_mean_s
        t += rng.expovariate(1.0 / mean)
        logged_in = not logged_in
        events.append((t, "login" if logged_in else "logout"))
    return events


# ======================================================================
# The traffic engine
# ======================================================================


@dataclass(frozen=True)
class TrafficConfig:
    """One fully-seeded traffic run (primitives only: picklable)."""

    n_workstations: int = 16
    n_jobs: int = 1000
    seed: int = 0
    policy: str = "rr"
    arrival: str = "poisson"
    #: Mean job-arrival rate (jobs per simulated second).
    rate_per_s: float = 0.5
    #: Job-size distribution: "pareto" (heavy-tailed) or "exponential".
    sizes: str = "pareto"
    pareto_alpha: float = 1.3
    size_lo_s: float = 5.0
    size_hi_s: float = 5000.0
    #: Mean for the exponential size distribution.
    size_mean_s: float = 20.0
    #: Concurrent-machine cap per job (the paper's jobs scale, but a
    #: synthetic service demand drains at most this wide).
    max_workers_per_job: int = 4
    #: Service quantum: an agent re-checks owner state and job progress
    #: at this granularity (the paper's ~2 s reclaim poll lives here).
    quantum_s: float = 1.0
    #: Poll interval for idle machines that found no work (pull mode).
    retry_s: float = 5.0
    #: Fallback wake for parked machines in interrupt mode.
    park_timeout_s: float = 60.0
    #: Poll interval while the owner is at the machine.
    owner_poll_s: float = 2.0
    #: Owner model: "idle" (dedicated machines, the paper's measurement
    #: mode) or "workday" (replayed synthetic login/logout logs).
    owners: str = "idle"
    owner_busy_mean_s: float = 240.0
    owner_idle_mean_s: float = 720.0
    #: Distinct submitting users (fair-share accounting entities).
    n_owners: int = 4
    #: Hard cap on simulated time; the run reports what completed.
    horizon_s: float = 100_000.0
    #: Per-job sojourn SLO (seconds); jobs finishing later raise an
    #: ``slo-breach`` incident when a HealthMonitor is attached.  None
    #: disables the check entirely.
    slo_s: Optional[float] = None

    def validate(self) -> None:
        if self.n_workstations < 1:
            raise JobError("need at least one workstation")
        if self.n_jobs < 1:
            raise JobError("need at least one job")
        if self.max_workers_per_job < 1:
            raise JobError("max_workers_per_job must be >= 1")
        if self.n_owners < 1:
            raise JobError("need at least one owner")
        if self.quantum_s <= 0 or self.retry_s <= 0:
            raise JobError("quantum_s and retry_s must be positive")
        if self.owners not in ("idle", "workday"):
            raise JobError(f"unknown owner model {self.owners!r}")
        if self.slo_s is not None and self.slo_s <= 0:
            raise JobError("slo_s must be positive when set")


@dataclass(frozen=True)
class TrafficReport:
    """What one traffic run measured (primitives only: mergeable)."""

    policy: str
    arrival: str
    seed: int
    n_jobs: int
    n_submitted: int
    n_completed: int
    #: Simulated time when the last job completed (or the run stopped).
    makespan_s: float
    throughput_jobs_per_s: float
    latency_mean_s: Optional[float]
    latency_p50_s: Optional[float]
    latency_p95_s: Optional[float]
    latency_p99_s: Optional[float]
    wait_p50_s: Optional[float]
    wait_p95_s: Optional[float]
    wait_p99_s: Optional[float]
    #: JobQ protocol counters.
    requests: int
    grants: int
    #: Candidate records the policy examined (the "indexed" guarantee:
    #: stays within a small constant factor of ``grants``).
    scanned: int


def _synthetic_program(name: str = "traffic") -> JobProgram:
    """A minimal JobProgram so traffic records satisfy the JobQ schema
    (the traffic engine serves ``remaining_s`` instead of running it)."""
    prog = ThreadProgram(name)

    @prog.thread
    def root(frame, k):
        frame.send(k, None)

    return JobProgram(prog, root)


class TrafficSystem:
    """A workstation network under synthetic production traffic.

    The real pieces: the :class:`PhishJobQ` RPC server with a real
    assignment policy, simulated UDP underneath, owner sovereignty on
    every machine.  The synthetic piece: jobs are service demands
    drained in quanta by per-machine *agents* instead of micro-level
    worker processes.
    """

    def __init__(
        self,
        config: Optional[TrafficConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = cfg = config or TrafficConfig()
        cfg.validate()
        self.sim = Simulator()
        self.rng = RngRegistry(cfg.seed)
        #: Callers that want health diagnosis pass a registry with a
        #: HealthMonitor already attached (``repro diagnose --app traffic``).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._health = self.metrics.health
        self.network = Network(
            self.sim,
            UniformTopology(SPARCSTATION_1.net),
            rng=self.rng.stream("net"),
        )
        self.workstations: List[Workstation] = []
        self.owners: List[Owner] = []
        for i in range(cfg.n_workstations):
            ws = Workstation(self.sim, f"ws{i:02d}", SPARCSTATION_1, self.network)
            self.workstations.append(ws)
            self.owners.append(Owner(ws, self._owner_trace(i)))
        self.policy = make_policy(cfg.policy)
        self.jobq = PhishJobQ(
            self.sim, self.network, self.workstations[0].name,
            self.policy, metrics=self.metrics,
        )
        #: Jobs whose completion RPC is in flight (exactly-once latch).
        self._completing: Set[int] = set()
        self.submitted = 0
        self.completed = 0
        self._last_done_at = 0.0
        self._m_sojourn = self.metrics.histogram(
            "macro.traffic.sojourn_s", DURATION_BUCKETS_S)
        self._program = _synthetic_program()
        self._schedule = self._build_schedule()
        #: Interrupt-driven work sharing: parked agents wait on the
        #: bell; every pool change re-arms it and rings the old one.
        self.interrupt_mode = self.policy.interrupt_driven
        self._bell = Signal(self.sim)
        if self.interrupt_mode:
            self.jobq.add_pool_listener(self._ring)
        self._procs = [self.sim.process(self._submitter(), name="traffic-submitter")]
        for ws in self.workstations:
            self._procs.append(
                self.sim.process(self._agent(ws), name=f"agent@{ws.name}"))

    # -- construction helpers ------------------------------------------

    def _owner_trace(self, index: int) -> OwnerTrace:
        cfg = self.config
        if cfg.owners == "idle":
            return AlwaysIdleTrace()
        events = workday_events(
            self.rng.stream(f"traffic.owner.{index}"),
            cfg.horizon_s, cfg.owner_busy_mean_s, cfg.owner_idle_mean_s,
        )
        return ReplayOwnerTrace.from_events(events)

    def _size_distribution(self) -> SizeDistribution:
        cfg = self.config
        if cfg.sizes == "pareto":
            return BoundedParetoSizes(cfg.pareto_alpha, cfg.size_lo_s, cfg.size_hi_s)
        if cfg.sizes == "exponential":
            return ExponentialSizes(cfg.size_mean_s)
        raise JobError(f"unknown size distribution {cfg.sizes!r}")

    def _build_schedule(self) -> List[Tuple[float, float, int]]:
        """Draw the whole workload up front: (time, size, owner) per job."""
        cfg = self.config
        arrivals = make_arrivals(cfg.arrival, cfg.rate_per_s)
        sizes = self._size_distribution()
        times = arrivals.times(self.rng.stream("traffic.arrivals"), cfg.n_jobs)
        size_rng = self.rng.stream("traffic.sizes")
        owner_rng = self.rng.stream("traffic.owners")
        schedule = []
        for t in times:
            size = sizes.sample(size_rng)
            # Quadratic skew: low-numbered users submit most of the
            # load, so fair-share has an imbalance to correct.
            owner = int(owner_rng.random() ** 2 * cfg.n_owners)
            schedule.append((t, size, owner))
        return schedule

    # -- interrupt-driven sharing --------------------------------------

    def _ring(self) -> None:
        old, self._bell = self._bell, Signal(self.sim)
        old.set()

    # -- simulation processes ------------------------------------------

    def _submitter(self) -> Generator:
        cfg = self.config
        try:
            for when, size, owner_idx in self._schedule:
                delay = when - self.sim.now
                if delay > 0:
                    yield self.sim.timeout(delay)
                host = self.workstations[owner_idx % cfg.n_workstations].name
                self.jobq.submit_record(
                    self._program,
                    host,
                    owner=f"user{owner_idx}",
                    size_hint_s=size,
                    max_workers=cfg.max_workers_per_job,
                    register_first_worker=False,
                )
                self.submitted += 1
        except Interrupt:
            return

    def _agent(self, ws: Workstation) -> Generator:
        """The machine side of the protocol: request, serve, give back."""
        cfg = self.config
        sim = self.sim
        try:
            while True:
                if ws.user_logged_in:
                    yield sim.timeout(cfg.owner_poll_s)
                    continue
                desc = yield from rpc_call(
                    self.network, ws.name, self.jobq.host, P.JOBQ_PORT,
                    "request_job", ws.name,
                )
                if desc is None:
                    if self.interrupt_mode:
                        bell = self._bell
                        yield AnyOf(sim, [
                            bell.wait(), sim.timeout(cfg.park_timeout_s)])
                    else:
                        yield sim.timeout(cfg.retry_s)
                    continue
                yield from self._serve(ws, desc["job_id"])
        except Interrupt:
            return

    def _serve(self, ws: Workstation, job_id: int) -> Generator:
        """Drain a granted job in quanta until done, drained, or reclaimed."""
        cfg = self.config
        record = self.jobq.jobs[job_id]
        while True:
            if record.done or job_id in self._completing:
                break
            remaining = record.remaining_s or 0.0
            if remaining <= 0.0:
                break
            if ws.user_logged_in:
                break  # the owner is back: give the machine up now
            quantum = min(cfg.quantum_s, remaining)
            ws.charge(quantum)
            yield self.sim.timeout(quantum)
            record.remaining_s = max(0.0, (record.remaining_s or 0.0) - quantum)
        drained = (record.remaining_s or 0.0) <= 0.0
        if drained and not record.done and job_id not in self._completing:
            self._completing.add(job_id)
            yield from rpc_call(
                self.network, ws.name, self.jobq.host, P.JOBQ_PORT,
                "job_done", job_id,
            )
            self.completed += 1
            self._last_done_at = record.finished_at or self.sim.now
            sojourn_s = (record.finished_at or self.sim.now) - record.submitted_at
            self._m_sojourn.observe(sojourn_s)
            if self._health is not None and cfg.slo_s is not None:
                self._health.job_sojourn(
                    self.sim.now, job_id, sojourn_s, cfg.slo_s)
        else:
            yield from rpc_call(
                self.network, ws.name, self.jobq.host, P.JOBQ_PORT,
                "release", {"job_id": job_id, "workstation": ws.name},
            )

    # -- driving and reporting -----------------------------------------

    def run(self) -> TrafficReport:
        """Run to completion (or the horizon) and report."""
        cfg = self.config
        while self.completed < cfg.n_jobs:
            upcoming = self.sim.peek()
            if upcoming == float("inf") or upcoming > cfg.horizon_s:
                break
            self.sim.step()
        return self.report()

    def stop(self) -> None:
        self.jobq.stop()
        for proc in self._procs:
            proc.interrupt("traffic-stop")

    def report(self) -> TrafficReport:
        cfg = self.config
        sojourn = self._m_sojourn
        wait = self.metrics.get("macro.jobq.wait_s")
        makespan = self._last_done_at if self.completed else self.sim.now
        return TrafficReport(
            policy=self.policy.name,
            arrival=cfg.arrival,
            seed=cfg.seed,
            n_jobs=cfg.n_jobs,
            n_submitted=self.submitted,
            n_completed=self.completed,
            makespan_s=makespan,
            throughput_jobs_per_s=(
                self.completed / makespan if makespan > 0 else 0.0),
            latency_mean_s=sojourn.mean,
            latency_p50_s=sojourn.percentile(0.50),
            latency_p95_s=sojourn.percentile(0.95),
            latency_p99_s=sojourn.percentile(0.99),
            wait_p50_s=wait.percentile(0.50) if wait is not None else None,
            wait_p95_s=wait.percentile(0.95) if wait is not None else None,
            wait_p99_s=wait.percentile(0.99) if wait is not None else None,
            requests=self.jobq.requests,
            grants=self.jobq.grants,
            scanned=self.policy.scanned,
        )


def run_traffic(
    config: Optional[TrafficConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> TrafficReport:
    """Build, run, and tear down one traffic simulation."""
    system = TrafficSystem(config, metrics=metrics)
    try:
        return system.run()
    finally:
        system.stop()
