"""Job-assignment policies for the PhishJobQ.

"Our current implementation of the PhishJobQ uses a non-preemptive
round-robin scheduling algorithm to assign jobs.  Future implementations
of Phish will provide opportunities for using and studying more
sophisticated job assignment algorithms" — this module is that
opportunity: round-robin (the paper), least-participants (space-share
evenly), and strict priority.
"""

from __future__ import annotations

from typing import List, Optional

from repro.macro.job import JobRecord


class AssignmentPolicy:
    """Chooses which pool job to hand an idle workstation."""

    name = "abstract"

    def choose(self, pool: List[JobRecord], requester: str) -> Optional[JobRecord]:
        """Pick a job for *requester*, or None if nothing is eligible.

        A job is ineligible if the requester already participates in it
        (a workstation runs at most one worker per job).
        """
        raise NotImplementedError

    @staticmethod
    def eligible(pool: List[JobRecord], requester: str) -> List[JobRecord]:
        return [
            rec for rec in pool if not rec.done and requester not in rec.participants
        ]


class RoundRobinAssignment(AssignmentPolicy):
    """The paper's policy: cycle through the pool, one job per request."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, pool: List[JobRecord], requester: str) -> Optional[JobRecord]:
        eligible = self.eligible(pool, requester)
        if not eligible:
            return None
        record = eligible[self._cursor % len(eligible)]
        self._cursor += 1
        return record


class LeastWorkersAssignment(AssignmentPolicy):
    """Send the workstation to the job with the fewest participants.

    Equalises space shares, so a freshly-submitted job catches up fast;
    ties break by submission order.
    """

    name = "least-workers"

    def choose(self, pool: List[JobRecord], requester: str) -> Optional[JobRecord]:
        eligible = self.eligible(pool, requester)
        if not eligible:
            return None
        return min(eligible, key=lambda rec: (len(rec.participants), rec.job_id))


class PriorityAssignment(AssignmentPolicy):
    """Highest priority wins; round-robin within a priority level."""

    name = "priority"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, pool: List[JobRecord], requester: str) -> Optional[JobRecord]:
        eligible = self.eligible(pool, requester)
        if not eligible:
            return None
        top = max(rec.priority for rec in eligible)
        level = [rec for rec in eligible if rec.priority == top]
        record = level[self._cursor % len(level)]
        self._cursor += 1
        return record
