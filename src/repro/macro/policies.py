"""Job-assignment policies for the PhishJobQ.

"Our current implementation of the PhishJobQ uses a non-preemptive
round-robin scheduling algorithm to assign jobs.  Future implementations
of Phish will provide opportunities for using and studying more
sophisticated job assignment algorithms" — this module is that
opportunity.  Policies are *indexed*: the JobQ notifies them of pool
events (submit/grant/release/done) and :meth:`~AssignmentPolicy.choose`
consults an internal structure instead of scanning the pool, so one
assignment costs O(log n) (plus one step per job the requester already
participates in) even with thousands of queued jobs.

Implemented policies:

* **round-robin** — the paper's algorithm, on a circular list.
* **priority** — strict priority; least-recently-granted within a level.
* **least-workers** — fewest current participants first (space-share).
* **srp** — shortest remaining parallelism: the job closest to done
  (by its remaining-work estimate) gets the next machine, the macro
  analogue of SRPT.
* **fair-share** — owners with the least accumulated grants go first;
  round-robin among one owner's jobs.
* **interrupt** — round-robin order, but flagged ``interrupt_driven``:
  the traffic engine parks idle machines and wakes them the moment the
  pool gains work (the work-sharing discipline of Rokos, Gorman & Kelly)
  instead of letting them poll on a timer.

Determinism contract (pinned by ``tests/macro/test_properties.py``):
every tie on a policy's primary criterion breaks on explicitly ordered
secondary keys ending in the job id, never on incidental list or hash
order, so the same seed always yields the same assignment sequence.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.macro.job import JobRecord
from repro.macro.jobindex import CycleList, LazyMinHeap

#: Remaining-work stand-in for jobs that never declared a size: they
#: sort after every estimated job (SRP serves known-short work first).
_UNSIZED = float("inf")


class AssignmentPolicy:
    """Chooses which pool job to hand an idle workstation.

    The JobQ drives the lifecycle: :meth:`on_submit` when a job enters
    the pool, :meth:`on_grant`/:meth:`on_release` as participation
    changes (these refresh any participation-derived index keys), and
    :meth:`on_done` when it completes.  :meth:`choose` may advance
    policy-internal rotation state (cursor, usage counters): the JobQ
    always grants what ``choose`` returns.

    ``scanned`` counts candidate records examined across all ``choose``
    calls — the regression tests pin it to stay within a small constant
    factor of the grant count, which is what "indexed, not O(n) scans"
    means operationally.
    """

    name = "abstract"
    #: True for policies that want idle machines notified (interrupted)
    #: when the pool gains work, rather than polling on a timer.
    interrupt_driven = False

    def __init__(self) -> None:
        self.scanned = 0

    @staticmethod
    def eligible(record: JobRecord, requester: str) -> bool:
        """May *record* be assigned to *requester*?

        Ineligible when done, when the requester already participates
        (a workstation runs at most one worker per job), or when the
        job's ``max_workers`` cap is already met.
        """
        return (
            not record.done
            and requester not in record.participants
            and (record.max_workers is None
                 or len(record.participants) < record.max_workers)
        )

    # -- pool lifecycle ------------------------------------------------

    def on_submit(self, record: JobRecord) -> None:
        raise NotImplementedError

    def on_done(self, record: JobRecord) -> None:
        raise NotImplementedError

    def on_grant(self, record: JobRecord, workstation: str) -> None:
        pass

    def on_release(self, record: JobRecord, workstation: str) -> None:
        pass

    # -- assignment ----------------------------------------------------

    def choose(self, requester: str) -> Optional[JobRecord]:
        """Pick a job for *requester*, or None if nothing is eligible."""
        raise NotImplementedError


class RoundRobinAssignment(AssignmentPolicy):
    """The paper's policy: cycle through the pool, one job per request.

    Deterministic ordering: jobs rotate in submission order; after a
    grant the cursor advances to the granted job's successor, so equal
    candidates are served least-recently-first.  New submissions join
    at the tail of the cycle (served after the jobs already waiting).
    """

    name = "round-robin"

    def __init__(self) -> None:
        super().__init__()
        self._ring = CycleList()
        self._records: Dict[int, JobRecord] = {}

    def on_submit(self, record: JobRecord) -> None:
        self._records[record.job_id] = record
        self._ring.append(record.job_id)

    def on_done(self, record: JobRecord) -> None:
        self._ring.remove(record.job_id)
        self._records.pop(record.job_id, None)

    def choose(self, requester: str) -> Optional[JobRecord]:
        for job_id in self._ring.from_cursor():
            self.scanned += 1
            record = self._records[job_id]
            if self.eligible(record, requester):
                self._ring.advance_past(job_id)
                return record
        return None


class InterruptSharingAssignment(RoundRobinAssignment):
    """Round-robin order with interrupt-driven work *sharing*.

    Modeled on the interrupt-driven work sharing of Rokos, Gorman &
    Kelly (PAPERS.md): instead of idle machines rediscovering work on a
    retry timer (the paper's 30-second poll), the scheduler interrupts
    parked idle machines the moment a submission or release makes work
    available.  Assignment order is unchanged — the win is the removed
    rediscovery latency, which the traffic sweeps measure as job-latency
    percentiles.  Honoured by :class:`repro.macro.traffic.TrafficSystem`
    (the JobQ exposes the pool-change hook; pull-mode daemons ignore it).
    """

    name = "interrupt-sharing"
    interrupt_driven = True


class PriorityAssignment(AssignmentPolicy):
    """Highest priority wins; least-recently-granted within a level.

    Deterministic ordering, pinned: the key is ``(-priority, serve_seq,
    job_id)`` where ``serve_seq`` is a monotone counter stamped at
    submission and re-stamped on every grant — so equal-priority jobs
    rotate round-robin by last grant, with submission order (and
    finally the job id) breaking residual ties.
    """

    name = "priority"

    def __init__(self) -> None:
        super().__init__()
        self._heap = LazyMinHeap()
        self._records: Dict[int, JobRecord] = {}
        self._seq = 0

    def _key(self, record: JobRecord):
        return (-record.priority, self._seq, record.job_id)

    def on_submit(self, record: JobRecord) -> None:
        self._seq += 1
        self._records[record.job_id] = record
        self._heap.push(record.job_id, self._key(record))

    def on_done(self, record: JobRecord) -> None:
        self._heap.discard(record.job_id)
        self._records.pop(record.job_id, None)

    def choose(self, requester: str) -> Optional[JobRecord]:
        skipped = []
        picked: Optional[JobRecord] = None
        while True:
            entry = self._heap.pop_min()
            if entry is None:
                break
            key, job_id = entry
            record = self._records[job_id]
            self.scanned += 1
            if self.eligible(record, requester):
                picked = record
                break
            skipped.append((job_id, key))
        for job_id, key in skipped:
            self._heap.push(job_id, key)
        if picked is not None:
            # Re-stamp: the granted job goes to the back of its level.
            self._seq += 1
            self._heap.push(picked.job_id, self._key(picked))
        self._heap.compact()
        return picked


class LeastWorkersAssignment(AssignmentPolicy):
    """Send the workstation to the job with the fewest participants.

    Equalises space shares, so a freshly-submitted job catches up fast.
    Deterministic ordering, pinned: ``(participants, job_id)`` — ties
    on participant count break by submission order.
    """

    name = "least-workers"

    def __init__(self) -> None:
        super().__init__()
        self._heap = LazyMinHeap()
        self._records: Dict[int, JobRecord] = {}

    def _key(self, record: JobRecord):
        return (len(record.participants), record.job_id)

    def _refresh(self, record: JobRecord, _ws: str = "") -> None:
        if record.job_id in self._records and not record.done:
            self._heap.push(record.job_id, self._key(record))

    on_grant = _refresh
    on_release = _refresh

    def on_submit(self, record: JobRecord) -> None:
        self._records[record.job_id] = record
        self._heap.push(record.job_id, self._key(record))

    def on_done(self, record: JobRecord) -> None:
        self._heap.discard(record.job_id)
        self._records.pop(record.job_id, None)

    def choose(self, requester: str) -> Optional[JobRecord]:
        skipped = []
        picked: Optional[JobRecord] = None
        while True:
            entry = self._heap.pop_min()
            if entry is None:
                break
            key, job_id = entry
            record = self._records[job_id]
            self.scanned += 1
            if self.eligible(record, requester):
                picked = record
                break
            skipped.append((job_id, key))
        for job_id, key in skipped:
            self._heap.push(job_id, key)
        if picked is not None:
            # on_grant will re-key with the updated participant count.
            self._heap.push(picked.job_id, self._key(picked))
        self._heap.compact()
        return picked


class ShortestRemainingAssignment(AssignmentPolicy):
    """Shortest remaining parallelism first — macro-level SRPT.

    The job with the least remaining work estimate (``remaining_s``,
    falling back to the static ``size_hint_s``; unsized jobs sort last)
    gets the next idle machine, finishing nearly-done jobs fast and
    keeping mean/percentile job latency low under heavy-tailed sizes.
    Keys refresh on every grant/release of the job; between refreshes
    the ordering uses the last refreshed estimate, which keeps the
    index O(log n) and the decision sequence deterministic.
    Deterministic ordering, pinned: ``(remaining, job_id)``.
    """

    name = "srp"

    def __init__(self) -> None:
        super().__init__()
        self._heap = LazyMinHeap()
        self._records: Dict[int, JobRecord] = {}

    def _key(self, record: JobRecord):
        remaining = record.remaining_s
        if remaining is None:
            remaining = record.size_hint_s
        if remaining is None:
            remaining = _UNSIZED
        return (remaining, record.job_id)

    def _refresh(self, record: JobRecord, _ws: str = "") -> None:
        if record.job_id in self._records and not record.done:
            self._heap.push(record.job_id, self._key(record))

    on_grant = _refresh
    on_release = _refresh

    def on_submit(self, record: JobRecord) -> None:
        self._records[record.job_id] = record
        self._heap.push(record.job_id, self._key(record))

    def on_done(self, record: JobRecord) -> None:
        self._heap.discard(record.job_id)
        self._records.pop(record.job_id, None)

    def choose(self, requester: str) -> Optional[JobRecord]:
        skipped = []
        picked: Optional[JobRecord] = None
        while True:
            entry = self._heap.pop_min()
            if entry is None:
                break
            _key, job_id = entry
            record = self._records[job_id]
            self.scanned += 1
            if self.eligible(record, requester):
                picked = record
                break
            skipped.append((job_id, _key))
        for job_id, key in skipped:
            self._heap.push(job_id, key)
        if picked is not None:
            self._heap.push(picked.job_id, self._key(picked))
        self._heap.compact()
        return picked


class FairShareAssignment(AssignmentPolicy):
    """Equalise machine grants across job *owners*.

    The owner (submitting user/host) with the fewest accumulated grants
    is served first; within one owner, jobs rotate round-robin in
    submission order.  This is the classic fair-share answer to one
    user flooding the JobQ with a thousand jobs: they get 1/k of the
    machines, not all of them.  Usage survives job completion (history
    matters), but an owner with no queued jobs costs nothing.
    Deterministic ordering, pinned: ``(grants, owner)`` across owners,
    submission-order rotation within an owner.
    """

    name = "fair-share"

    def __init__(self) -> None:
        super().__init__()
        self._usage: Dict[str, int] = {}
        self._owner_heap = LazyMinHeap()
        self._owner_jobs: Dict[str, CycleList] = {}
        self._records: Dict[int, JobRecord] = {}

    @staticmethod
    def owner_of(record: JobRecord) -> str:
        return record.owner if record.owner is not None else record.ch_host

    def on_submit(self, record: JobRecord) -> None:
        owner = self.owner_of(record)
        self._records[record.job_id] = record
        ring = self._owner_jobs.get(owner)
        if ring is None:
            ring = self._owner_jobs[owner] = CycleList()
        ring.append(record.job_id)
        usage = self._usage.setdefault(owner, 0)
        if owner not in self._owner_heap:
            self._owner_heap.push(owner, (usage, owner))

    def on_done(self, record: JobRecord) -> None:
        owner = self.owner_of(record)
        ring = self._owner_jobs.get(owner)
        if ring is not None:
            ring.remove(record.job_id)
            if not ring:
                del self._owner_jobs[owner]
                self._owner_heap.discard(owner)
        self._records.pop(record.job_id, None)

    def choose(self, requester: str) -> Optional[JobRecord]:
        skipped = []
        picked: Optional[JobRecord] = None
        picked_owner: Optional[str] = None
        while True:
            entry = self._owner_heap.pop_min()
            if entry is None:
                break
            key, owner = entry
            ring = self._owner_jobs.get(owner)
            if ring is None:
                continue  # stale owner entry
            for job_id in ring.from_cursor():
                self.scanned += 1
                record = self._records[job_id]
                if self.eligible(record, requester):
                    ring.advance_past(job_id)
                    picked = record
                    picked_owner = owner
                    break
            if picked is not None:
                break
            skipped.append((owner, key))
        for owner, key in skipped:
            self._owner_heap.push(owner, key)
        if picked is not None and picked_owner is not None:
            self._usage[picked_owner] += 1
            self._owner_heap.push(
                picked_owner, (self._usage[picked_owner], picked_owner))
        self._owner_heap.compact()
        return picked


#: Name -> factory for every assignment policy (the traffic sweeps and
#: CLI select by these keys; short aliases for the common ones).
POLICY_FACTORIES = {
    "rr": RoundRobinAssignment,
    "round-robin": RoundRobinAssignment,
    "priority": PriorityAssignment,
    "least": LeastWorkersAssignment,
    "least-workers": LeastWorkersAssignment,
    "srp": ShortestRemainingAssignment,
    "fair": FairShareAssignment,
    "fair-share": FairShareAssignment,
    "interrupt": InterruptSharingAssignment,
    "interrupt-sharing": InterruptSharingAssignment,
}


def make_policy(name: str) -> AssignmentPolicy:
    """Build a fresh policy instance by (alias) name."""
    try:
        factory = POLICY_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown assignment policy {name!r}; "
            f"known: {sorted(set(POLICY_FACTORIES))}"
        ) from None
    return factory()
