"""The PhishJobQ: the central pool of parallel jobs.

"The PhishJobQ, an RPC server, resides on one computer and manages the
pool of parallel jobs.  When a Phish application begins execution, it
is submitted to the PhishJobQ.  When an idle workstation requests a
job, the PhishJobQ assigns one of its parallel jobs to the idle
workstation."
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import JobError
from repro.macro.job import JobRecord
from repro.macro.policies import AssignmentPolicy, RoundRobinAssignment
from repro.micro import protocol as P
from repro.net.network import Network
from repro.net.rpc import RpcServer
from repro.obs.metrics import MetricsRegistry
from repro.sim.core import Simulator
from repro.tasks.program import JobProgram
from repro.util.trace import TraceLog


class PhishJobQ:
    """RPC server managing the pool of parallel jobs."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host: str,
        policy: Optional[AssignmentPolicy] = None,
        trace: Optional[TraceLog] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.host = host
        self.policy = policy or RoundRobinAssignment()
        self.trace = trace
        self.jobs: Dict[int, JobRecord] = {}
        self._next_job_id = 0
        #: Counters for the macro-level experiments.
        self.requests = 0
        self.grants = 0
        #: Observability: queue wait from submission to first grant.
        if metrics is not None:
            self._m_queue_wait = metrics.histogram("macro.jobq.wait_s")
            self._m_grants = metrics.counter("macro.jobq.grants.count")
        else:
            self._m_queue_wait = None
            self._m_grants = None
        #: Job ids whose queue wait has been observed (first grant only).
        self._waited: set = set()

        self.rpc = RpcServer(network, host, P.JOBQ_PORT, name="jobq")
        self.rpc.register("submit", self._rpc_submit)
        self.rpc.register("request_job", self._rpc_request_job)
        self.rpc.register("job_done", self._rpc_job_done)
        self.rpc.register("release", self._rpc_release)
        self.rpc.register("list_jobs", self._rpc_list_jobs)
        self.rpc.register("check_preempt", self._rpc_check_preempt)

    # -- direct (same-process) API, used by PhishSystem -----------------------

    def submit_record(self, program: JobProgram, ch_host: str, priority: int = 0) -> JobRecord:
        """Create and pool a job record (the submitter starts the CH)."""
        record = JobRecord(
            job_id=self._next_job_id,
            program=program,
            ch_host=ch_host,
            priority=priority,
            submitted_at=self.sim.now,
        )
        self._next_job_id += 1
        record.participants.add(ch_host)  # the submitter's first worker
        self.jobs[record.job_id] = record
        if self.trace is not None:
            self.trace.emit(self.sim.now, "jobq.submit", self.host,
                            job=record.name, id=record.job_id)
        return record

    @property
    def pool(self) -> List[JobRecord]:
        """Jobs currently available for assignment (submission order)."""
        return [rec for rec in self.jobs.values() if not rec.done]

    # -- RPC handlers -----------------------------------------------------------

    def _rpc_submit(self, args: dict, _msg) -> int:
        record = self.submit_record(
            args["program"], args["ch_host"], args.get("priority", 0)
        )
        return record.job_id

    def _rpc_request_job(self, workstation: str, _msg) -> Optional[dict]:
        self.requests += 1
        record = self.policy.choose(self.pool, workstation)
        if record is None:
            return None
        record.participants.add(workstation)
        self.grants += 1
        if self._m_grants is not None:
            self._m_grants.inc()
            if record.job_id not in self._waited:
                self._waited.add(record.job_id)
                self._m_queue_wait.observe(self.sim.now - record.submitted_at)
        if self.trace is not None:
            self.trace.emit(self.sim.now, "jobq.grant", self.host,
                            job=record.name, to=workstation)
        return record.descriptor()

    def _rpc_job_done(self, job_id: int, _msg) -> bool:
        record = self.jobs.get(job_id)
        if record is None:
            raise JobError(f"job_done for unknown job {job_id}")
        record.done = True
        record.finished_at = self.sim.now
        if self.trace is not None:
            self.trace.emit(self.sim.now, "jobq.done", self.host, id=job_id)
        return True

    def _rpc_release(self, args: dict, _msg) -> bool:
        record = self.jobs.get(args["job_id"])
        if record is not None:
            record.participants.discard(args["workstation"])
        return True

    def _rpc_check_preempt(self, args: dict, _msg) -> bool:
        """Should *workstation* abandon *job_id* for a higher-priority job?

        The paper: "the macro-level scheduler may preempt the process due
        to scheduling priority.  This preemption is the only case in
        which the macro-level scheduler performs time-sharing."
        """
        current = self.jobs.get(args["job_id"])
        if current is None or current.done:
            return False
        workstation = args["workstation"]
        return any(
            rec.priority > current.priority
            for rec in self.pool
            if workstation not in rec.participants
        )

    def _rpc_list_jobs(self, _args, _msg) -> List[dict]:
        return [
            {
                "job_id": rec.job_id,
                "name": rec.name,
                "done": rec.done,
                "participants": sorted(rec.participants),
                "priority": rec.priority,
            }
            for rec in self.jobs.values()
        ]

    def stop(self) -> None:
        self.rpc.stop()
