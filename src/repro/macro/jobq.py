"""The PhishJobQ: the central pool of parallel jobs.

"The PhishJobQ, an RPC server, resides on one computer and manages the
pool of parallel jobs.  When a Phish application begins execution, it
is submitted to the PhishJobQ.  When an idle workstation requests a
job, the PhishJobQ assigns one of its parallel jobs to the idle
workstation."

Scale discipline (the production-traffic upgrade): the active pool is
an insertion-ordered index and every assignment decision goes through
the policy's own index (:mod:`repro.macro.policies`), so a request
costs O(log n) — the seed's per-request linear ``pool()`` rebuild is
gone.  ``list_jobs`` is paginated so one RPC reply stays bounded no
matter how many thousand jobs the queue has seen.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import JobError
from repro.macro.job import JobRecord
from repro.macro.policies import AssignmentPolicy, RoundRobinAssignment
from repro.micro import protocol as P
from repro.net.network import Network
from repro.net.rpc import RpcServer
from repro.obs.metrics import DURATION_BUCKETS_S, MetricsRegistry
from repro.sim.core import Simulator
from repro.tasks.program import JobProgram
from repro.util.trace import TraceLog

#: Most job summaries one ``list_jobs`` reply will carry; pass
#: ``{"after": last_job_id}`` to page through a bigger queue.
DEFAULT_LIST_LIMIT = 256


class PhishJobQ:
    """RPC server managing the pool of parallel jobs."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host: str,
        policy: Optional[AssignmentPolicy] = None,
        trace: Optional[TraceLog] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.host = host
        self.policy = policy or RoundRobinAssignment()
        self.trace = trace
        #: Every record ever submitted (completion keeps the record for
        #: latency accounting; assignment never touches this dict).
        self.jobs: Dict[int, JobRecord] = {}
        #: The live pool: insertion-ordered, completed jobs removed.
        self._active: Dict[int, JobRecord] = {}
        #: priority -> {job_id: record} over active jobs, the index
        #: behind ``check_preempt`` (distinct priority levels are few).
        self._levels: Dict[int, Dict[int, JobRecord]] = {}
        self._next_job_id = 0
        #: Callbacks fired when the pool gains assignable work (a submit
        #: or a release) — the interrupt-driven sharing hook.
        self._pool_listeners: List[Callable[[], None]] = []
        #: Counters for the macro-level experiments.
        self.requests = 0
        self.grants = 0
        #: Observability: queue wait from submission to first grant.
        if metrics is not None:
            self._m_queue_wait = metrics.histogram(
                "macro.jobq.wait_s", DURATION_BUCKETS_S)
            self._m_grants = metrics.counter("macro.jobq.grants.count")
            self._m_depth = metrics.gauge("macro.jobq.depth")
        else:
            self._m_queue_wait = None
            self._m_grants = None
            self._m_depth = None

        self.rpc = RpcServer(network, host, P.JOBQ_PORT, name="jobq")
        self.rpc.register("submit", self._rpc_submit)
        self.rpc.register("request_job", self._rpc_request_job)
        self.rpc.register("job_done", self._rpc_job_done)
        self.rpc.register("release", self._rpc_release)
        self.rpc.register("list_jobs", self._rpc_list_jobs)
        self.rpc.register("check_preempt", self._rpc_check_preempt)

    # -- direct (same-process) API, used by PhishSystem -----------------------

    def submit_record(
        self,
        program: JobProgram,
        ch_host: str,
        priority: int = 0,
        owner: Optional[str] = None,
        size_hint_s: Optional[float] = None,
        max_workers: Optional[int] = None,
        register_first_worker: bool = True,
    ) -> JobRecord:
        """Create and pool a job record (the submitter starts the CH).

        ``register_first_worker=False`` pools the job without counting
        the submit host as a participant (no first worker starts there
        — the traffic engine's mode).
        """
        record = JobRecord(
            job_id=self._next_job_id,
            program=program,
            ch_host=ch_host,
            priority=priority,
            submitted_at=self.sim.now,
            owner=owner,
            size_hint_s=size_hint_s,
            remaining_s=size_hint_s,
            max_workers=max_workers,
        )
        self._next_job_id += 1
        if register_first_worker:
            record.participants.add(ch_host)  # the submitter's first worker
        self.jobs[record.job_id] = record
        self._active[record.job_id] = record
        self._levels.setdefault(record.priority, {})[record.job_id] = record
        self.policy.on_submit(record)
        if self._m_depth is not None:
            self._m_depth.set(len(self._active))
        if self.trace is not None:
            self.trace.emit(self.sim.now, "jobq.submit", self.host,
                            job=record.name, id=record.job_id)
        self._notify_pool_change()
        return record

    @property
    def pool(self) -> List[JobRecord]:
        """Jobs currently available for assignment (submission order)."""
        return list(self._active.values())

    def add_pool_listener(self, callback: Callable[[], None]) -> None:
        """Call *callback* whenever a submit or release adds assignable
        work — interrupt-driven schedulers wake parked machines here."""
        self._pool_listeners.append(callback)

    def _notify_pool_change(self) -> None:
        for callback in self._pool_listeners:
            callback()

    # -- RPC handlers -----------------------------------------------------------

    def _rpc_submit(self, args: dict, _msg) -> int:
        record = self.submit_record(
            args["program"], args["ch_host"], args.get("priority", 0),
            owner=args.get("owner"),
            size_hint_s=args.get("size_hint_s"),
            max_workers=args.get("max_workers"),
        )
        return record.job_id

    def _rpc_request_job(self, workstation: str, _msg) -> Optional[dict]:
        self.requests += 1
        record = self.policy.choose(workstation)
        if record is None:
            return None
        record.participants.add(workstation)
        self.policy.on_grant(record, workstation)
        self.grants += 1
        if record.first_granted_at is None:
            record.first_granted_at = self.sim.now
            if self._m_queue_wait is not None:
                self._m_queue_wait.observe(self.sim.now - record.submitted_at)
        if self._m_grants is not None:
            self._m_grants.inc()
        if self.trace is not None:
            self.trace.emit(self.sim.now, "jobq.grant", self.host,
                            job=record.name, to=workstation)
        return record.descriptor()

    def _rpc_job_done(self, job_id: int, _msg) -> bool:
        record = self.jobs.get(job_id)
        if record is None:
            raise JobError(f"job_done for unknown job {job_id}")
        if record.done:
            raise JobError(f"job_done twice for job {job_id}")
        record.done = True
        record.finished_at = self.sim.now
        self._active.pop(job_id, None)
        level = self._levels.get(record.priority)
        if level is not None:
            level.pop(job_id, None)
            if not level:
                del self._levels[record.priority]
        self.policy.on_done(record)
        if self._m_depth is not None:
            self._m_depth.set(len(self._active))
        if self.trace is not None:
            self.trace.emit(self.sim.now, "jobq.done", self.host, id=job_id)
        return True

    def _rpc_release(self, args: dict, _msg) -> bool:
        record = self.jobs.get(args["job_id"])
        if record is not None:
            workstation = args["workstation"]
            if workstation in record.participants:
                record.participants.discard(workstation)
                self.policy.on_release(record, workstation)
                if not record.done:
                    self._notify_pool_change()
        return True

    def _rpc_check_preempt(self, args: dict, _msg) -> bool:
        """Should *workstation* abandon *job_id* for a higher-priority job?

        The paper: "the macro-level scheduler may preempt the process due
        to scheduling priority.  This preemption is the only case in
        which the macro-level scheduler performs time-sharing."

        Indexed per priority level: only jobs at levels strictly above
        the current one are examined (distinct levels are few, so this
        stays far from a full pool scan).
        """
        current = self.jobs.get(args["job_id"])
        if current is None or current.done:
            return False
        workstation = args["workstation"]
        for priority in sorted(self._levels, reverse=True):
            if priority <= current.priority:
                break
            for rec in self._levels[priority].values():
                if workstation not in rec.participants:
                    return True
        return False

    def _rpc_list_jobs(self, args, _msg) -> List[dict]:
        """A bounded page of job summaries, ordered by job id.

        ``args`` may carry ``{"after": job_id, "limit": n}``; the reply
        holds at most ``limit`` (default :data:`DEFAULT_LIST_LIMIT`)
        entries, so a thousand-job queue pages instead of shipping one
        unbounded datagram.  An empty reply means the walk is complete.
        """
        after = -1
        limit = DEFAULT_LIST_LIMIT
        if isinstance(args, dict):
            after = args.get("after", -1)
            limit = min(int(args.get("limit", DEFAULT_LIST_LIMIT)),
                        DEFAULT_LIST_LIMIT)
        page: List[dict] = []
        # Job ids are dense (0..next-1), so the walk costs O(page), not
        # O(all jobs ever).
        for job_id in range(after + 1, self._next_job_id):
            rec = self.jobs.get(job_id)
            if rec is None:
                continue
            page.append({
                "job_id": rec.job_id,
                "name": rec.name,
                "done": rec.done,
                "participants": sorted(rec.participants),
                "priority": rec.priority,
            })
            if len(page) >= limit:
                break
        return page

    def stop(self) -> None:
        self.rpc.stop()
