"""Job records and handles at the macro level."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Set

from repro.micro.protocol import ports_for_job
from repro.tasks.program import JobProgram

if TYPE_CHECKING:  # pragma: no cover
    from repro.clearinghouse.clearinghouse import Clearinghouse
    from repro.micro.worker import Worker
    from repro.sim.resources import Signal


@dataclass
class JobRecord:
    """One entry in the PhishJobQ's pool.

    Note: when a job is assigned to a workstation "the scheduler keeps
    that job in its pool so that the job can also be assigned to other
    idle workstations" — a record leaves the pool only on completion.
    """

    job_id: int
    program: JobProgram
    #: Host running the job's Clearinghouse (and usually its first worker).
    ch_host: str
    priority: int = 0
    submitted_at: float = 0.0
    finished_at: Optional[float] = None
    #: Workstations currently participating (approximate, maintained from
    #: grant/release notifications).
    participants: Set[str] = field(default_factory=set)
    done: bool = False
    #: Accounting owner for fair-share scheduling (None: the ch_host).
    owner: Optional[str] = None
    #: Estimated total service demand in machine-seconds, when the
    #: submitter knows it (the traffic engine's synthetic jobs do).
    size_hint_s: Optional[float] = None
    #: Remaining service demand, decremented as machines serve the job;
    #: the SRP policy orders its index by this estimate.
    remaining_s: Optional[float] = None
    #: Cap on concurrent participants (None: unbounded, the paper's
    #: default — every idle machine may join).
    max_workers: Optional[int] = None
    #: Simulated time of the first JobQ grant (queue-wait accounting).
    first_granted_at: Optional[float] = None

    @property
    def name(self) -> str:
        return self.program.name

    def ports(self) -> tuple[int, int, int]:
        """(worker_port, ch_rpc_port, ch_data_port) for this job."""
        return ports_for_job(self.job_id)

    def descriptor(self) -> dict:
        """What a JobManager needs to start a worker for this job."""
        worker_port, ch_rpc, ch_data = self.ports()
        return {
            "job_id": self.job_id,
            "program": self.program,
            "ch_host": self.ch_host,
            "worker_port": worker_port,
            "ch_rpc_port": ch_rpc,
            "ch_data_port": ch_data,
        }


@dataclass
class JobHandle:
    """What a submitter gets back: live objects to await and inspect."""

    record: JobRecord
    clearinghouse: "Clearinghouse"
    first_worker: Optional["Worker"]

    @property
    def done(self) -> "Signal":
        """Signal set (with the result) when the job completes."""
        return self.clearinghouse.done

    @property
    def result(self):
        return self.clearinghouse.result
