"""High-level facade: assemble a cluster and run a Phish job on it.

:func:`run_job` is the measurement harness of Section 4 of the paper:
a fixed set of dedicated (owner-idle) workstations, one worker per
machine, all started "at as close to the same time as possible", with
the Clearinghouse co-located with the first worker.  It returns the
job's result plus the :class:`~repro.micro.stats.JobStats` that the
tables and figures are built from.

For the full system — PhishJobQ, PhishJobManagers, owners logging in
and out — see :mod:`repro.macro`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.clearinghouse.clearinghouse import Clearinghouse, ClearinghouseConfig
from repro.cluster.platform import SPARCSTATION_1, PlatformProfile
from repro.cluster.workstation import Workstation
from repro.errors import ReproError
from repro.micro.stats import JobStats
from repro.micro.worker import Worker, WorkerConfig
from repro.net.network import Network
from repro.net.topology import Topology, UniformTopology
from repro.obs.metrics import MetricsRegistry
from repro.sim.core import Simulator
from repro.tasks.program import JobProgram
from repro.util.rng import RngRegistry
from repro.util.trace import TraceLog


@dataclass
class JobResult:
    """Everything a finished :func:`run_job` produced."""

    result: Any
    stats: JobStats
    #: Simulated seconds from first registration to result delivery.
    makespan: float
    #: The simulator (for post-run inspection in tests).
    sim: Simulator = field(repr=False)
    workers: List[Worker] = field(repr=False, default_factory=list)
    clearinghouse: Optional[Clearinghouse] = field(repr=False, default=None)
    network: Optional[Network] = field(repr=False, default=None)
    trace: Optional[TraceLog] = field(repr=False, default=None)
    metrics: Optional[MetricsRegistry] = field(repr=False, default=None)
    #: Finalized :meth:`SpanProfiler.summary` when a profiler was wired.
    profile: Optional[dict] = field(repr=False, default=None)


def build_cluster(
    sim: Simulator,
    n_hosts: int,
    profile: PlatformProfile,
    rng_registry: RngRegistry,
    topology: Optional[Topology] = None,
    trace: Optional[TraceLog] = None,
    profiles: Optional[List[PlatformProfile]] = None,
) -> tuple[Network, List[Workstation]]:
    """Create a network plus *n_hosts* workstations.

    Homogeneous by default; pass *profiles* (one per host) for a
    heterogeneous cluster — the case the paper's measurements
    deliberately avoided ("we did our measurements using only
    SparcStation 1's") and its future work targets.
    """
    if n_hosts < 1:
        raise ReproError("need at least one workstation")
    if profiles is not None and len(profiles) != n_hosts:
        raise ReproError(
            f"got {len(profiles)} profiles for {n_hosts} workstations"
        )
    network = Network(
        sim,
        topology or UniformTopology(profile.net),
        rng=rng_registry.stream("net"),
        trace=trace,
    )
    hosts = [
        Workstation(
            sim, f"ws{i:02d}", profiles[i] if profiles else profile, network
        )
        for i in range(n_hosts)
    ]
    return network, hosts


def run_job(
    job: JobProgram,
    n_workers: int = 1,
    profile: PlatformProfile = SPARCSTATION_1,
    seed: int = 0,
    worker_config: Optional[WorkerConfig] = None,
    ch_config: Optional[ClearinghouseConfig] = None,
    start_jitter_s: float = 0.1,
    topology: Optional[Topology] = None,
    trace: bool = False,
    drain_s: float = 2.0,
    profiles: Optional[List[PlatformProfile]] = None,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional[Any] = None,
    queue: str = "auto",
) -> JobResult:
    """Run *job* on *n_workers* dedicated workstations and collect stats.

    Args:
        job: the application and its root arguments.
        n_workers: participants (the paper's P).
        profile: machine type (default: SparcStation 1, the Figure 4/5
            testbed).
        seed: root seed for all random streams (steal victims, jitter).
        worker_config: micro-scheduler tunables; default paper settings.
        ch_config: Clearinghouse tunables.
        start_jitter_s: uniform extra startup delay per worker, modelling
            the paper's imperfect simultaneous starts.
        topology: network topology (default: uniform LAN from profile).
        trace: record a :class:`TraceLog` of scheduler/network events.
        drain_s: simulated seconds to keep running after the result so
            the termination broadcast reaches every worker.
        profiles: optional per-workstation profiles (heterogeneous
            cluster); overrides *profile* machine-by-machine.
        metrics: optional :class:`MetricsRegistry` wired through the
            network, Clearinghouse, and every worker (``repro.cli obs``).
        profiler: optional :class:`~repro.obs.prof.SpanProfiler` wired
            through the same seams (``repro profile``); finalized after
            the drain, with its summary on ``JobResult.profile``.
        queue: event-queue backend for the :class:`Simulator`
            (``"auto"``/``"heap"``/``"calendar"``; see
            docs/performance.md, "Queue backends").
    """
    sim = Simulator(queue=queue)
    reg = RngRegistry(seed)
    tracelog = TraceLog(enabled=True, capacity=200_000) if trace else None
    network, hosts = build_cluster(
        sim, n_workers, profile, reg, topology, tracelog, profiles=profiles
    )
    if metrics is not None:
        network.attach_metrics(metrics)
    if profiler is not None:
        network.attach_profiler(profiler)
        profiler.attach_sim(sim)

    ch = Clearinghouse(sim, network, hosts[0].name, job.name, ch_config, tracelog,
                       metrics=metrics, profiler=profiler)

    base_cfg = worker_config or WorkerConfig()
    jitter_rng = reg.stream("start.jitter")
    workers: List[Worker] = []
    for i, ws in enumerate(hosts):
        jitter = jitter_rng.random() * start_jitter_s if i > 0 else 0.0
        cfg = dataclasses.replace(base_cfg, startup_cost_s=base_cfg.startup_cost_s + jitter)
        workers.append(
            Worker(
                sim,
                ws,
                network,
                job,
                clearinghouse_host=hosts[0].name,
                config=cfg,
                rng=reg.stream(f"worker.{i}"),
                trace=tracelog,
                metrics=metrics,
                profiler=profiler,
            )
        )

    sim.run(ch.done.wait())
    sim.run(until=sim.now + drain_s)  # let the done broadcast land everywhere
    if profiler is not None:
        profiler.finalize(sim.now)

    stats = JobStats(
        workers=[w.stats for w in workers],
        messages_sent=network.counters.sent,
        makespan=(ch.finished_at or sim.now) - (ch.started_at or 0.0),
        result=ch.result,
    )
    return JobResult(
        result=ch.result,
        stats=stats,
        makespan=stats.makespan,
        sim=sim,
        workers=workers,
        clearinghouse=ch,
        network=network,
        trace=tracelog,
        metrics=metrics,
        profile=profiler.summary() if profiler is not None else None,
    )
