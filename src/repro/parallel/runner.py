"""Multi-core fan-out of independent simulation runs.

The paper's thesis is harvesting idle parallel capacity; this module
applies it to our own harness.  Every fan-out consumer in the repo —
the schedule fuzzer, the figure/table sweeps, the harvest repetitions —
boils down to the same shape: a list of *independent, deterministic*
work items, each mapped through a pure module-level function, with the
results reassembled **in input order** so the merged output is
byte-identical to a serial run.

:class:`ShardedRunner` is that shape, once:

* ``jobs <= 1`` (or a single item) runs inline in the parent — no
  process machinery, no pickling, identical code path for the merge.
* ``jobs > 1`` fans items out over a ``ProcessPoolExecutor``.  Shard
  functions must be module-level importables and items picklable, so
  the pool works under ``spawn`` as well as ``fork`` (no module-level
  RNG or registry state is relied on across the boundary).
* If the platform cannot create a process pool at all (no ``fork`` /
  ``spawn`` primitives, sandboxed semaphores, broken workers), the
  runner degrades to the inline path and records why in
  :attr:`PoolStats.mode` — callers never have to care.
* A child exception is captured as a full traceback string and
  re-raised in the parent as :class:`ShardError` with the owning item's
  description attached (e.g. the fuzz seed range), so a failure in
  shard 7 of 16 reads like a failure in a serial loop.

Timed benchmarks deliberately do **not** use this module: wall-clock
numbers from co-scheduled shards measure contention, not the code
(see docs/performance.md).
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Environment override for the multiprocessing start method
#: ("fork" | "spawn" | "forkserver"); default is the platform's.
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"


class ShardError(ReproError):
    """A shard task raised; carries the child's formatted traceback."""

    def __init__(self, label: str, index: int, description: str,
                 child_traceback: str) -> None:
        self.label = label
        self.index = index
        self.description = description
        self.child_traceback = child_traceback
        super().__init__(
            f"{label} shard {index} ({description}) failed in the worker "
            f"process:\n{child_traceback.rstrip()}"
        )


@dataclass(frozen=True)
class ShardInfo:
    """Bookkeeping for one completed shard."""

    index: int
    items: int
    wall_s: float
    pid: int
    description: str = ""
    #: CPU seconds the shard's process actually spent — on an
    #: oversubscribed host this is smaller than ``wall_s`` (which then
    #: includes time-sliced waiting).
    cpu_s: float = 0.0


@dataclass
class PoolStats:
    """How a :meth:`ShardedRunner.map` call actually executed.

    ``speedup`` is the classic harvest ratio: summed per-shard busy
    time over parent wall time — 1.0 for inline runs, approaching
    ``effective_jobs`` when the pool keeps every core busy.
    """

    jobs: int
    effective_jobs: int
    mode: str  # "inline" | "pool(fork)" | "inline-fallback(...)" ...
    wall_s: float = 0.0
    shards: List[ShardInfo] = field(default_factory=list)

    @property
    def work_s(self) -> float:
        """Total per-shard busy seconds (the serial-equivalent cost)."""
        return sum(s.wall_s for s in self.shards)

    @property
    def cpu_s(self) -> float:
        """Total CPU seconds burned across shards."""
        return sum(s.cpu_s for s in self.shards)

    @property
    def speedup(self) -> float:
        return self.work_s / self.wall_s if self.wall_s > 0 else 1.0

    def to_dict(self) -> dict:
        """JSON-ready form for run manifests."""
        return {
            "jobs": self.jobs,
            "effective_jobs": self.effective_jobs,
            "mode": self.mode,
            "wall_s": self.wall_s,
            "work_s": self.work_s,
            "cpu_s": self.cpu_s,
            "speedup": self.speedup,
            "shards": [
                {"index": s.index, "items": s.items, "wall_s": s.wall_s,
                 "cpu_s": s.cpu_s, "pid": s.pid, "description": s.description}
                for s in self.shards
            ],
        }


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 means one per CPU."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def split_evenly(items: Sequence[Any], n_chunks: int) -> List[List[Any]]:
    """Split *items* into at most *n_chunks* contiguous, non-empty runs.

    Contiguity is what makes merged fuzz output identical to the serial
    loop: concatenating chunk results in chunk order replays input
    order exactly.  Sizes differ by at most one.
    """
    items = list(items)
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks: List[List[Any]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


def _shard_entry(fn: Callable[[Any], Any], index: int, item: Any) -> Tuple:
    """Run one shard in the worker process; never raises across the
    process boundary (exceptions come back as formatted tracebacks so
    the parent can attach the owning item)."""
    started = time.perf_counter()
    cpu0 = time.process_time()
    try:
        payload = fn(item)
        return ("ok", index, payload, time.perf_counter() - started,
                time.process_time() - cpu0, os.getpid())
    except BaseException:
        return ("err", index, traceback.format_exc(),
                time.perf_counter() - started,
                time.process_time() - cpu0, os.getpid())


class ShardedRunner:
    """Map a module-level function over independent items, maybe in
    parallel, preserving input order in the results.

    Args:
        jobs: worker processes to use; ``None``/``0`` means one per
            CPU, ``1`` forces the inline path.
        start_method: multiprocessing start method override (default:
            the ``REPRO_PARALLEL_START_METHOD`` env var, else the
            platform default — ``fork`` on Linux).
    """

    def __init__(self, jobs: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.start_method = start_method or os.environ.get(START_METHOD_ENV)

    # -- internals ----------------------------------------------------

    def _run_inline(
        self,
        fn: Callable[[Any], Any],
        items: List[Any],
        stats: PoolStats,
        describe: Callable[[Any], str],
        on_result: Optional[Callable[[int, Any, Any], None]],
    ) -> List[Any]:
        results: List[Any] = []
        for i, item in enumerate(items):
            t0 = time.perf_counter()
            cpu0 = time.process_time()
            payload = fn(item)
            stats.shards.append(ShardInfo(
                index=i, items=1, wall_s=time.perf_counter() - t0,
                pid=os.getpid(), description=describe(item),
                cpu_s=time.process_time() - cpu0,
            ))
            results.append(payload)
            if on_result is not None:
                on_result(i, item, payload)
        return results

    def _run_pool(
        self,
        fn: Callable[[Any], Any],
        items: List[Any],
        stats: PoolStats,
        label: str,
        describe: Callable[[Any], str],
        on_result: Optional[Callable[[int, Any, Any], None]],
    ) -> List[Any]:
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor, as_completed

        ctx = mp.get_context(self.start_method)
        workers = min(self.jobs, len(items))
        results: List[Any] = [None] * len(items)
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            futures = {
                pool.submit(_shard_entry, fn, i, item): (i, item)
                for i, item in enumerate(items)
            }
            for fut in as_completed(futures):
                status, index, payload, wall_s, cpu_s, pid = fut.result()
                _i, item = futures[fut]
                if status == "err":
                    raise ShardError(label, index, describe(item), payload)
                stats.shards.append(ShardInfo(
                    index=index, items=1, wall_s=wall_s, pid=pid,
                    description=describe(item), cpu_s=cpu_s,
                ))
                results[index] = payload
                if on_result is not None:
                    on_result(index, item, payload)
        stats.shards.sort(key=lambda s: s.index)
        return results

    # -- public -------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        label: str = "shard",
        describe: Optional[Callable[[Any], str]] = None,
        on_result: Optional[Callable[[int, Any, Any], None]] = None,
    ) -> Tuple[List[Any], PoolStats]:
        """``[fn(item) for item in items]``, possibly on many cores.

        Returns ``(results_in_input_order, PoolStats)``.  *fn* must be
        a module-level callable and every item picklable whenever the
        pool path may run.  ``on_result(index, item, payload)`` fires in
        the **parent** as each shard completes (completion order under
        the pool, input order inline) — use it for progress output.

        Raises :class:`ShardError` when a shard task itself raises;
        infrastructure failures (no multiprocessing primitives, broken
        pool) silently degrade to the inline path.
        """
        items = list(items)
        describe = describe or (lambda item: repr(item)[:80])
        stats = PoolStats(jobs=self.jobs, effective_jobs=1, mode="inline")
        started = time.perf_counter()
        if self.jobs <= 1 or len(items) <= 1:
            results = self._run_inline(fn, items, stats, describe, on_result)
            stats.wall_s = time.perf_counter() - started
            return results, stats
        try:
            from concurrent.futures.process import BrokenProcessPool
        except ImportError:  # pragma: no cover - ancient stdlib layout
            BrokenProcessPool = OSError  # type: ignore[misc, assignment]
        try:
            stats.effective_jobs = min(self.jobs, len(items))
            stats.mode = f"pool({self.start_method or 'default'})"
            results = self._run_pool(fn, items, stats, label, describe, on_result)
        except (ImportError, OSError, PermissionError, ValueError,
                BrokenProcessPool) as exc:
            # The platform cannot run (or keep) a process pool — e.g.
            # no sem_open in the sandbox, or no usable start method.
            # Shards are deterministic and side-effect free, so a clean
            # inline re-run is always equivalent.
            stats.shards.clear()
            stats.effective_jobs = 1
            stats.mode = f"inline-fallback({type(exc).__name__})"
            results = self._run_inline(fn, items, stats, describe, on_result)
        stats.wall_s = time.perf_counter() - started
        return results, stats
