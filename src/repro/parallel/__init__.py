"""repro.parallel — multi-core sharding of independent simulation runs.

Public surface:

* :class:`ShardedRunner` — map a module-level function over picklable
  items on a process pool (or inline), results in input order.
* :class:`PoolStats` / :class:`ShardInfo` — how the fan-out executed
  (mode, per-shard timing, harvest speedup), JSON-ready for manifests.
* :class:`ShardError` — a child failure with its traceback and the
  owning item's description attached.
* :func:`split_evenly` — contiguous chunking that keeps merged output
  byte-identical to a serial loop.
* :func:`resolve_jobs` — ``--jobs`` semantics (0/None = one per CPU).
* :func:`merge_profiles` / :func:`merge_profile_jsonl` — deterministic
  combination of per-shard span-profile summaries / streamed JSONL
  profiles (re-exported from :mod:`repro.obs`), so sharded profiling
  runs merge byte-identically to a serial run.

Consumers: ``repro.check.fuzzer.fuzz_sharded`` (seed-range sharding),
the ``figure4``/``figure5``/``table2`` sweeps, ablation sections, and
harvest repetitions.  See the "Parallel runs" sections of
docs/checking.md and docs/performance.md.
"""

from repro.obs.prof import merge_profiles
from repro.obs.stream import merge_profile_jsonl
from repro.parallel.runner import (
    START_METHOD_ENV,
    PoolStats,
    ShardedRunner,
    ShardError,
    ShardInfo,
    resolve_jobs,
    split_evenly,
)

__all__ = [
    "START_METHOD_ENV",
    "PoolStats",
    "ShardError",
    "ShardInfo",
    "ShardedRunner",
    "merge_profile_jsonl",
    "merge_profiles",
    "resolve_jobs",
    "split_evenly",
]
