"""Synchronised containers for simulation processes.

* :class:`Store` — a bounded FIFO buffer with blocking put/get.
* :class:`Channel` — an unbounded Store with message-passing aliases,
  the building block of the simulated UDP sockets.
* :class:`Resource` — counted mutual exclusion (e.g. "the CPU").
* :class:`Signal` — a broadcast flag many processes can wait on (e.g.
  "this job has terminated").
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Tuple

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator


class Store:
    """A FIFO buffer of Python objects with blocking put/get events.

    ``put(item)`` returns an event that succeeds once the item is in the
    buffer (immediately unless the store is full); ``get()`` returns an
    event that succeeds with the oldest item once one is available.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("Store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert *item*; the returned event succeeds once inserted."""
        ev = Event(self.sim)
        self._putters.append((ev, item))
        self._service()
        return ev

    def get(self) -> Event:
        """Remove the oldest item; the returned event succeeds with it."""
        ev = Event(self.sim)
        self._getters.append(ev)
        self._service()
        return ev

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``.

        Only valid when no getter is already queued (otherwise it would
        jump the FIFO queue).
        """
        if self._getters:
            raise SimulationError("try_get() while blocking getters are queued")
        if self.items:
            item = self.items.popleft()
            self._service()
            return True, item
        return False, None

    def cancel_get(self, event: Event) -> bool:
        """Withdraw a pending :meth:`get` whose event has not yet fired.

        Returns True if the event was still queued.  Needed by protocol
        code that abandons a receive after a timeout — otherwise the
        stale getter would steal the next item.
        """
        try:
            self._getters.remove(event)
            return True
        except ValueError:
            return False

    def _service(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                ev, item = self._putters.popleft()
                self.items.append(item)
                ev.succeed(None)
                progressed = True
            while self._getters and self.items:
                ev = self._getters.popleft()
                ev.succeed(self.items.popleft())
                progressed = True


class Channel(Store):
    """An unbounded Store with message-passing vocabulary.

    ``send`` never blocks (UDP-like: the network, not the sender, pays
    the cost of queued messages).
    """

    def __init__(self, sim: Simulator) -> None:
        super().__init__(sim, capacity=float("inf"))

    def send(self, message: Any) -> None:
        """Enqueue a message (non-blocking)."""
        self.put(message)

    def recv(self) -> Event:
        """Event that succeeds with the next message."""
        return self.get()


class Resource:
    """Counted resource with FIFO request queue (classic semaphore).

    Used by the baseline *time-sharing* macro policy to model CPU
    multiplexing, and in tests.
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        """Event that succeeds once a unit of the resource is held."""
        ev = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one unit; hands it to the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release() of an idle Resource")
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self.in_use -= 1

    @property
    def queued(self) -> int:
        """Number of requests waiting."""
        return len(self._waiters)


class Signal:
    """A broadcast flag: many processes wait, one ``set()`` wakes them all.

    Once set, further waits succeed immediately (level-triggered).  The
    Clearinghouse uses a Signal to broadcast job termination.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._set = False
        self._value: Any = None
        self._waiters: List[Event] = []

    @property
    def is_set(self) -> bool:
        return self._set

    @property
    def value(self) -> Any:
        """The value passed to :meth:`set` (None before that)."""
        return self._value

    def wait(self) -> Event:
        """Event that succeeds (with the signal's value) once set."""
        ev = Event(self.sim)
        if self._set:
            ev.succeed(self._value)
        else:
            self._waiters.append(ev)
        return ev

    def set(self, value: Any = None) -> None:
        """Set the flag and wake all current waiters."""
        if self._set:
            return
        self._set = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)
