"""Time-series probes for measuring simulated quantities over time."""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import SimulationError
from repro.sim.core import Simulator


class Probe:
    """Records (time, value) samples of a piecewise-constant quantity.

    Typical uses: deque length over time, number of live participants,
    outstanding messages.  Provides the time-average (integral divided by
    elapsed time), which is the right summary for utilisation-style
    metrics.
    """

    def __init__(self, sim: Simulator, name: str = "probe") -> None:
        self.sim = sim
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, value: float) -> None:
        """Sample the quantity at the current simulated time."""
        self.samples.append((self.sim.now, float(value)))

    @property
    def last(self) -> float:
        """Most recent sample value."""
        if not self.samples:
            raise SimulationError(f"probe {self.name!r} has no samples")
        return self.samples[-1][1]

    @property
    def peak(self) -> float:
        """Maximum sampled value."""
        if not self.samples:
            raise SimulationError(f"probe {self.name!r} has no samples")
        return max(v for _, v in self.samples)

    def time_average(self, until: float | None = None) -> float:
        """Time-weighted average, treating the series as a step function.

        The quantity holds each sampled value until the next sample; the
        final value extends to *until* (default: current sim time).
        """
        if not self.samples:
            raise SimulationError(f"probe {self.name!r} has no samples")
        end = self.sim.now if until is None else until
        first_t = self.samples[0][0]
        if end < first_t:
            raise SimulationError("time_average horizon precedes first sample")
        if end == first_t:
            return self.samples[0][1]
        area = 0.0
        for (t0, v0), (t1, _v1) in zip(self.samples, self.samples[1:]):
            area += v0 * (min(t1, end) - t0)
        last_t, last_v = self.samples[-1]
        if end > last_t:
            area += last_v * (end - last_t)
        return area / (end - first_t)

    def _dwell_times(self, until: float | None = None) -> List[Tuple[float, float]]:
        """(value, seconds held) pairs of the step function up to *until*."""
        end = self.sim.now if until is None else until
        out: List[Tuple[float, float]] = []
        for (t0, v0), (t1, _v1) in zip(self.samples, self.samples[1:]):
            dt = min(t1, end) - t0
            if dt > 0:
                out.append((v0, dt))
        last_t, last_v = self.samples[-1]
        if end > last_t:
            out.append((last_v, end - last_t))
        return out

    def percentile(self, q: float, until: float | None = None) -> float:
        """Time-weighted q-quantile (q in [0, 1]) of the step function.

        The value the quantity was at or below for a fraction *q* of the
        observed span — e.g. ``percentile(0.5)`` is the median deque
        depth *by time*, not by sample count, so bursts of rapid samples
        do not skew it.
        """
        if not 0.0 <= q <= 1.0:
            raise SimulationError(f"percentile wants q in [0, 1], got {q!r}")
        if not self.samples:
            raise SimulationError(f"probe {self.name!r} has no samples")
        dwell = self._dwell_times(until)
        if not dwell:
            # Zero observed span (single sample at `until`): the only
            # value ever held is the answer for every quantile.
            return self.samples[-1][1]
        dwell.sort(key=lambda pair: pair[0])
        total = sum(dt for _v, dt in dwell)
        target = q * total
        cum = 0.0
        for v, dt in dwell:
            cum += dt
            if cum >= target:
                return v
        return dwell[-1][0]

    def to_histogram(self, edges, until: float | None = None):
        """Export the step function as a time-weighted
        :class:`~repro.obs.metrics.Histogram` over the given bucket
        *edges* — each dwell interval contributes its value once per
        whole second held (minimum once), approximating "seconds spent
        at each level" in fixed buckets.
        """
        from repro.obs.metrics import Histogram  # local: avoid a hard dep

        if not self.samples:
            raise SimulationError(f"probe {self.name!r} has no samples")
        hist = Histogram(self.name, edges)
        dwell = self._dwell_times(until) or [(self.samples[-1][1], 0.0)]
        for v, dt in dwell:
            for _ in range(max(1, int(dt))):
                hist.observe(v)
        return hist
