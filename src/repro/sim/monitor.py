"""Time-series probes for measuring simulated quantities over time."""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import SimulationError
from repro.sim.core import Simulator


class Probe:
    """Records (time, value) samples of a piecewise-constant quantity.

    Typical uses: deque length over time, number of live participants,
    outstanding messages.  Provides the time-average (integral divided by
    elapsed time), which is the right summary for utilisation-style
    metrics.
    """

    def __init__(self, sim: Simulator, name: str = "probe") -> None:
        self.sim = sim
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, value: float) -> None:
        """Sample the quantity at the current simulated time."""
        self.samples.append((self.sim.now, float(value)))

    @property
    def last(self) -> float:
        """Most recent sample value."""
        if not self.samples:
            raise SimulationError(f"probe {self.name!r} has no samples")
        return self.samples[-1][1]

    @property
    def peak(self) -> float:
        """Maximum sampled value."""
        if not self.samples:
            raise SimulationError(f"probe {self.name!r} has no samples")
        return max(v for _, v in self.samples)

    def time_average(self, until: float | None = None) -> float:
        """Time-weighted average, treating the series as a step function.

        The quantity holds each sampled value until the next sample; the
        final value extends to *until* (default: current sim time).
        """
        if not self.samples:
            raise SimulationError(f"probe {self.name!r} has no samples")
        end = self.sim.now if until is None else until
        first_t = self.samples[0][0]
        if end < first_t:
            raise SimulationError("time_average horizon precedes first sample")
        if end == first_t:
            return self.samples[0][1]
        area = 0.0
        for (t0, v0), (t1, _v1) in zip(self.samples, self.samples[1:]):
            area += v0 * (min(t1, end) - t0)
        last_t, last_v = self.samples[-1]
        if end > last_t:
            area += last_v * (end - last_t)
        return area / (end - first_t)
