"""Core of the discrete-event simulation kernel.

The design follows the process-interaction paradigm: simulation *processes*
are Python generators that ``yield`` :class:`Event` objects to wait on
them.  The :class:`Simulator` owns the clock and a priority queue of
triggered events; processing an event runs its callbacks, which resume the
processes waiting on it.

Determinism: events scheduled for the same time are processed in
(priority, insertion-order) order, so runs are exactly reproducible.

Schedule-space exploration: the insertion-order tie-break is only *one*
legal interleaving of same-time events.  Constructing the simulator with
``tiebreak_rng`` (a seeded ``random.Random``) replaces the insertion-order
key of NORMAL-priority events with a random one, yielding a different —
but still reproducible — interleaving per seed.  The schedule fuzzer in
:mod:`repro.check` uses this to search for interleaving bugs; URGENT
events keep strict insertion order because the kernel relies on it for
its own bookkeeping.

Performance notes (this module is the hottest code in the repository —
every message, timeout, and task execution passes through it):

* Queue entries are plain tuples ``(time, priority, seq, event)``; the
  constant ``0.0`` fuzzing sub-key of earlier versions is only
  materialised when a ``tiebreak_rng`` is installed (entries then are
  ``(time, priority, sub, seq, event)``).  Both shapes can coexist:
  a comparison only reaches index 2 when time *and* priority are equal,
  and priority determines the shape, so mismatched-shape tuples are
  always decided by index 0 or 1.
* The queue runs in one of three modes.  While events are only being
  scheduled (``_MODE_LAZY``) it is an unsorted append-only list.  The
  first pop sorts it once, descending, and switches to ``_MODE_DRAIN``
  where each pop is an O(1) ``list.pop()`` from the end.  A push while
  draining heapifies the remainder and falls back to a classic binary
  heap (``_MODE_HEAP``).  All three modes pop in exactly the same total
  order as a plain heap — entries are totally ordered by their unique
  sequence numbers — so determinism is unaffected; the mode machinery
  only removes per-event sift costs for the common schedule-then-drain
  pattern.
* :class:`Timeout` events start with a shared immutable empty-callbacks
  marker instead of a fresh list; :meth:`Event.subscribe` materialises a
  real list on first use.  ``processed`` remains ``callbacks is None``.
"""

from __future__ import annotations

from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Generator, List, Optional

from repro.errors import SimulationError

#: Event priorities. URGENT events at a given time are processed before
#: NORMAL ones; insertion order breaks remaining ties.
URGENT = 0
NORMAL = 1

_PENDING = object()

#: Shared "no callbacks yet" marker for events created on the hot path.
#: Immutable and falsy: the kernel skips the callback loop, and
#: ``subscribe`` swaps in a real list the first time one is needed.
_NO_CALLBACKS: tuple = ()

#: Event-queue modes (see module docstring).
_MODE_LAZY = 0   # append-only; nothing popped yet
_MODE_DRAIN = 1  # sorted descending; pop from the end
_MODE_HEAP = 2   # classic heapq

_INF = float("inf")


class Interrupt(Exception):
    """Delivered into a process by :meth:`Process.interrupt`.

    The macro-level scheduler uses this to model a workstation owner
    reclaiming their machine: the worker process is interrupted at its
    next yield point and must migrate its tasks before dying.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *pending* until someone calls :meth:`succeed` or
    :meth:`fail` (which also enqueues it), *triggered* once it has a
    value, and *processed* after the simulator has run its callbacks.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callbacks to run when processed; ``None`` once processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set when a failure has been delivered to a waiter; prevents the
        #: kernel from escalating the failure to the whole run.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True/False after triggering; None while pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully and schedule its processing."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        """Trigger the event with a failure; waiters get the exception thrown."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay, priority)
        return self

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Run *callback(event)* when this event is processed.

        If the event was already processed, the callback is delivered on a
        fresh zero-delay event so that it still runs from the event loop
        (never synchronously from the subscriber's stack).
        """
        callbacks = self.callbacks
        if callbacks is None:
            self.sim.call_soon(lambda: callback(self))
        elif callbacks is _NO_CALLBACKS:
            self.callbacks = [callback]
        else:
            callbacks.append(callback)

    def unsubscribe(self, callback: Callable[["Event"], None]) -> bool:
        """Remove a previously-subscribed callback; True if it was present."""
        callbacks = self.callbacks
        if callbacks is None or callbacks is _NO_CALLBACKS:
            return False
        try:
            callbacks.remove(callback)
            return True
        except ValueError:
            return False

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        self.sim = sim
        self.callbacks = _NO_CALLBACKS
        self._value = value
        self._ok = True
        self.defused = False
        sim._enqueue(self, delay, NORMAL)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event: it succeeds with the generator's
    return value, or fails with its uncaught exception, when the
    generator finishes.  Other processes can therefore ``yield proc`` to
    join it.
    """

    __slots__ = ("_gen", "_target", "_started", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: Optional[str] = None) -> None:
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise SimulationError(f"Process requires a generator, got {gen!r}")
        super().__init__(sim)
        self._gen: Optional[Generator] = gen
        self._target: Optional[Event] = None
        #: False until the generator has been resumed at least once.
        self._started = False
        self.name = name or getattr(gen, "__name__", "process")
        # Kick the generator off from the event loop, not synchronously.
        # The boot event is tracked as the current wait target so that an
        # interrupt landing before the first resume detaches it cleanly.
        boot = Event(sim)
        boot.callbacks.append(self._resume)  # type: ignore[union-attr]
        boot.succeed(None, priority=URGENT)
        self._target = boot

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._gen is not None

    def interrupt(self, cause: Any = None) -> bool:
        """Throw :class:`Interrupt` into the process at its next resume.

        Returns False (and does nothing) if the process already finished —
        a benign race when, e.g., a worker terminates naturally just as
        its owner reclaims the workstation.
        """
        if not self.is_alive:
            return False
        if self.sim._active is self:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever we were waiting on so we are not resumed twice.
        if self._target is not None:
            self._target.unsubscribe(self._resume)
            self._target = None
        kick = Event(self.sim)
        kick.callbacks.append(self._resume)  # type: ignore[union-attr]
        kick._ok = False
        kick._value = Interrupt(cause)
        kick.defused = True  # the interrupt is delivered, never escalated
        self.sim._enqueue(kick, 0.0, URGENT)
        return True

    # -- internal ---------------------------------------------------------

    def _resume(self, event: Event) -> None:
        gen = self._gen
        if gen is None:  # finished before a queued interrupt arrived
            event.defused = True
            return
        self._target = None
        self.sim._active = self
        try:
            if event._ok:
                self._started = True
                target = gen.send(event._value)
            else:
                event.defused = True
                if not self._started:
                    # The generator never started: throwing would raise at
                    # its definition line instead of delivering in-band.
                    # Treat the interrupt as a quiet cancellation.
                    self._gen = None
                    self.sim._active = None
                    self.succeed(None, priority=URGENT)
                    return
                target = gen.throw(event._value)
        except StopIteration as stop:
            self._gen = None
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            self._gen = None
            self.fail(exc, priority=URGENT)
            return
        finally:
            self.sim._active = None

        if not isinstance(target, Event):
            # Deliver the misuse as an error inside the generator so the
            # offending process gets a useful traceback.
            bad = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
            err = Event(self.sim)
            err.callbacks.append(self._resume)  # type: ignore[union-attr]
            err._ok = False
            err._value = bad
            err.defused = True
            self.sim._enqueue(err, 0.0, URGENT)
            return
        if target.sim is not self.sim:
            raise SimulationError("cannot wait on an event from another Simulator")
        self._target = target
        target.subscribe(self._resume)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """The event loop: a clock plus a priority queue of triggered events."""

    def __init__(self, tiebreak_rng: Optional[Any] = None) -> None:
        #: Current simulated time in seconds.
        self.now: float = 0.0
        self._heap: List = []
        self._mode = _MODE_LAZY
        self._seq = 0
        self._active: Optional[Process] = None
        #: Count of processed events (a cheap progress/perf metric).
        #: During ``run()`` the counter is updated in batches; it is exact
        #: whenever user code runs (callbacks, monitor) and after run().
        self.events_processed = 0
        #: Optional seeded RNG perturbing same-time NORMAL-event order
        #: (schedule fuzzing).  None keeps strict insertion order.
        #: Install it at construction time, before scheduling anything.
        self.tiebreak_rng = tiebreak_rng
        #: Optional hook ``monitor(sim)`` called every
        #: :attr:`monitor_interval` processed events — used by the
        #: invariant checker for online (mid-run) assertions.
        self.monitor: Optional[Callable[["Simulator"], None]] = None
        self.monitor_interval: int = 4096

    # -- construction helpers ---------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after *delay* simulated seconds.

        This is the kernel's single hottest entry point (every poll,
        backoff, and cycle charge is a timeout), so the event
        construction and enqueue are inlined here rather than routed
        through ``Timeout.__init__``/:meth:`_enqueue`.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        ev = Timeout.__new__(Timeout)
        ev.sim = self
        ev.callbacks = _NO_CALLBACKS
        ev._value = value
        ev._ok = True
        ev.defused = False
        seq = self._seq = self._seq + 1
        rng = self.tiebreak_rng
        if rng is None:
            entry = (self.now + delay, NORMAL, seq, ev)
        else:
            entry = (self.now + delay, NORMAL, rng.random(), seq, ev)
        mode = self._mode
        heap = self._heap
        if mode == _MODE_HEAP:
            _heappush(heap, entry)
        elif mode == _MODE_LAZY:
            heap.append(entry)
        else:
            heap.append(entry)
            _heapify(heap)
            self._mode = _MODE_HEAP
        return ev

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from a generator; returns the Process event."""
        return Process(self, gen, name)

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run *fn* from the event loop at the current time (zero delay)."""
        ev = Event(self)
        ev.callbacks.append(lambda _ev: fn())  # type: ignore[union-attr]
        ev.succeed(None, priority=URGENT)

    # -- scheduling & execution -------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        seq = self._seq = self._seq + 1
        rng = self.tiebreak_rng
        if rng is not None and priority == NORMAL:
            # Schedule fuzzing: same-time NORMAL events are processed in
            # a seed-determined shuffle instead of insertion order.
            entry = (self.now + delay, priority, rng.random(), seq, event)
        else:
            entry = (self.now + delay, priority, seq, event)
        mode = self._mode
        if mode == _MODE_HEAP:
            _heappush(self._heap, entry)
        elif mode == _MODE_LAZY:
            self._heap.append(entry)
        else:
            # Push while draining: re-establish the heap invariant over
            # the (descending-sorted) remainder and fall back to heapq.
            self._heap.append(entry)
            _heapify(self._heap)
            self._mode = _MODE_HEAP

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        heap = self._heap
        if not heap:
            return _INF
        mode = self._mode
        if mode == _MODE_HEAP:
            return heap[0][0]
        if mode == _MODE_LAZY:
            heap.sort(reverse=True)
            self._mode = _MODE_DRAIN
        return heap[-1][0]

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        heap = self._heap
        if not heap:
            raise SimulationError("step() on an empty schedule")
        mode = self._mode
        if mode == _MODE_HEAP:
            entry = _heappop(heap)
        else:
            if mode == _MODE_LAZY:
                heap.sort(reverse=True)
                self._mode = _MODE_DRAIN
            entry = heap.pop()
        time = entry[0]
        if time < self.now:
            raise SimulationError("time went backwards (kernel bug)")
        self.now = time
        event = entry[-1]
        callbacks = event.callbacks
        event.callbacks = None
        self.events_processed += 1
        if callbacks:
            for callback in callbacks:
                callback(event)
        if event._ok is False and not event.defused:
            # A failure nobody waited on: crash the run loudly rather than
            # silently losing the error.
            raise event._value
        if self.monitor is not None and self.events_processed % self.monitor_interval == 0:
            self.monitor(self)

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        Args:
            until: ``None`` runs until no events remain; a number runs
                until the clock would pass that time (the clock is then
                set to it); an :class:`Event` runs until that event has
                been processed and returns its value (re-raising its
                failure, if any).
        """
        if until is not None:
            if isinstance(until, Event):
                target = until
                if not target.processed:
                    done = [False]
                    target.subscribe(lambda _ev: done.__setitem__(0, True))
                    while not done[0]:
                        if not self._heap:
                            raise SimulationError(
                                "simulation ran out of events before the awaited "
                                "event triggered (deadlock?)"
                            )
                        self.step()
                if target._ok is False:
                    target.defused = True
                    raise target._value
                return target._value
            horizon = float(until)
            if horizon < self.now:
                raise SimulationError(f"run(until={horizon}) is in the past (now={self.now})")
            while self._heap and self.peek() <= horizon:
                self.step()
            self.now = horizon
            return None
        if self.monitor is not None:
            # The monitor hook needs an exact per-event counter; take the
            # plain stepping path.
            while self._heap:
                self.step()
            return None
        # Drain-to-empty fast path.  Identical event order and semantics
        # to step() in a loop, with the per-event costs batched: the
        # clock and the processed-events counter are written back only
        # when user code can observe them (callbacks, exceptions, exit),
        # and the pop mode is kept in a local that is refreshed whenever
        # callbacks ran (only user code can flip it).
        heap = self._heap
        mode = self._mode
        now = self.now
        n = 0
        try:
            while heap:
                if mode == _MODE_HEAP:
                    entry = _heappop(heap)
                elif mode == _MODE_DRAIN:
                    entry = heap.pop()
                else:
                    heap.sort(reverse=True)
                    mode = self._mode = _MODE_DRAIN
                    entry = heap.pop()
                now = entry[0]
                event = entry[-1]
                n += 1
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    self.now = now
                    self.events_processed += n
                    n = 0
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False and not event.defused:
                        raise event._value
                    mode = self._mode
                elif event._ok is False and not event.defused:
                    raise event._value
        finally:
            self.now = now
            self.events_processed += n
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.6f} queued={len(self._heap)}>"
