"""Core of the discrete-event simulation kernel.

The design follows the process-interaction paradigm: simulation *processes*
are Python generators that ``yield`` :class:`Event` objects to wait on
them.  The :class:`Simulator` owns the clock and a priority queue of
triggered events; processing an event runs its callbacks, which resume the
processes waiting on it.

Determinism: events scheduled for the same time are processed in
(priority, insertion-order) order, so runs are exactly reproducible.

Schedule-space exploration: the insertion-order tie-break is only *one*
legal interleaving of same-time events.  Constructing the simulator with
``tiebreak_rng`` (a seeded ``random.Random``) replaces the insertion-order
key of NORMAL-priority events with a random one, yielding a different —
but still reproducible — interleaving per seed.  The schedule fuzzer in
:mod:`repro.check` uses this to search for interleaving bugs; URGENT
events keep strict insertion order because the kernel relies on it for
its own bookkeeping.

Queue backends (this module is the hottest code in the repository —
every message, timeout, and task execution passes through it):

``Simulator(queue=...)`` selects the event-queue implementation:

* ``"heap"`` — the reference implementation: one priority queue of
  ``(time, priority, seq, event)`` tuples (``(time, priority, sub, seq,
  event)`` when a ``tiebreak_rng`` is installed) running in one of three
  modes.  While events are only being scheduled (``_MODE_LAZY``) it is
  an unsorted append-only list.  The first pop sorts it once, descending,
  and switches to ``_MODE_DRAIN`` where each pop is an O(1) ``list.pop()``
  from the end.  A push while draining heapifies the remainder and falls
  back to a classic binary heap (``_MODE_HEAP``).
* ``"calendar"`` — the accelerated backend: a calendar/bucket queue that
  exploits the timeout quantization of the scheduled workload (steal
  backoffs, heartbeats, and retry timers recur at a handful of deltas, so
  many events share exact trigger times).  Events are bucketed by exact
  float timestamp in a dict; a small heap of *distinct* times orders the
  buckets.  Within a bucket, URGENT events drain FIFO first, then NORMAL
  events FIFO — which *is* (priority, seq) order, so no per-event tuples
  or comparisons are needed at all.  With a ``tiebreak_rng`` the NORMAL
  half of each bucket stores ``(sub, seq, event)`` tuples and is sorted
  once when the bucket is first drained (mid-drain arrivals are bisected
  into the remaining tail), reproducing the heap's shuffled order key
  for key.  A bucket holding a single NORMAL event is represented by the
  bare event (no list allocations), the common case when trigger times
  are mostly unique.
* ``"auto"`` (default) — currently the calendar queue.

Both backends pop events in exactly the same total order — the property
tests in ``tests/sim/test_queue_equivalence.py`` drive both against a
plain-heapq oracle, and the schedule fuzzer asserts byte-identical
traces for full cluster runs (see docs/performance.md, "Queue
backends").

Other hot-path machinery:

* :class:`Timeout` events start with a shared immutable empty-callbacks
  marker instead of a fresh list; :meth:`Event.subscribe` materialises a
  real list on first use.  ``processed`` remains ``callbacks is None``.
* The calendar backend recycles :class:`Timeout` objects through a
  per-simulator free list: after a waited-on timeout has fired and its
  callbacks have run, ``sys.getrefcount`` proves no caller still holds a
  reference, and the object is reused by a later :meth:`Simulator.timeout`
  call instead of allocating a fresh one.
* :meth:`Simulator.call_soon` and the already-processed branch of
  :meth:`Event.subscribe` ride pooled slotted one-shot events
  (:class:`_SoonEvent`) — no per-call lambda, list, or garbage event.
* ``run()`` — in all of its forms (to exhaustion, to a horizon, to an
  awaited event) — uses a batched drain loop that writes the clock and
  the processed-events counter back only when user code can observe
  them, instead of dispatching ``peek()``/``step()`` per event.
"""

from __future__ import annotations

import sys
from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from bisect import insort as _insort
from typing import Any, Callable, Generator, List, Optional

from repro.errors import SimulationError

#: Event priorities. URGENT events at a given time are processed before
#: NORMAL ones; insertion order breaks remaining ties.
URGENT = 0
NORMAL = 1

_PENDING = object()

#: Shared "no callbacks yet" marker for events created on the hot path.
#: Immutable and falsy: the kernel skips the callback loop, and
#: ``subscribe`` swaps in a real list the first time one is needed.
_NO_CALLBACKS: tuple = ()

#: Event-queue modes of the reference ("heap") backend (see module
#: docstring).
_MODE_LAZY = 0   # append-only; nothing popped yet
_MODE_DRAIN = 1  # sorted descending; pop from the end
_MODE_HEAP = 2   # classic heapq

_INF = float("inf")

#: Recognised queue-backend names for ``Simulator(queue=...)``.
QUEUE_BACKENDS = ("auto", "heap", "calendar")

#: Free-list bounds: per-simulator pools never grow past these, so a
#: burst of events cannot pin memory forever.
_TIMEOUT_POOL_MAX = 1024
_SOON_POOL_MAX = 64

#: ``sys.getrefcount`` where available (CPython); the fallback returns a
#: count that never matches, disabling event recycling rather than
#: risking a live object in the pool.
_refcount = getattr(sys, "getrefcount", lambda _obj: -1)

_DEADLOCK_MSG = (
    "simulation ran out of events before the awaited event triggered "
    "(deadlock?)"
)


def _resolve_queue(queue: str) -> str:
    """Map a ``Simulator(queue=...)`` argument to a concrete backend."""
    if queue == "auto":
        return "calendar"
    if queue in ("heap", "calendar"):
        return queue
    raise SimulationError(
        f"unknown queue backend {queue!r}; expected one of {QUEUE_BACKENDS}"
    )


class Interrupt(Exception):
    """Delivered into a process by :meth:`Process.interrupt`.

    The macro-level scheduler uses this to model a workstation owner
    reclaiming their machine: the worker process is interrupted at its
    next yield point and must migrate its tasks before dying.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *pending* until someone calls :meth:`succeed` or
    :meth:`fail` (which also enqueues it), *triggered* once it has a
    value, and *processed* after the simulator has run its callbacks.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callbacks to run when processed; ``None`` once processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set when a failure has been delivered to a waiter; prevents the
        #: kernel from escalating the failure to the whole run.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """True/False after triggering; None while pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully and schedule its processing."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        """Trigger the event with a failure; waiters get the exception thrown."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay, priority)
        return self

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Run *callback(event)* when this event is processed.

        If the event was already processed, the callback is delivered on a
        fresh zero-delay event so that it still runs from the event loop
        (never synchronously from the subscriber's stack).
        """
        callbacks = self.callbacks
        if callbacks is None:
            self.sim.call_soon(callback, self)
        elif callbacks is _NO_CALLBACKS:
            self.callbacks = [callback]
        else:
            callbacks.append(callback)

    def unsubscribe(self, callback: Callable[["Event"], None]) -> bool:
        """Remove a previously-subscribed callback; True if it was present."""
        callbacks = self.callbacks
        if callbacks is None or callbacks is _NO_CALLBACKS:
            return False
        try:
            callbacks.remove(callback)
            return True
        except ValueError:
            return False

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        self.sim = sim
        self.callbacks = _NO_CALLBACKS
        self._value = value
        self._ok = True
        self.defused = False
        sim._enqueue(self, delay, NORMAL)


_NO_ARG = object()


def _run_soon(ev: "_SoonEvent") -> None:
    """Shared callback of every :class:`_SoonEvent`: invoke the stored
    function, then return the event to its simulator's pool (a reuse
    mid-callback reinitialises every field before the kernel looks at
    the event again, so recycling here is safe)."""
    fn = ev.fn
    arg = ev.arg
    ev.fn = ev.arg = None
    pool = ev.sim._soon_pool
    if len(pool) < _SOON_POOL_MAX:
        pool.append(ev)
    if arg is _NO_ARG:
        fn()
    else:
        fn(arg)


class _SoonEvent(Event):
    """Pooled one-shot carrier behind :meth:`Simulator.call_soon`.

    Never exposed outside the kernel: its ``callbacks`` is the shared
    :data:`_SOON_CBS` tuple (the kernel only iterates callbacks and
    replaces the attribute with None), so scheduling a callback
    allocates no list and no closure — and usually no event either,
    thanks to the per-simulator free list.
    """

    __slots__ = ("fn", "arg")


_SOON_CBS = (_run_soon,)


class _Flag:
    """Slotted done-marker for ``run(until=event)`` — replaces the old
    per-call ``[False]`` list plus closure."""

    __slots__ = ("fired",)

    def __init__(self) -> None:
        self.fired = False

    def __call__(self, _ev: Event) -> None:
        self.fired = True


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event: it succeeds with the generator's
    return value, or fails with its uncaught exception, when the
    generator finishes.  Other processes can therefore ``yield proc`` to
    join it.
    """

    __slots__ = ("_gen", "_target", "_started", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: Optional[str] = None) -> None:
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise SimulationError(f"Process requires a generator, got {gen!r}")
        super().__init__(sim)
        self._gen: Optional[Generator] = gen
        self._target: Optional[Event] = None
        #: False until the generator has been resumed at least once.
        self._started = False
        self.name = name or getattr(gen, "__name__", "process")
        # Kick the generator off from the event loop, not synchronously.
        # The boot event is tracked as the current wait target so that an
        # interrupt landing before the first resume detaches it cleanly.
        boot = Event(sim)
        boot.callbacks.append(self._resume)  # type: ignore[union-attr]
        boot.succeed(None, priority=URGENT)
        self._target = boot

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._gen is not None

    def interrupt(self, cause: Any = None) -> bool:
        """Throw :class:`Interrupt` into the process at its next resume.

        Returns False (and does nothing) if the process already finished —
        a benign race when, e.g., a worker terminates naturally just as
        its owner reclaims the workstation.
        """
        if not self.is_alive:
            return False
        if self.sim._active is self:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever we were waiting on so we are not resumed twice.
        if self._target is not None:
            self._target.unsubscribe(self._resume)
            self._target = None
        kick = Event(self.sim)
        kick.callbacks.append(self._resume)  # type: ignore[union-attr]
        kick._ok = False
        kick._value = Interrupt(cause)
        kick.defused = True  # the interrupt is delivered, never escalated
        self.sim._enqueue(kick, 0.0, URGENT)
        return True

    # -- internal ---------------------------------------------------------

    def _resume(self, event: Event) -> None:
        gen = self._gen
        if gen is None:  # finished before a queued interrupt arrived
            event.defused = True
            return
        self._target = None
        self.sim._active = self
        try:
            if event._ok:
                self._started = True
                target = gen.send(event._value)
            else:
                event.defused = True
                if not self._started:
                    # The generator never started: throwing would raise at
                    # its definition line instead of delivering in-band.
                    # Treat the interrupt as a quiet cancellation.
                    self._gen = None
                    self.sim._active = None
                    self.succeed(None, priority=URGENT)
                    return
                target = gen.throw(event._value)
        except StopIteration as stop:
            self._gen = None
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            self._gen = None
            self.fail(exc, priority=URGENT)
            return
        finally:
            self.sim._active = None

        if not isinstance(target, Event):
            # Deliver the misuse as an error inside the generator so the
            # offending process gets a useful traceback.
            bad = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
            err = Event(self.sim)
            err.callbacks.append(self._resume)  # type: ignore[union-attr]
            err._ok = False
            err._value = bad
            err.defused = True
            self.sim._enqueue(err, 0.0, URGENT)
            return
        if target.sim is not self.sim:
            raise SimulationError("cannot wait on an event from another Simulator")
        self._target = target
        target.subscribe(self._resume)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """The event loop: a clock plus a priority queue of triggered events.

    Args:
        tiebreak_rng: optional seeded RNG perturbing same-time
            NORMAL-event order (schedule fuzzing); install it at
            construction time, before scheduling anything.
        queue: event-queue backend — ``"heap"`` (the reference
            three-mode queue), ``"calendar"`` (the accelerated bucket
            queue), or ``"auto"`` (currently the calendar queue).  Both
            backends process events in exactly the same total order; see
            the module docstring and docs/performance.md.
    """

    def __new__(cls, tiebreak_rng: Optional[Any] = None, queue: str = "auto") -> "Simulator":
        if cls is Simulator and _resolve_queue(queue) == "calendar":
            cls = CalendarSimulator
        return object.__new__(cls)

    def __init__(self, tiebreak_rng: Optional[Any] = None, queue: str = "auto") -> None:
        #: Resolved backend name ("heap" or "calendar").
        self.queue_backend = "heap"
        #: Current simulated time in seconds.
        self.now: float = 0.0
        self._heap: List = []
        self._mode = _MODE_LAZY
        self._seq = 0
        self._active: Optional[Process] = None
        #: Count of processed events (a cheap progress/perf metric).
        #: During ``run()`` the counter is updated in batches; it is exact
        #: whenever user code runs (callbacks, monitor) and after run().
        self.events_processed = 0
        #: Optional seeded RNG perturbing same-time NORMAL-event order
        #: (schedule fuzzing).  None keeps strict insertion order.
        #: Install it at construction time, before scheduling anything.
        self.tiebreak_rng = tiebreak_rng
        #: Optional hook ``monitor(sim)`` called every
        #: :attr:`monitor_interval` processed events — used by the
        #: invariant checker for online (mid-run) assertions.
        self.monitor: Optional[Callable[["Simulator"], None]] = None
        self.monitor_interval: int = 4096
        #: Free list of :class:`_SoonEvent` carriers (see call_soon).
        self._soon_pool: List[_SoonEvent] = []

    # -- construction helpers ---------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after *delay* simulated seconds.

        This is the kernel's single hottest entry point (every poll,
        backoff, and cycle charge is a timeout), so the event
        construction and enqueue are inlined here rather than routed
        through ``Timeout.__init__``/:meth:`_enqueue`.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        ev = Timeout.__new__(Timeout)
        ev.sim = self
        ev.callbacks = _NO_CALLBACKS
        ev._value = value
        ev._ok = True
        ev.defused = False
        seq = self._seq = self._seq + 1
        rng = self.tiebreak_rng
        if rng is None:
            entry = (self.now + delay, NORMAL, seq, ev)
        else:
            entry = (self.now + delay, NORMAL, rng.random(), seq, ev)
        mode = self._mode
        heap = self._heap
        if mode == _MODE_HEAP:
            _heappush(heap, entry)
        elif mode == _MODE_LAZY:
            heap.append(entry)
        else:
            heap.append(entry)
            _heapify(heap)
            self._mode = _MODE_HEAP
        return ev

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from a generator; returns the Process event."""
        return Process(self, gen, name)

    def call_soon(self, fn: Callable[..., None], arg: Any = _NO_ARG) -> None:
        """Run *fn* (or *fn(arg)*) from the event loop at the current time.

        Rides a pooled slotted one-shot event: no per-call lambda, list,
        or garbage event object (see :class:`_SoonEvent`).
        """
        pool = self._soon_pool
        if pool:
            ev = pool.pop()
        else:
            ev = _SoonEvent.__new__(_SoonEvent)
            ev.sim = self
        ev.callbacks = _SOON_CBS
        ev._value = None
        ev._ok = True
        ev.defused = False
        ev.fn = fn
        ev.arg = arg
        self._enqueue(ev, 0.0, URGENT)

    # -- scheduling & execution -------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        seq = self._seq = self._seq + 1
        rng = self.tiebreak_rng
        if rng is not None and priority == NORMAL:
            # Schedule fuzzing: same-time NORMAL events are processed in
            # a seed-determined shuffle instead of insertion order.
            entry = (self.now + delay, priority, rng.random(), seq, event)
        else:
            entry = (self.now + delay, priority, seq, event)
        mode = self._mode
        if mode == _MODE_HEAP:
            _heappush(self._heap, entry)
        elif mode == _MODE_LAZY:
            self._heap.append(entry)
        else:
            # Push while draining: re-establish the heap invariant over
            # the (descending-sorted) remainder and fall back to heapq.
            self._heap.append(entry)
            _heapify(self._heap)
            self._mode = _MODE_HEAP

    def _tail_token(self, event: Event) -> Any:
        """Opaque token for :meth:`_at_tail` (delivery coalescing)."""
        return self._seq

    def _at_tail(self, event: Event, token: Any) -> bool:
        """True iff *event* is still the queue tail among entries sharing
        its (time, NORMAL) key — i.e. a new enqueue at that key would
        land directly after it, so batching the two preserves the exact
        total order.  The reference backend proves it conservatively: no
        event of any kind has been enqueued since the token was taken.
        """
        return self.tiebreak_rng is None and self._seq == token

    def _has_work(self) -> bool:
        """True while at least one scheduled event remains."""
        return bool(self._heap)

    def _queue_len(self) -> int:
        return len(self._heap)

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        heap = self._heap
        if not heap:
            return _INF
        mode = self._mode
        if mode == _MODE_HEAP:
            return heap[0][0]
        if mode == _MODE_LAZY:
            heap.sort(reverse=True)
            self._mode = _MODE_DRAIN
        return heap[-1][0]

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        heap = self._heap
        if not heap:
            raise SimulationError("step() on an empty schedule")
        mode = self._mode
        if mode == _MODE_HEAP:
            entry = _heappop(heap)
        else:
            if mode == _MODE_LAZY:
                heap.sort(reverse=True)
                self._mode = _MODE_DRAIN
            entry = heap.pop()
        time = entry[0]
        if time < self.now:
            raise SimulationError("time went backwards (kernel bug)")
        self.now = time
        event = entry[-1]
        callbacks = event.callbacks
        event.callbacks = None
        self.events_processed += 1
        if callbacks:
            for callback in callbacks:
                callback(event)
        if event._ok is False and not event.defused:
            # A failure nobody waited on: crash the run loudly rather than
            # silently losing the error.
            raise event._value
        if self.monitor is not None and self.events_processed % self.monitor_interval == 0:
            self.monitor(self)

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        Args:
            until: ``None`` runs until no events remain; a number runs
                until the clock would pass that time (the clock is then
                set to it); an :class:`Event` runs until that event has
                been processed and returns its value (re-raising its
                failure, if any).

        All three forms take a batched drain loop when no monitor hook
        is installed: identical event order and semantics to ``step()``
        in a loop, with the per-event clock/counter writes deferred to
        the points where user code can observe them.  A monitor needs an
        exact per-event counter, so its presence selects the plain
        stepping path.
        """
        if until is not None:
            if isinstance(until, Event):
                target = until
                if not target.processed:
                    flag = _Flag()
                    target.subscribe(flag)
                    if self.monitor is not None:
                        while not flag.fired:
                            if not self._has_work():
                                raise SimulationError(_DEADLOCK_MSG)
                            self.step()
                    else:
                        self._drain(_INF, flag)
                        if not flag.fired:
                            raise SimulationError(_DEADLOCK_MSG)
                if target._ok is False:
                    target.defused = True
                    raise target._value
                return target._value
            horizon = float(until)
            if horizon < self.now:
                raise SimulationError(f"run(until={horizon}) is in the past (now={self.now})")
            if self.monitor is not None:
                while self._has_work() and self.peek() <= horizon:
                    self.step()
            else:
                self._drain(horizon, None)
            self.now = horizon
            return None
        if self.monitor is not None:
            # The monitor hook needs an exact per-event counter; take the
            # plain stepping path.
            while self._has_work():
                self.step()
            return None
        self._drain(_INF, None)
        return None

    def _drain(self, limit: float, stop: Optional[_Flag]) -> None:
        """Batched event loop: process events with time <= *limit* until
        the queue empties or *stop* fires (checked after callbacks, the
        only place it can flip).  Identical event order and semantics to
        ``step()`` in a loop: the clock and the processed-events counter
        are written back only when user code can observe them (callbacks,
        exceptions, exit), and the pop mode is kept in a local that is
        refreshed whenever callbacks ran (only user code can flip it).
        """
        heap = self._heap
        mode = self._mode
        now = self.now
        n = 0
        try:
            while heap:
                if mode == _MODE_HEAP:
                    if heap[0][0] > limit:
                        break
                    entry = _heappop(heap)
                elif mode == _MODE_DRAIN:
                    if heap[-1][0] > limit:
                        break
                    entry = heap.pop()
                else:
                    heap.sort(reverse=True)
                    mode = self._mode = _MODE_DRAIN
                    continue
                now = entry[0]
                event = entry[-1]
                n += 1
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    self.now = now
                    self.events_processed += n
                    n = 0
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False and not event.defused:
                        raise event._value
                    if stop is not None and stop.fired:
                        return
                    mode = self._mode
                elif event._ok is False and not event.defused:
                    raise event._value
        finally:
            self.now = now
            self.events_processed += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} now={self.now:.6f} "
                f"queued={self._queue_len()}>")


class CalendarSimulator(Simulator):
    """Calendar/bucket-queue backend (``Simulator(queue="calendar")``).

    Events are bucketed by exact trigger time in ``_buckets``; a heap of
    distinct times (``_times``) orders the buckets.  Bucket shapes:

    * a bare :class:`Event` — a single NORMAL event, no ``tiebreak_rng``
      (the dominant case when trigger times are mostly unique); promoted
      to a full bucket if a second event lands on the same time;
    * a list ``[urgent, normal, u_i, n_i, sorted]`` — ``urgent`` (a list
      or None) drains FIFO first, then ``normal``; ``u_i``/``n_i`` are
      drain cursors so mid-drain arrivals at the same time are picked up
      in exactly the (priority, seq) order the reference backend would
      produce.  With a ``tiebreak_rng``, ``normal`` holds ``(sub, seq,
      event)`` tuples, is sorted when first drained (``sorted`` flag),
      and mid-drain arrivals are bisected into the remaining tail.

    A drained bucket is deleted only once exhausted, so same-time
    arrivals during its callbacks always join the live bucket; the
    one-bucket-at-a-time invariant (``_cur``) holds because the clock
    never moves backwards.
    """

    def __init__(self, tiebreak_rng: Optional[Any] = None, queue: str = "calendar") -> None:
        super().__init__(tiebreak_rng, queue="heap")
        self.queue_backend = "calendar"
        self._buckets: dict = {}
        self._times: List[float] = []
        #: Bucket currently being drained (list shape), or None.
        self._cur: Optional[list] = None
        self._cur_time = 0.0
        #: Free list of recycled Timeout objects (see module docstring).
        self._timeout_pool: List[Timeout] = []

    # -- scheduling --------------------------------------------------------

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """See :meth:`Simulator.timeout`; calendar fast path."""
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        if self.tiebreak_rng is not None:
            ev = Timeout.__new__(Timeout)
            ev.sim = self
            ev.callbacks = _NO_CALLBACKS
            ev._value = value
            ev._ok = True
            ev.defused = False
            self._enqueue(ev, delay, NORMAL)
            return ev
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = _NO_CALLBACKS
            ev._value = value
            ev.defused = False
        else:
            ev = Timeout.__new__(Timeout)
            ev.sim = self
            ev.callbacks = _NO_CALLBACKS
            ev._value = value
            ev._ok = True
            ev.defused = False
        t = self.now + delay
        buckets = self._buckets
        b = buckets.get(t)
        if b is None:
            buckets[t] = ev
            _heappush(self._times, t)
        elif type(b) is list:
            b[1].append(ev)
        else:
            buckets[t] = [None, [b, ev], 0, 0, False]
        return ev

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        t = self.now + delay
        buckets = self._buckets
        b = buckets.get(t)
        rng = self.tiebreak_rng
        if rng is None:
            if b is None:
                if priority == NORMAL:
                    buckets[t] = event
                else:
                    buckets[t] = [[event], [], 0, 0, False]
                _heappush(self._times, t)
            elif type(b) is list:
                if priority == NORMAL:
                    b[1].append(event)
                else:
                    u = b[0]
                    if u is None:
                        b[0] = [event]
                    else:
                        u.append(event)
            elif priority == NORMAL:
                buckets[t] = [None, [b, event], 0, 0, False]
            else:
                buckets[t] = [[event], [b], 0, 0, False]
            return
        # Fuzzing mode: NORMAL entries carry a (sub, seq) shuffle key.
        seq = self._seq = self._seq + 1
        if b is None:
            b = buckets[t] = [None, [], 0, 0, False]
            _heappush(self._times, t)
        elif type(b) is not list:
            # A bare pre-rng singleton (tiebreak_rng installed after
            # scheduling — unsupported but tolerated): keep it first.
            b = buckets[t] = [None, [(-1.0, 0, b)], 0, 0, False]
        if priority == NORMAL:
            sub = rng.random()
            normal = b[1]
            if b[4]:
                # The bucket is mid-drain: keep the remaining tail sorted.
                _insort(normal, (sub, seq, event), b[3])
            else:
                normal.append((sub, seq, event))
        else:
            u = b[0]
            if u is None:
                b[0] = [event]
            else:
                u.append(event)

    def _tail_token(self, event: Event) -> Any:
        return None

    def _at_tail(self, event: Event, token: Any) -> bool:
        # Structural check: the event must still be the last NORMAL entry
        # of a live bucket (rng mode stores tuples, so the identity test
        # fails there and coalescing is off — as it must be, because a
        # new entry would draw its own shuffle key).
        try:
            b = self._buckets.get(event.t)
        except AttributeError:  # pragma: no cover - defensive
            return False
        if b is event:
            return True
        if type(b) is list:
            normal = b[1]
            return bool(normal) and normal[-1] is event
        return False

    # -- queue state -------------------------------------------------------

    def _bucket_live(self, b: list) -> bool:
        """True if the bucket still has undrained events; a dead current
        bucket is retired (deleted) on the spot."""
        u = b[0]
        if (u is not None and b[2] < len(u)) or b[3] < len(b[1]):
            return True
        del self._buckets[self._cur_time]
        self._cur = None
        return False

    def _has_work(self) -> bool:
        b = self._cur
        if b is not None and self._bucket_live(b):
            return True
        return bool(self._times)

    def _queue_len(self) -> int:
        n = 0
        for b in self._buckets.values():
            if type(b) is not list:
                n += 1
                continue
            u = b[0]
            if u is not None:
                n += len(u) - b[2]
            n += len(b[1]) - b[3]
        return n

    def peek(self) -> float:
        b = self._cur
        if b is not None and self._bucket_live(b):
            return self._cur_time
        times = self._times
        return times[0] if times else _INF

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        b = self._cur
        if b is not None and not self._bucket_live(b):
            b = None
        if b is None:
            times = self._times
            if not times:
                raise SimulationError("step() on an empty schedule")
            t = _heappop(times)
            if t < self.now:
                raise SimulationError("time went backwards (kernel bug)")
            b = self._buckets[t]
            if type(b) is not list:
                # Singleton: retire it before its callbacks run so a
                # same-time arrival opens a fresh bucket behind it.
                del self._buckets[t]
                self.now = t
                self._process_one(b)
                return
            self._cur = b
            self._cur_time = t
        self.now = self._cur_time
        u = b[0]
        if u is not None and b[2] < len(u):
            i = b[2]
            b[2] = i + 1
            ev = u[i]
        else:
            i = b[3]
            b[3] = i + 1
            if self.tiebreak_rng is not None:
                if not b[4]:
                    b[1].sort()
                    b[4] = True
                ev = b[1][i][2]
            else:
                ev = b[1][i]
        self._process_one(ev)

    def _process_one(self, event: Event) -> None:
        callbacks = event.callbacks
        event.callbacks = None
        self.events_processed += 1
        if callbacks:
            for callback in callbacks:
                callback(event)
        if event._ok is False and not event.defused:
            raise event._value
        if self.monitor is not None and self.events_processed % self.monitor_interval == 0:
            self.monitor(self)

    def _drain(self, limit: float, stop: Optional[_Flag]) -> None:
        """Batched drain (see :meth:`Simulator._drain` for the contract).

        Bucket lengths and cursors live in locals on the no-callback
        fast path; they are written back before callbacks run (the only
        code that can observe or change them) and refreshed after.
        """
        buckets = self._buckets
        times = self._times
        pool = self._timeout_pool
        rng_mode = self.tiebreak_rng is not None
        now = self.now
        n = 0
        try:
            while True:
                b = self._cur
                if b is None:
                    if not times or times[0] > limit:
                        break
                    t = _heappop(times)
                    if t < now:
                        raise SimulationError("time went backwards (kernel bug)")
                    now = t
                    b = buckets[t]
                    if type(b) is not list:
                        # Singleton bucket: one NORMAL event, retired
                        # before its callbacks run (see step()).  `b` is
                        # deliberately the only local referencing it so
                        # the recycle refcount check below stays exact.
                        del buckets[t]
                        n += 1
                        cbs = b.callbacks
                        b.callbacks = None
                        if cbs:
                            self.now = now
                            self.events_processed += n
                            n = 0
                            for cb in cbs:
                                cb(b)
                            if b._ok is False and not b.defused:
                                raise b._value
                            if (type(b) is Timeout and _refcount(b) == 2
                                    and len(pool) < _TIMEOUT_POOL_MAX):
                                pool.append(b)
                            if stop is not None and stop.fired:
                                return
                        elif b._ok is False and not b.defused:
                            raise b._value
                        continue
                    self._cur = b
                    self._cur_time = t
                else:
                    now = self._cur_time
                urgent = b[0]
                normal = b[1]
                ui = b[2]
                ni = b[3]
                u_len = 0 if urgent is None else len(urgent)
                n_len = len(normal)
                while True:
                    if ui < u_len:
                        ev = urgent[ui]
                        ui += 1
                    elif ni < n_len:
                        if rng_mode:
                            if not b[4]:
                                normal.sort()
                                b[4] = True
                            ev = normal[ni][2]
                        else:
                            ev = normal[ni]
                        ni += 1
                    else:
                        break
                    n += 1
                    cbs = ev.callbacks
                    ev.callbacks = None
                    if cbs:
                        b[2] = ui
                        b[3] = ni
                        self.now = now
                        self.events_processed += n
                        n = 0
                        for cb in cbs:
                            cb(ev)
                        if ev._ok is False and not ev.defused:
                            raise ev._value
                        if (type(ev) is Timeout and _refcount(ev) == 3
                                and len(pool) < _TIMEOUT_POOL_MAX):
                            # The bucket slot and our local are the only
                            # remaining references: nobody can observe
                            # this timeout again, so recycle it.
                            pool.append(ev)
                        if stop is not None and stop.fired:
                            return
                        urgent = b[0]
                        ui = b[2]
                        ni = b[3]
                        u_len = 0 if urgent is None else len(urgent)
                        n_len = len(normal)
                    elif ev._ok is False and not ev.defused:
                        b[2] = ui
                        b[3] = ni
                        raise ev._value
                b[2] = ui
                b[3] = ni
                del buckets[self._cur_time]
                self._cur = None
        finally:
            self.now = now
            self.events_processed += n
