"""Condition events: wait for any/all of a set of events.

Used by split-phase protocol code, e.g. "wait for a steal reply OR a
retransmission timeout", and by test harnesses joining many workers.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator


class _Condition(Event):
    """Common machinery for AnyOf/AllOf."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events: List[Event] = list(events)
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._pending = len(self._events)
        if not self._events:
            self.succeed(self._collect())
            return
        for ev in self._events:
            ev.subscribe(self._on_child)

    def _collect(self) -> Dict[Event, Any]:
        """Values of all *processed* successful children, in original order.

        Processed, not merely triggered: a Timeout carries its value from
        creation, so "triggered" would wrongly include futures that have
        not fired yet.
        """
        return {ev: ev._value for ev in self._events if ev.processed and ev.ok}

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            # Condition already settled (e.g. AnyOf); absorb late children,
            # including late failures, which the condition creator opted
            # not to care about.
            child.defused = True
            return
        if child.ok is False:
            child.defused = True
            self.fail(child._value)
            return
        self._pending -= 1
        if self._check():
            self.succeed(self._collect())

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds as soon as any child succeeds.

    The value is a dict of ``{event: value}`` for every child that had
    succeeded by the time the condition was processed.  Fails if any
    child fails first.
    """

    __slots__ = ()

    def _check(self) -> bool:
        return self._pending < len(self._events)


class AllOf(_Condition):
    """Succeeds when every child has succeeded; fails on the first failure."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._pending == 0
