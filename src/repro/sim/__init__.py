"""A small, dependency-free discrete-event simulation kernel.

This package is the "hardware" substrate of the Phish reproduction: it
plays the role that real SparcStations, Ethernet, and wall clocks played
in the paper.  It is modelled on the classic process-interaction style
(generator coroutines yielding events), and is deterministic: given the
same seed and the same program, every run produces the same event order.

Public surface:

* :class:`Simulator` — the event loop and clock.
* :class:`Event`, :class:`Timeout`, :class:`Process` — waitables.
* :class:`Interrupt` — exception delivered by :meth:`Process.interrupt`.
* :class:`AnyOf`, :class:`AllOf` — condition events.
* :class:`Store`, :class:`Channel`, :class:`Resource`, :class:`Signal` —
  synchronised containers.
* :class:`Probe` — time-series measurement.
"""

from repro.sim.core import (
    NORMAL,
    URGENT,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.events import AllOf, AnyOf
from repro.sim.monitor import Probe
from repro.sim.resources import Channel, Resource, Signal, Store

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "Store",
    "Channel",
    "Resource",
    "Signal",
    "Probe",
    "URGENT",
    "NORMAL",
]
