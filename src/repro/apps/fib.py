"""fib: the naive doubly-recursive Fibonacci program.

"The fib application is a naive, doubly-recursive program that computes
Fibonacci numbers. ... it does almost nothing but spawn parallel tasks,
which are simple procedure calls in the serial implementation."  Its
tiny grain size makes it the worst case for serial slowdown (Table 1:
4.44 on the CM-5/Strata, 5.90 on a SparcStation 10/Phish) — and the
showcase that the scheduler still achieves linear speedup on fine-grain
work.

Task structure: ``fib(n)`` spawns ``fib(n-1)`` and ``fib(n-2)`` plus a
``fib_sum`` successor joining the two results.
"""

from __future__ import annotations

from typing import Tuple

from repro.tasks.program import JobProgram, ThreadProgram

#: Application work per fib task: a comparison and (in the sum task) an
#: addition — a handful of instructions; fib is *all* overhead.
FIB_NODE_CYCLES = 12.0
FIB_SUM_CYCLES = 6.0

program = ThreadProgram("fib")


@program.thread
def fib_task(frame, k, n):
    """Compute fib(n), sending the result along continuation *k*."""
    frame.work(FIB_NODE_CYCLES)
    if n < 2:
        frame.send(k, n)
        return
    succ = frame.successor(fib_sum, k)
    frame.spawn(fib_task, succ.cont(1), n - 1)
    frame.spawn(fib_task, succ.cont(2), n - 2)


@program.thread
def fib_sum(frame, k, x, y):
    """Join task: add the two recursive results."""
    frame.work(FIB_SUM_CYCLES)
    frame.send(k, x + y)


def fib_job(n: int, name: str | None = None) -> JobProgram:
    """Build the parallel fib(n) job."""
    if n < 0:
        raise ValueError("fib argument must be non-negative")
    return JobProgram(program, fib_task, (n,), name=name or f"fib({n})")


def fib_serial(n: int) -> int:
    """Best serial implementation (plain recursion, but iterative here to
    avoid Python's recursion limit; the *cost model* still charges the
    recursive call structure via :func:`serial_metrics`)."""
    if n < 0:
        raise ValueError("fib argument must be non-negative")
    if n < 2:
        return n
    a, b = 0, 1
    for _ in range(n - 1):
        a, b = b, a + b
    return b


def node_count(n: int) -> int:
    """Number of calls the naive doubly-recursive fib(n) makes.

    ``calls(n) = 2*fib(n+1) - 1``.
    """
    return 2 * fib_serial(n + 1) - 1


def task_count(n: int) -> int:
    """Tasks the parallel version executes: one per call node plus one
    fib_sum join per internal node."""
    nodes = node_count(n)
    internal = (nodes - 1) // 2
    return nodes + internal


def serial_metrics(n: int) -> Tuple[float, int]:
    """(total work cycles, procedure-call count) of the best serial code.

    The serial code makes one call per node and performs the node's
    comparison plus, at internal nodes, the addition.
    """
    nodes = node_count(n)
    internal = (nodes - 1) // 2
    work = nodes * FIB_NODE_CYCLES + internal * FIB_SUM_CYCLES
    return work, nodes
