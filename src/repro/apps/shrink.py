"""shrink: a synthetic workload whose parallelism collapses mid-run.

The paper's macro/micro cooperation story needs a workload like this:
"the amount of parallelism in the job may decrease to the point where a
participant is unable to keep busy.  As the parallelism in an
application shrinks, some of its participating processes die, and the
macro-level scheduler accommodates this time-varying parallelism by
reassigning the freed workstations to other jobs."

Structure: a *wide* phase of ``width`` independent equal tasks,
followed by a *chain* phase — ``chain_length`` strictly sequential
tasks (each spawns the next).  During the chain, every worker but one
starves; with a finite retirement threshold they retire and return
their machines to the macro pool.  The job's result is a checkable pair
``(width_sum, chain_length)``.
"""

from __future__ import annotations

from typing import Tuple

from repro.tasks.program import JobProgram, ThreadProgram

WIDE_TASK_CYCLES = 50_000.0
CHAIN_TASK_CYCLES = 20_000.0


def build_program(width: int, chain_length: int) -> ThreadProgram:
    """Build the shrink program (per-job: the join arity is ``width``)."""
    if width < 1 or chain_length < 1:
        raise ValueError("width and chain_length must be >= 1")
    prog = ThreadProgram(f"shrink-{width}x{chain_length}")

    @prog.thread
    def sh_wide(frame, k, index):
        frame.work(WIDE_TASK_CYCLES)
        frame.send(k, index)

    @prog.thread(arity=width + 1)
    def sh_join(frame, k, *values):
        frame.work(10.0 * len(values))
        frame.spawn(sh_chain, k, sum(values), chain_length)

    @prog.thread
    def sh_chain(frame, k, wide_sum, remaining):
        frame.work(CHAIN_TASK_CYCLES)
        if remaining == 0:
            frame.send(k, (wide_sum, chain_length))
            return
        frame.spawn(sh_chain, k, wide_sum, remaining - 1)

    @prog.thread
    def sh_root(frame, k):
        frame.work(10.0)
        succ = frame.successor(sh_join, k)
        for i in range(width):
            frame.spawn(sh_wide, succ.cont(1 + i), i)

    return prog


def shrink_job(width: int = 32, chain_length: int = 200, name: str | None = None) -> JobProgram:
    """Build the shrinking-parallelism job."""
    prog = build_program(width, chain_length)
    return JobProgram(prog, "sh_root", (),
                      name=name or f"shrink({width}x{chain_length})")


def shrink_expected(width: int = 32, chain_length: int = 200) -> Tuple[int, int]:
    """Oracle: the result the job must deliver."""
    return (width * (width - 1) // 2, chain_length)
