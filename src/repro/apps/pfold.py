"""pfold: protein folding on a 2D lattice (the paper's headline app).

"The protein-folding application finds all possible foldings of a
polymer into a lattice and computes a histogram of the energy values."
(Developed by Chris Joerg and Vijay Pande at MIT; this module is a
from-scratch implementation of the same computation.)

Model: the HP model on the square lattice.  A polymer is a sequence of
H (hydrophobic) and P (polar) monomers; a *folding* is a self-avoiding
walk placing consecutive monomers on adjacent lattice sites.  The
energy of a folding is minus the number of H-H *contacts* — pairs of H
monomers adjacent on the lattice but not consecutive in the chain.
The application enumerates every folding (modulo the first-step
rotation symmetry) and histograms the energies.

Task structure: one task per partial walk (``pf_extend``), spawning up
to three children (the reverse step is excluded); leaves compute the
energy and send a one-entry histogram; a ternary ``pf_merge`` successor
folds children histograms together, with unused slots satisfied
immediately by empty histograms.  The tree shape — deep, with modest
fan-out — is what makes the paper's locality numbers possible: FIFO
steals take tasks near the root, each carrying a giant subcomputation.

``work_scale`` multiplies the per-task application work so that scaled
workloads (fewer tasks than the paper's 10.39 M) still produce
simulated times of the paper's magnitude; EXPERIMENTS.md records the
scales used.
"""

from __future__ import annotations

from typing import Tuple

from repro.tasks.program import JobProgram, ThreadProgram
from repro.util.stats import Histogram

#: The standard 20-mer 2D HP benchmark sequence (ground state energy -9).
BENCHMARK_20MER = "HPHPPHHPHPPHPHHPPHPH"

#: Work constants (cycles).
EXTEND_CYCLES = 26.0  # one direction tried: neighbour compute + occupancy test
STEP_CYCLES = 22.0  # committing a step: store position, advance
ENERGY_CYCLES_PER_MONOMER = 30.0  # leaf energy scan, per monomer
MERGE_CYCLES_PER_BIN = 10.0  # histogram merge, per bin moved

#: Unit moves on the square lattice (2D) and the cubic lattice (3D).
MOVES: Tuple[Tuple[int, int], ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))
MOVES_3D: Tuple[Tuple[int, int, int], ...] = (
    (1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)
)

#: Supported lattices: name -> (moves, origin, first step).
LATTICES = {
    "square": (MOVES, (0, 0), (1, 0)),
    "cubic": (MOVES_3D, (0, 0, 0), (1, 0, 0)),
}


def _lattice(name: str):
    try:
        return LATTICES[name]
    except KeyError:
        raise ValueError(
            f"unknown lattice {name!r}; known: {sorted(LATTICES)}"
        ) from None


def _square_neighbours(pos):
    x, y = pos
    return ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1))


def _cubic_neighbours(pos):
    x, y, z = pos
    return (
        (x + 1, y, z), (x - 1, y, z),
        (x, y + 1, z), (x, y - 1, z),
        (x, y, z + 1), (x, y, z - 1),
    )


#: Specialised neighbour enumerators (the tracer-profiled hot path:
#: generic ``tuple(c + d for ...)`` was ~20% of a pfold run).
NEIGHBOURS = {"square": _square_neighbours, "cubic": _cubic_neighbours}


def fold_energy(sequence: str, path, lattice: str = "square") -> int:
    """Energy of a complete folding: -(# of non-consecutive H-H contacts)."""
    _lattice(lattice)  # validate the name
    neighbours = NEIGHBOURS[lattice]
    where = {pos: i for i, pos in enumerate(path)}
    get = where.get
    contacts = 0
    for i, pos in enumerate(path):
        if sequence[i] != "H":
            continue
        for neighbour in neighbours(pos):
            j = get(neighbour)
            if j is not None and j > i + 1 and sequence[j] == "H":
                contacts += 1
    return -contacts


def _validate_sequence(sequence: str) -> str:
    if len(sequence) < 2:
        raise ValueError("polymer must have at least 2 monomers")
    bad = set(sequence) - {"H", "P"}
    if bad:
        raise ValueError(f"sequence may contain only H and P, found {sorted(bad)}")
    return sequence


def build_program(
    sequence: str, work_scale: float = 1.0, lattice: str = "square"
) -> ThreadProgram:
    """Build the pfold thread program for one polymer sequence.

    ``lattice="cubic"`` enumerates foldings in 3D (six moves, five
    non-reverse extension candidates per step) — protein folding's more
    physical setting, and a heavier workload at equal chain length.
    """
    sequence = _validate_sequence(sequence)
    if work_scale <= 0:
        raise ValueError("work_scale must be positive")
    moves, _origin, _first = _lattice(lattice)
    neighbours = NEIGHBOURS[lattice]
    fanout = len(moves) - 1  # the reverse move always fails self-avoidance
    length = len(sequence)
    prog = ThreadProgram(f"pfold-{lattice}-{sequence}")

    @prog.thread
    def pf_extend(frame, k, path):
        placed = len(path)
        if placed == length:
            frame.work(work_scale * ENERGY_CYCLES_PER_MONOMER * length)
            hist = Histogram()
            hist.add(fold_energy(sequence, path, lattice))
            frame.send(k, hist)
            return
        occupied = set(path)
        children = [
            nxt for nxt in neighbours(path[-1]) if nxt not in occupied
        ]
        frame.work(work_scale * EXTEND_CYCLES * len(moves))
        if not children:
            frame.send(k, Histogram())  # dead end: no foldings below here
            return
        frame.work(work_scale * STEP_CYCLES * len(children))
        succ = frame.successor(pf_merge, k)
        for i, nxt in enumerate(children):
            frame.spawn(pf_extend, succ.cont(1 + i), path + (nxt,))
        for j in range(len(children), fanout):
            frame.send(succ.cont(1 + j), Histogram())

    @prog.thread(arity=fanout + 1)
    def pf_merge(frame, k, *hists):
        merged = Histogram()
        for h in hists:
            merged.merge(h)
        frame.work(work_scale * MERGE_CYCLES_PER_BIN * max(1, len(merged.counts)))
        frame.send(k, merged)

    @prog.thread
    def pf_root(frame, k):
        # Fix the first step: every folding is counted once per rotation
        # class (4-fold on the square lattice, 6-fold on the cubic).
        frame.work(work_scale * STEP_CYCLES)
        frame.spawn(pf_extend, k, (_origin, _first))

    return prog


def pfold_job(
    sequence: str = BENCHMARK_20MER,
    work_scale: float = 1.0,
    name: str | None = None,
    lattice: str = "square",
) -> JobProgram:
    """Build the parallel pfold job for *sequence*."""
    prog = build_program(sequence, work_scale, lattice)
    return JobProgram(
        prog, "pf_root", (), name=name or f"pfold({len(sequence)},{lattice})"
    )


class SerialRun:
    """Result of an instrumented serial execution: answer + cost model."""

    __slots__ = ("result", "work_cycles", "calls")

    def __init__(self, result: Histogram, work_cycles: float, calls: int) -> None:
        self.result = result
        self.work_cycles = work_cycles
        self.calls = calls


def pfold_serial(
    sequence: str = BENCHMARK_20MER,
    work_scale: float = 1.0,
    lattice: str = "square",
) -> SerialRun:
    """Best serial implementation: iterative depth-first enumeration.

    Identical lattice arithmetic to the parallel version; tallies the
    work cycles and the procedure-call count the recursion would make.
    """
    sequence = _validate_sequence(sequence)
    moves, origin, first = _lattice(lattice)
    neighbours = NEIGHBOURS[lattice]
    length = len(sequence)
    work = 0.0
    calls = 1  # the root
    hist = Histogram()
    # Explicit stack of (path,); avoids Python recursion limits.
    stack = [(origin, first)]
    work += work_scale * STEP_CYCLES
    while stack:
        path = stack.pop()
        calls += 1
        placed = len(path)
        if placed == length:
            work += work_scale * ENERGY_CYCLES_PER_MONOMER * length
            hist.add(fold_energy(sequence, path, lattice))
            continue
        occupied = set(path)
        children = [
            nxt for nxt in neighbours(path[-1]) if nxt not in occupied
        ]
        work += work_scale * EXTEND_CYCLES * len(moves)
        work += work_scale * STEP_CYCLES * len(children)
        for nxt in children:
            stack.append(path + (nxt,))
    return SerialRun(hist, work, calls)


def count_foldings(sequence_length: int, lattice: str = "square") -> int:
    """Number of foldings enumerated (symmetry-reduced self-avoiding
    walks of ``sequence_length - 1`` steps).  Exact, by enumeration —
    used as a test oracle for small lengths."""
    if sequence_length < 2:
        raise ValueError("need at least 2 monomers")
    run = pfold_serial("P" * sequence_length, lattice=lattice)
    return run.result.total()
