"""The paper's four applications, written as continuation-passing threads.

* :mod:`repro.apps.fib` — naive doubly-recursive Fibonacci ("toy",
  deliberately tiny grain size; the serial-slowdown stress test).
* :mod:`repro.apps.nqueens` — backtrack search counting n-queens
  placements ("toy", small grain).
* :mod:`repro.apps.pfold` — protein folding: enumerate lattice foldings
  of a polymer and histogram their energies (the paper's headline
  application, Figures 4/5 and Table 2).
* :mod:`repro.apps.ray` — a recursive ray tracer (coarse grain).

Each module exports ``<app>_job(...)`` building a
:class:`~repro.tasks.program.JobProgram`, a best-serial implementation,
and a ``serial_metrics`` function giving (total work cycles, call count)
for the Table 1 serial-time model.

Submodules are imported lazily so that ``import repro.apps.fib`` does
not pay for the ray tracer.
"""

from importlib import import_module

__all__ = ["fib", "nqueens", "pfold", "ray", "shrink"]


def __getattr__(name):
    if name in ("fib", "nqueens", "pfold", "shrink"):
        return import_module(f"repro.apps.{name}")
    if name == "ray":
        return import_module("repro.apps.ray.app")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
