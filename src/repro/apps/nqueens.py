"""nqueens: backtrack search counting safe queen placements.

"The nqueens application counts by backtrack search the number of ways
of arranging n queens on an n x n chess board such that no queen can
capture any other."  Grain size is modest (each node performs O(n *
depth) conflict checks), so Table 1 reports a serial slowdown barely
above one (1.09 on the CM-5, 1.12 on the SparcStation 10).

Task structure: one task per search node.  A node tests every column of
the next row against the partial placement, spawns a child per safe
column, and joins the children's counts through an n-ary ``nq_join``
successor (unused join slots are satisfied immediately with zero).
Backtrack search is exactly the workload of DIB (Finkel & Manber),
"the scheduler that inspired our idle-initiated scheduler".
"""

from __future__ import annotations

from typing import Tuple

from repro.tasks.program import JobProgram, ThreadProgram

#: One queen-vs-queen conflict test (column + two diagonal compares,
#: with loop and indexing overhead as the 1990s C compiler emitted it).
CHECK_CYCLES = 30.0
#: Fixed per-node bookkeeping (loop setup, result dispatch).
NODE_CYCLES = 87.0
#: Adding one child count in the join.
JOIN_ADD_CYCLES = 9.0


def _safe(placement: Tuple[int, ...], col: int) -> bool:
    """Can a queen go in the next row at *col* given *placement*?"""
    row = len(placement)
    for r, c in enumerate(placement):
        if c == col or abs(c - col) == row - r:
            return False
    return True


def build_program(n: int) -> ThreadProgram:
    """Build the nqueens thread program for board size *n*.

    The program is built per job because the join fan-in is *n*.
    """
    if n < 1:
        raise ValueError("board size must be >= 1")
    prog = ThreadProgram(f"nqueens-{n}")

    @prog.thread
    def nq_node(frame, k, placement):
        row = len(placement)
        frame.work(NODE_CYCLES)
        if row == n:
            frame.send(k, 1)
            return
        frame.work(n * max(1, row) * CHECK_CYCLES)
        safe_cols = [c for c in range(n) if _safe(placement, c)]
        if not safe_cols:
            frame.send(k, 0)
            return
        succ = frame.successor(nq_join, k)
        for i, col in enumerate(safe_cols):
            frame.spawn(nq_node, succ.cont(1 + i), placement + (col,))
        for j in range(len(safe_cols), n):
            frame.send(succ.cont(1 + j), 0)

    @prog.thread(arity=n + 1)
    def nq_join(frame, k, *counts):
        frame.work(JOIN_ADD_CYCLES * len(counts))
        frame.send(k, sum(counts))

    return prog


def nqueens_job(n: int, name: str | None = None) -> JobProgram:
    """Build the parallel nqueens(n) job."""
    prog = build_program(n)
    return JobProgram(prog, "nq_node", ((),), name=name or f"nqueens({n})")


class SerialRun:
    """Result of an instrumented serial execution: answer + cost model."""

    __slots__ = ("result", "work_cycles", "calls")

    def __init__(self, result, work_cycles: float, calls: int) -> None:
        self.result = result
        self.work_cycles = work_cycles
        self.calls = calls


def nqueens_serial(n: int) -> SerialRun:
    """Best serial implementation: plain recursive backtracking.

    Performs the same conflict checks as the parallel version but each
    node is a procedure call; work cycles and call count are tallied for
    the Table 1 serial-time model.
    """
    if n < 1:
        raise ValueError("board size must be >= 1")
    work = 0.0
    calls = 0

    def descend(placement: Tuple[int, ...]) -> int:
        nonlocal work, calls
        calls += 1
        row = len(placement)
        work += NODE_CYCLES
        if row == n:
            return 1
        work += n * max(1, row) * CHECK_CYCLES
        total = 0
        for col in range(n):
            if _safe(placement, col):
                total += descend(placement + (col,))
        work += JOIN_ADD_CYCLES * n
        return total

    result = descend(())
    return SerialRun(result, work, calls)


#: Known answers for testing (sequence A000170).
KNOWN_COUNTS = {1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724}
