"""knary: the classic synthetic scheduler stress test.

``knary(n, k, r)`` builds the benchmark tree of the Cilk lineage (the
theory the paper's micro scheduler rests on): every node of depth < n
spawns ``k`` children, of which the first ``r`` are *serialised* — each
must complete before the next starts — and the remaining ``k - r`` run
in parallel.  ``r`` therefore dials the available parallelism
continuously: ``r = 0`` is a perfectly parallel k-ary tree, ``r = k``
a fully serial chain.  The result is the node count, which has a
closed form for checking.

Useful for scheduler experiments that need controllable parallelism
(steal-rate studies, retirement behaviour) independent of any real
application's structure.
"""

from __future__ import annotations

from repro.tasks.program import JobProgram, ThreadProgram

NODE_CYCLES = 400.0
JOIN_CYCLES = 12.0


def build_program(n: int, k: int, r: int) -> ThreadProgram:
    """Build knary(n, k, r); join arity is k so the program is per-shape."""
    if n < 1:
        raise ValueError("depth n must be >= 1")
    if k < 1:
        raise ValueError("branching k must be >= 1")
    if not (0 <= r <= k):
        raise ValueError("serial count r must be in [0, k]")
    prog = ThreadProgram(f"knary-{n}-{k}-{r}")

    @prog.thread
    def kn_node(frame, k_cont, depth):
        frame.work(NODE_CYCLES)
        if depth >= n:
            frame.send(k_cont, 1)
            return
        succ = frame.successor(kn_join, k_cont)
        if r > 0:
            # Serial prefix: a chain task walks the first r children one
            # by one, accumulating their subtree counts.
            frame.spawn(kn_chain, succ.cont(1), depth, r, 0)
        else:
            frame.send(succ.cont(1), 0)
        for i in range(k - r):
            frame.spawn(kn_node, succ.cont(2 + i), depth + 1)

    @prog.thread
    def kn_chain(frame, k_cont, depth, remaining, acc):
        """Execute one serialised child subtree, then continue the chain."""
        frame.work(NODE_CYCLES)
        if remaining == 0:
            frame.send(k_cont, acc)
            return
        succ = frame.successor(kn_chain_step, k_cont, depth, remaining)
        frame.spawn(kn_node, succ.cont(3 + 0), depth + 1)
        # acc travels through the step's fixed args:
        frame.send(succ.cont(4), acc)

    @prog.thread
    def kn_chain_step(frame, k_cont, depth, remaining, subtree, acc):
        frame.work(JOIN_CYCLES)
        frame.spawn(kn_chain, k_cont, depth, remaining - 1, acc + subtree)

    @prog.thread(arity=2 + (k - r))
    def kn_join(frame, k_cont, serial_total, *parallel_counts):
        frame.work(JOIN_CYCLES * (1 + len(parallel_counts)))
        frame.send(k_cont, 1 + serial_total + sum(parallel_counts))

    @prog.thread
    def kn_root(frame, k_cont):
        frame.spawn(kn_node, k_cont, 1)

    return prog


def knary_job(n: int, k: int, r: int, name: str | None = None) -> JobProgram:
    """Build the knary(n, k, r) job."""
    prog = build_program(n, k, r)
    return JobProgram(prog, "kn_root", (), name=name or f"knary({n},{k},{r})")


def knary_nodes(n: int, k: int) -> int:
    """Closed form for the tree's node count: (k^n - 1) / (k - 1)."""
    if k == 1:
        return n
    return (k ** n - 1) // (k - 1)
