"""Ray-intersectable primitives: spheres and planes."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.apps.ray.vec import Vec3, dot, scale, sub, unit

#: Intersections closer than this are ignored (shadow-acne guard).
EPSILON = 1e-6


@dataclass(frozen=True)
class Material:
    """Phong material: diffuse colour, specular weight, reflectivity."""

    colour: Vec3 = (0.8, 0.8, 0.8)
    diffuse: float = 0.9
    specular: float = 0.4
    shininess: float = 32.0
    reflectivity: float = 0.0


@dataclass(frozen=True)
class Hit:
    """One ray-surface intersection."""

    t: float
    point: Vec3
    normal: Vec3
    material: Material


class Sphere:
    """A sphere defined by centre and radius."""

    __slots__ = ("centre", "radius", "material")

    def __init__(self, centre: Vec3, radius: float, material: Material) -> None:
        if radius <= 0:
            raise ValueError("sphere radius must be positive")
        self.centre = centre
        self.radius = radius
        self.material = material

    def intersect(self, origin: Vec3, direction: Vec3) -> Optional[Hit]:
        """Nearest intersection of the ray with this sphere, if any."""
        oc = sub(origin, self.centre)
        b = 2.0 * dot(oc, direction)
        c = dot(oc, oc) - self.radius * self.radius
        disc = b * b - 4.0 * c
        if disc < 0.0:
            return None
        sq = math.sqrt(disc)
        t = (-b - sq) / 2.0
        if t < EPSILON:
            t = (-b + sq) / 2.0
            if t < EPSILON:
                return None
        point = (
            origin[0] + direction[0] * t,
            origin[1] + direction[1] * t,
            origin[2] + direction[2] * t,
        )
        normal = unit(sub(point, self.centre))
        return Hit(t, point, normal, self.material)


class Plane:
    """An infinite plane through *point* with unit *normal*.

    An optional checkerboard pattern alternates the material colour —
    the classic ray-tracer ground plane.
    """

    __slots__ = ("point", "normal", "material", "checker")

    def __init__(
        self, point: Vec3, normal: Vec3, material: Material, checker: bool = False
    ) -> None:
        self.point = point
        self.normal = unit(normal)
        self.material = material
        self.checker = checker

    def intersect(self, origin: Vec3, direction: Vec3) -> Optional[Hit]:
        denom = dot(direction, self.normal)
        if abs(denom) < EPSILON:
            return None
        t = dot(sub(self.point, origin), self.normal) / denom
        if t < EPSILON:
            return None
        point = (
            origin[0] + direction[0] * t,
            origin[1] + direction[1] * t,
            origin[2] + direction[2] * t,
        )
        material = self.material
        if self.checker:
            if (math.floor(point[0]) + math.floor(point[2])) % 2 == 0:
                material = Material(
                    colour=scale(material.colour, 0.35),
                    diffuse=material.diffuse,
                    specular=material.specular,
                    shininess=material.shininess,
                    reflectivity=material.reflectivity,
                )
        normal = self.normal if denom < 0 else scale(self.normal, -1.0)
        return Hit(t, point, normal, material)
