"""Scene files: the ``ray my-scene`` of the paper, as a text format.

"simply typing `ray my-scene` will run our parallel ray tracer on the
data given in the file my-scene."  This module defines that file: a
line-oriented text format for cameras, lights, spheres, and planes, with
comments and bare blank lines.

Grammar (one directive per line, ``#`` starts a comment)::

    camera   px py pz  lx ly lz  fov
    light    px py pz  r g b
    ambient  r g b
    background r g b
    sphere   cx cy cz radius  r g b  [diffuse spec shin refl]
    plane    px py pz  nx ny nz  r g b  [diffuse spec shin refl] [checker]

Numbers are floats; the optional material tail defaults to the standard
matte material.  :func:`load_scene` / :func:`save_scene` round-trip.
"""

from __future__ import annotations

import io
from typing import List, TextIO, Union

from repro.apps.ray.geometry import Material, Plane, Sphere
from repro.apps.ray.scene import Camera, Light, Scene
from repro.errors import ReproError


class SceneFormatError(ReproError):
    """A scene file line could not be parsed."""


def _floats(parts: List[str], n: int, what: str, line_no: int) -> List[float]:
    if len(parts) < n:
        raise SceneFormatError(
            f"line {line_no}: {what} needs {n} numbers, got {len(parts)}"
        )
    try:
        return [float(p) for p in parts[:n]]
    except ValueError as exc:
        raise SceneFormatError(f"line {line_no}: {what}: {exc}") from None


def _material(parts: List[str], line_no: int) -> tuple:
    """Parse colour + optional material tail; returns (Material, checker)."""
    colour = tuple(_floats(parts, 3, "material colour", line_no))
    rest = parts[3:]
    checker = False
    if rest and rest[-1] == "checker":
        checker = True
        rest = rest[:-1]
    if rest and len(rest) != 4:
        raise SceneFormatError(
            f"line {line_no}: material tail must be 4 numbers, got {len(rest)}"
        )
    if rest:
        diffuse, specular, shininess, reflectivity = _floats(
            rest, 4, "material", line_no
        )
    else:
        diffuse, specular, shininess, reflectivity = 0.9, 0.4, 32.0, 0.0
    material = Material(
        colour=colour,  # type: ignore[arg-type]
        diffuse=diffuse,
        specular=specular,
        shininess=shininess,
        reflectivity=reflectivity,
    )
    return material, checker


def load_scene(source: Union[str, TextIO]) -> Scene:
    """Parse a scene from a file path, file object, or literal text.

    A string containing a newline is treated as scene text; any other
    string is opened as a path.
    """
    if isinstance(source, str):
        if "\n" in source:
            fh: TextIO = io.StringIO(source)
        else:
            fh = open(source, "r", encoding="utf-8")
    else:
        fh = source
    scene = Scene(objects=[], lights=[])
    try:
        for line_no, raw in enumerate(fh, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            kind, *parts = line.split()
            if kind == "camera":
                vals = _floats(parts, 7, "camera", line_no)
                scene.camera = Camera(
                    position=tuple(vals[0:3]),
                    look_at=tuple(vals[3:6]),
                    fov_degrees=vals[6],
                )
            elif kind == "light":
                vals = _floats(parts, 6, "light", line_no)
                scene.lights.append(
                    Light(position=tuple(vals[0:3]), intensity=tuple(vals[3:6]))
                )
            elif kind == "ambient":
                scene.ambient = tuple(_floats(parts, 3, "ambient", line_no))
            elif kind == "background":
                scene.background = tuple(_floats(parts, 3, "background", line_no))
            elif kind == "sphere":
                vals = _floats(parts, 4, "sphere", line_no)
                material, _checker = _material(parts[4:], line_no)
                scene.objects.append(
                    Sphere(tuple(vals[0:3]), vals[3], material)
                )
            elif kind == "plane":
                vals = _floats(parts, 6, "plane", line_no)
                material, checker = _material(parts[6:], line_no)
                scene.objects.append(
                    Plane(tuple(vals[0:3]), tuple(vals[3:6]), material, checker)
                )
            else:
                raise SceneFormatError(f"line {line_no}: unknown directive {kind!r}")
    finally:
        if fh is not source and not isinstance(source, io.StringIO):
            fh.close()
    if not scene.objects:
        raise SceneFormatError("scene has no objects")
    if not scene.lights:
        raise SceneFormatError("scene has no lights")
    return scene


def save_scene(scene: Scene, fh: TextIO) -> None:
    """Write a scene in the text format (inverse of :func:`load_scene`)."""
    cam = scene.camera
    fh.write("# phish-repro scene\n")
    fh.write(
        "camera {} {} {}  {} {} {}  {}\n".format(
            *cam.position, *cam.look_at, cam.fov_degrees
        )
    )
    fh.write("ambient {} {} {}\n".format(*scene.ambient))
    fh.write("background {} {} {}\n".format(*scene.background))
    for light in scene.lights:
        fh.write("light {} {} {}  {} {} {}\n".format(*light.position, *light.intensity))
    for obj in scene.objects:
        if isinstance(obj, Sphere):
            m = obj.material
            fh.write(
                "sphere {} {} {} {}  {} {} {}  {} {} {} {}\n".format(
                    *obj.centre, obj.radius, *m.colour,
                    m.diffuse, m.specular, m.shininess, m.reflectivity,
                )
            )
        elif isinstance(obj, Plane):
            m = obj.material
            fh.write(
                "plane {} {} {}  {} {} {}  {} {} {}  {} {} {} {}{}\n".format(
                    *obj.point, *obj.normal, *m.colour,
                    m.diffuse, m.specular, m.shininess, m.reflectivity,
                    " checker" if obj.checker else "",
                )
            )
        else:  # pragma: no cover - future primitive types
            raise SceneFormatError(f"cannot serialise {type(obj).__name__}")


def scene_to_text(scene: Scene) -> str:
    """Convenience: :func:`save_scene` into a string."""
    buf = io.StringIO()
    save_scene(scene, buf)
    return buf.getvalue()
