"""ray: a recursive ray tracer (the paper's coarse-grain application).

"The ray-tracing application renders images by tracing light rays
around a mathematical model of a scene."  Its coarse grain size (one
task renders a whole block of scanlines) makes its serial slowdown
nearly 1.00 (Table 1), at the opposite end of the spectrum from fib.
"""

from repro.apps.ray.geometry import Plane, Sphere
from repro.apps.ray.scene import Camera, Light, Scene, default_scene
from repro.apps.ray.sceneio import load_scene, save_scene, scene_to_text
from repro.apps.ray.tracer import render, render_rows, trace_ray
from repro.apps.ray.app import ray_job, ray_serial

__all__ = [
    "Sphere",
    "Plane",
    "Scene",
    "Camera",
    "Light",
    "default_scene",
    "load_scene",
    "save_scene",
    "scene_to_text",
    "trace_ray",
    "render",
    "render_rows",
    "ray_job",
    "ray_serial",
]
