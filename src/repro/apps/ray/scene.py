"""Scenes, cameras, lights, and the default benchmark scene."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.apps.ray.geometry import Hit, Material, Plane, Sphere
from repro.apps.ray.vec import Vec3, add, scale, sub, unit

Primitive = Union[Sphere, Plane]


@dataclass(frozen=True)
class Light:
    """A point light with an RGB intensity."""

    position: Vec3
    intensity: Vec3 = (1.0, 1.0, 1.0)


@dataclass(frozen=True)
class Camera:
    """Pinhole camera looking down -z by default."""

    position: Vec3 = (0.0, 1.0, 4.0)
    look_at: Vec3 = (0.0, 0.5, 0.0)
    up: Vec3 = (0.0, 1.0, 0.0)
    fov_degrees: float = 55.0

    def primary_ray(self, px: float, py: float, width: int, height: int) -> tuple:
        """(origin, unit direction) of the ray through pixel (px, py)."""
        from repro.apps.ray.vec import cross

        forward = unit(sub(self.look_at, self.position))
        right = unit(cross(forward, self.up))
        true_up = cross(right, forward)
        aspect = width / height
        half_h = math.tan(math.radians(self.fov_degrees) / 2.0)
        half_w = half_h * aspect
        # NDC in [-1, 1], y flipped so row 0 is the top of the image.
        ndc_x = (2.0 * (px + 0.5) / width - 1.0) * half_w
        ndc_y = (1.0 - 2.0 * (py + 0.5) / height) * half_h
        direction = unit(
            add(add(forward, scale(right, ndc_x)), scale(true_up, ndc_y))
        )
        return self.position, direction


@dataclass
class Scene:
    """Primitives + lights + ambient/background terms."""

    objects: List[Primitive] = field(default_factory=list)
    lights: List[Light] = field(default_factory=list)
    camera: Camera = field(default_factory=Camera)
    ambient: Vec3 = (0.08, 0.08, 0.1)
    background: Vec3 = (0.15, 0.18, 0.26)

    def hit(self, origin: Vec3, direction: Vec3) -> Optional[Hit]:
        """Closest intersection along the ray, across all primitives."""
        best: Optional[Hit] = None
        for obj in self.objects:
            h = obj.intersect(origin, direction)
            if h is not None and (best is None or h.t < best.t):
                best = h
        return best

    def occluded(self, origin: Vec3, direction: Vec3, max_t: float) -> bool:
        """Is anything between origin and origin + max_t*direction?"""
        for obj in self.objects:
            h = obj.intersect(origin, direction)
            if h is not None and h.t < max_t:
                return True
        return False


def default_scene() -> Scene:
    """The benchmark scene: three spheres on a checkered floor, two lights.

    Chosen to exercise every tracer feature: diffuse + specular shading,
    shadows, and recursive reflection.
    """
    return Scene(
        objects=[
            Plane(
                (0.0, 0.0, 0.0),
                (0.0, 1.0, 0.0),
                Material(colour=(0.85, 0.85, 0.85), diffuse=0.9, specular=0.1,
                         reflectivity=0.12),
                checker=True,
            ),
            Sphere(
                (-1.1, 0.7, -0.4),
                0.7,
                Material(colour=(0.85, 0.25, 0.2), diffuse=0.8, specular=0.6,
                         shininess=48.0, reflectivity=0.25),
            ),
            Sphere(
                (0.9, 0.55, 0.3),
                0.55,
                Material(colour=(0.2, 0.4, 0.85), diffuse=0.8, specular=0.7,
                         shininess=64.0, reflectivity=0.35),
            ),
            Sphere(
                (-0.1, 0.35, 1.1),
                0.35,
                Material(colour=(0.25, 0.8, 0.35), diffuse=0.85, specular=0.4,
                         shininess=24.0, reflectivity=0.1),
            ),
        ],
        lights=[
            Light((4.0, 5.0, 3.0), (0.9, 0.9, 0.85)),
            Light((-3.0, 4.0, 1.5), (0.35, 0.35, 0.45)),
        ],
    )
