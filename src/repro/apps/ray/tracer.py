"""The recursive ray tracer: Phong shading, shadows, reflection.

:func:`render_rows` is the unit of work one parallel task performs; an
:class:`OpCounter` tallies intersection tests and shading operations so
the simulation can charge cycles proportional to the *real* work done.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps.ray.geometry import EPSILON
from repro.apps.ray.scene import Scene
from repro.apps.ray.vec import (
    Vec3,
    add,
    clamp01,
    dot,
    mul,
    norm,
    reflect,
    scale,
    sub,
    unit,
)

#: Maximum reflection recursion depth.
MAX_DEPTH = 3

#: Cycle costs per counted operation (the simulated-work model).
CYCLES_PER_INTERSECTION_TEST = 45.0
CYCLES_PER_SHADE = 90.0

Pixel = Tuple[float, float, float]
Image = Dict[int, List[Pixel]]


class OpCounter:
    """Counts the tracer's real operations for the cost model."""

    __slots__ = ("intersection_tests", "shades")

    def __init__(self) -> None:
        self.intersection_tests = 0
        self.shades = 0

    @property
    def cycles(self) -> float:
        return (
            self.intersection_tests * CYCLES_PER_INTERSECTION_TEST
            + self.shades * CYCLES_PER_SHADE
        )


def trace_ray(
    scene: Scene,
    origin: Vec3,
    direction: Vec3,
    depth: int = 0,
    ops: Optional[OpCounter] = None,
) -> Vec3:
    """Colour seen along a ray (recursive: shadows + reflections)."""
    if ops is not None:
        ops.intersection_tests += len(scene.objects)
    hit = scene.hit(origin, direction)
    if hit is None:
        return scene.background
    if ops is not None:
        ops.shades += 1
    material = hit.material
    colour = mul(scene.ambient, material.colour)
    view = scale(direction, -1.0)
    for light in scene.lights:
        to_light = sub(light.position, hit.point)
        dist = norm(to_light)
        l_dir = unit(to_light)
        shadow_origin = add(hit.point, scale(hit.normal, EPSILON * 10))
        if ops is not None:
            ops.intersection_tests += len(scene.objects)
        if scene.occluded(shadow_origin, l_dir, dist):
            continue
        lambert = dot(hit.normal, l_dir)
        if lambert > 0.0:
            colour = add(
                colour,
                scale(mul(light.intensity, material.colour),
                      material.diffuse * lambert),
            )
            half = unit(add(l_dir, view))
            spec = dot(hit.normal, half)
            if spec > 0.0:
                colour = add(
                    colour,
                    scale(light.intensity,
                          material.specular * (spec ** material.shininess)),
                )
    if material.reflectivity > 0.0 and depth < MAX_DEPTH:
        refl_dir = unit(reflect(direction, hit.normal))
        refl_origin = add(hit.point, scale(hit.normal, EPSILON * 10))
        reflected = trace_ray(scene, refl_origin, refl_dir, depth + 1, ops)
        colour = add(scale(colour, 1.0 - material.reflectivity),
                     scale(reflected, material.reflectivity))
    return clamp01(colour)


def render_rows(
    scene: Scene,
    width: int,
    height: int,
    row_start: int,
    row_end: int,
    ops: Optional[OpCounter] = None,
) -> Image:
    """Render scanlines [row_start, row_end) — one parallel task's work."""
    if not (0 <= row_start <= row_end <= height):
        raise ValueError(f"bad row range [{row_start}, {row_end}) for height {height}")
    image: Image = {}
    camera = scene.camera
    for y in range(row_start, row_end):
        row: List[Pixel] = []
        for x in range(width):
            origin, direction = camera.primary_ray(x, y, width, height)
            row.append(trace_ray(scene, origin, direction, 0, ops))
        image[y] = row
    return image


def render(
    scene: Scene, width: int, height: int, ops: Optional[OpCounter] = None
) -> Image:
    """Render the full image serially (the reference implementation)."""
    return render_rows(scene, width, height, 0, height, ops)
