"""The parallel ray-tracing job: divide-and-conquer over scanlines.

``ray my-scene`` in the paper renders a scene file across the network;
here :func:`ray_job` builds the equivalent job.  The task tree splits
the image's rows binarily until a block is at most ``rows_per_task``
high; leaves render their block (counting real tracer operations for
the cost model) and the joins merge partial images.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.ray.scene import Scene, default_scene
from repro.apps.ray.tracer import Image, OpCounter, render, render_rows
from repro.tasks.program import JobProgram, ThreadProgram

#: Fixed per-task bookkeeping cycles (block setup).
BLOCK_CYCLES = 60.0


def build_program(
    scene: Scene, width: int, height: int, rows_per_task: int
) -> ThreadProgram:
    """Build the ray program for one scene and image geometry."""
    if width < 1 or height < 1:
        raise ValueError("image dimensions must be positive")
    if rows_per_task < 1:
        raise ValueError("rows_per_task must be >= 1")
    prog = ThreadProgram(f"ray-{width}x{height}")

    @prog.thread
    def ray_block(frame, k, row_start, row_end):
        frame.work(BLOCK_CYCLES)
        rows = row_end - row_start
        if rows <= rows_per_task:
            ops = OpCounter()
            image = render_rows(scene, width, height, row_start, row_end, ops)
            frame.work(ops.cycles)
            frame.send(k, image)
            return
        mid = row_start + rows // 2
        succ = frame.successor(ray_merge, k)
        frame.spawn(ray_block, succ.cont(1), row_start, mid)
        frame.spawn(ray_block, succ.cont(2), mid, row_end)

    @prog.thread
    def ray_merge(frame, k, top, bottom):
        frame.work(BLOCK_CYCLES)
        merged: Image = dict(top)
        merged.update(bottom)
        frame.send(k, merged)

    @prog.thread
    def ray_root(frame, k):
        frame.work(BLOCK_CYCLES)
        frame.spawn(ray_block, k, 0, height)

    return prog


def ray_job(
    scene: Optional[Scene] = None,
    width: int = 64,
    height: int = 48,
    rows_per_task: int = 2,
    name: str | None = None,
) -> JobProgram:
    """Build the parallel rendering job (default: the benchmark scene)."""
    scene = scene or default_scene()
    prog = build_program(scene, width, height, rows_per_task)
    return JobProgram(prog, "ray_root", (), name=name or f"ray({width}x{height})")


class SerialRun:
    """Result of an instrumented serial render: image + cost model."""

    __slots__ = ("result", "work_cycles", "calls")

    def __init__(self, result: Image, work_cycles: float, calls: int) -> None:
        self.result = result
        self.work_cycles = work_cycles
        self.calls = calls


def ray_serial(
    scene: Optional[Scene] = None,
    width: int = 64,
    height: int = 48,
    rows_per_task: int = 2,
) -> SerialRun:
    """Best serial implementation: render row blocks in a plain loop.

    Performs the identical tracing work; the call count is the number of
    blocks (the serial code loops instead of spawning).
    """
    scene = scene or default_scene()
    ops = OpCounter()
    image = render(scene, width, height, ops)
    blocks = (height + rows_per_task - 1) // rows_per_task
    work = ops.cycles + blocks * BLOCK_CYCLES
    return SerialRun(image, work, blocks)
