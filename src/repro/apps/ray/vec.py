"""Minimal 3-vector algebra on tuples.

Tuples rather than a class: the tracer creates millions of vectors and
tuple arithmetic is the fastest pure-Python representation (see the
HPC guide's advice to keep hot-path allocations primitive).
"""

from __future__ import annotations

import math
from typing import Tuple

Vec3 = Tuple[float, float, float]


def add(a: Vec3, b: Vec3) -> Vec3:
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def sub(a: Vec3, b: Vec3) -> Vec3:
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def scale(a: Vec3, s: float) -> Vec3:
    return (a[0] * s, a[1] * s, a[2] * s)


def mul(a: Vec3, b: Vec3) -> Vec3:
    """Component-wise product (colour modulation)."""
    return (a[0] * b[0], a[1] * b[1], a[2] * b[2])


def dot(a: Vec3, b: Vec3) -> float:
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]


def cross(a: Vec3, b: Vec3) -> Vec3:
    return (
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    )


def norm(a: Vec3) -> float:
    return math.sqrt(dot(a, a))


def unit(a: Vec3) -> Vec3:
    n = norm(a)
    if n == 0.0:
        raise ValueError("cannot normalise the zero vector")
    return (a[0] / n, a[1] / n, a[2] / n)


def reflect(direction: Vec3, normal: Vec3) -> Vec3:
    """Reflect *direction* about *normal* (normal must be unit length)."""
    return sub(direction, scale(normal, 2.0 * dot(direction, normal)))


def clamp01(a: Vec3) -> Vec3:
    return (
        min(1.0, max(0.0, a[0])),
        min(1.0, max(0.0, a[1])),
        min(1.0, max(0.0, a[2])),
    )
