"""Simulated workstations: CPU cost model, owner activity, platforms.

This package stands in for the machines of the paper's testbed: a
network of SparcStation 1s (Figures 4/5, Table 2), a SparcStation 10
(Table 1, Phish column), and CM-5 nodes under the Strata library
(Table 1, CM-5 column).
"""

from repro.cluster.owner import (
    AlwaysBusyTrace,
    AlwaysIdleTrace,
    LoadThresholdPolicy,
    NobodyLoggedInPolicy,
    Owner,
    OwnerTrace,
    RenewalOwnerTrace,
    ScriptedTrace,
)
from repro.cluster.platform import (
    CM5_NODE,
    PLATFORMS,
    SPARCSTATION_1,
    SPARCSTATION_10,
    PlatformProfile,
)
from repro.cluster.workstation import Workstation

__all__ = [
    "Workstation",
    "PlatformProfile",
    "SPARCSTATION_1",
    "SPARCSTATION_10",
    "CM5_NODE",
    "PLATFORMS",
    "Owner",
    "OwnerTrace",
    "RenewalOwnerTrace",
    "ScriptedTrace",
    "AlwaysIdleTrace",
    "AlwaysBusyTrace",
    "NobodyLoggedInPolicy",
    "LoadThresholdPolicy",
]
