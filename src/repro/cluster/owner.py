"""Workstation owners: activity traces and idleness policies.

The paper's macro scheduler exists to harvest *owner-idle* time while
"allowing owners to retain sovereignty over their machines": each owner
chooses an idleness policy, and the PhishJobManager kills the worker
within seconds of the owner coming back.

Since real login traces from 1994 MIT LCS are not available, owner
behaviour is generated synthetically (the substitution documented in
DESIGN.md §2): a renewal process of alternating busy/idle periods whose
means are configurable, plus scripted and constant traces for tests.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Generator, Iterable, Iterator, List, Tuple

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.workstation import Workstation


class OwnerTrace:
    """Yields alternating (state, duration_s) pairs, state in {"busy","idle"}.

    Traces are iterators so they can be infinite; the :class:`Owner`
    process consumes them lazily.
    """

    def periods(self) -> Iterator[Tuple[str, float]]:
        raise NotImplementedError


class AlwaysIdleTrace(OwnerTrace):
    """Owner never logs in — dedicated benchmarking machines.

    This is the regime of the paper's measurements: "When doing this
    experiment, we used idle workstations."
    """

    def periods(self) -> Iterator[Tuple[str, float]]:
        return iter(())  # no transitions: starts idle, stays idle


class AlwaysBusyTrace(OwnerTrace):
    """Owner never logs out — a machine that never participates."""

    def periods(self) -> Iterator[Tuple[str, float]]:
        yield ("busy", float("inf"))


class ScriptedTrace(OwnerTrace):
    """An explicit list of (state, duration) periods, for tests."""

    def __init__(self, periods: Iterable[Tuple[str, float]]) -> None:
        self._periods: List[Tuple[str, float]] = list(periods)
        for state, dur in self._periods:
            if state not in ("busy", "idle"):
                raise ReproError(f"bad trace state {state!r}")
            if dur < 0:
                raise ReproError(f"negative trace duration {dur!r}")

    def periods(self) -> Iterator[Tuple[str, float]]:
        return iter(self._periods)


class RenewalOwnerTrace(OwnerTrace):
    """Alternating exponentially-distributed busy/idle periods.

    Models diurnal workstation usage at the granularity the macro
    scheduler samples it.  ``start_busy`` controls the initial state
    (drawn at construction for reproducibility).
    """

    def __init__(
        self,
        rng: random.Random,
        busy_mean_s: float = 3600.0,
        idle_mean_s: float = 7200.0,
        start_busy_prob: float = 0.5,
    ) -> None:
        if busy_mean_s <= 0 or idle_mean_s <= 0:
            raise ReproError("period means must be positive")
        self.rng = rng
        self.busy_mean_s = busy_mean_s
        self.idle_mean_s = idle_mean_s
        self.start_busy = rng.random() < start_busy_prob

    def periods(self) -> Iterator[Tuple[str, float]]:
        state = "busy" if self.start_busy else "idle"
        while True:
            mean = self.busy_mean_s if state == "busy" else self.idle_mean_s
            yield (state, self.rng.expovariate(1.0 / mean))
            state = "idle" if state == "busy" else "busy"


class Owner:
    """A simulation process that drives a workstation's owner state.

    Sets ``workstation.user_logged_in`` (and a crude load average: 1.0
    while busy, 0.0 while idle) according to the trace.  The
    PhishJobManager never sees the trace — it only polls the
    workstation's state, exactly as the real daemon polled ``who``.
    """

    def __init__(self, workstation: "Workstation", trace: OwnerTrace) -> None:
        self.workstation = workstation
        self.trace = trace
        self.process = workstation.sim.process(
            self._run(), name=f"owner@{workstation.name}"
        )

    def _run(self) -> Generator:
        ws = self.workstation
        first = True
        for state, duration in self.trace.periods():
            busy = state == "busy"
            ws.user_logged_in = busy
            ws.load = 1.0 if busy else 0.0
            first = False
            if duration == float("inf"):
                return
            yield ws.sim.timeout(duration)
        if first:
            # Empty trace: machine starts and stays idle.
            ws.user_logged_in = False
            ws.load = 0.0


class NobodyLoggedInPolicy:
    """The paper's "very conservative" default: idle iff nobody logged in."""

    name = "nobody-logged-in"

    def is_idle(self, workstation: "Workstation") -> bool:
        return not workstation.user_logged_in


class LoadThresholdPolicy:
    """Idle while the load average sits below a threshold.

    The paper: "Other owners may make their machines available so long
    as the CPU load is below some threshold."
    """

    name = "load-threshold"

    def __init__(self, threshold: float = 0.25) -> None:
        if threshold <= 0:
            raise ReproError("load threshold must be positive")
        self.threshold = threshold

    def is_idle(self, workstation: "Workstation") -> bool:
        return workstation.load < self.threshold
