"""Platform profiles: CPU speed, network costs, scheduling overheads.

A :class:`PlatformProfile` bundles everything that distinguishes "a
SparcStation 10 running Phish over Ethernet" from "a CM-5 node running
Strata over the fat-tree": how fast instructions retire, what a message
costs, and what the per-task scheduling machinery costs.

Calibration notes (these are *model constants*, chosen to sit in the
historically plausible range and documented in EXPERIMENTS.md):

* SparcStation 1: ~12.5 MIPS (20 MHz SPARC).  SparcStation 10: ~100
  MIPS.  CM-5 node: 32 MHz SPARC, ~25 MIPS.
* Workstation UDP/IP messaging: ~1 ms software overhead per end, 10 Mbit/s
  shared Ethernet.  CM-5 data network: ~3 µs per active message end,
  ~10 MB/s per node — the "two orders of magnitude" gap the paper cites
  for both overhead and bisection bandwidth.
* Per-task scheduling overheads are what Table 1's serial-slowdown
  experiment measures.  Strata schedules a *static* processor set; Phish
  "must work harder in its scheduling because it operates with a dynamic
  processor set", which the ``dynamic_set_cycles`` term models.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.errors import ReproError
from repro.net.network import NetworkParams


@dataclass(frozen=True)
class PlatformProfile:
    """Constants describing one machine type + runtime-system combination.

    Attributes:
        name: profile name (registry key).
        mips: CPU speed in millions of simulated instructions ("cycles")
            per second; all work and overheads are expressed in cycles.
        net: link parameters this machine pays for messaging.
        spawn_cycles: packaging one task so it can run in parallel
            (closure allocation + argument copy + deque push) — the cost
            a plain procedure call avoids in the serial code.
        schedule_cycles: dispatching one ready task (deque pop, joins).
        sync_cycles: one local ``send_argument`` (decrement a join
            counter, write a slot).
        poll_cycles: one poll of the network between task executions.
        dynamic_set_cycles: extra per-task bookkeeping a *dynamic*
            processor set costs (participant table checks, migration
            readiness); zero for Strata's static set.
        scheduler: human-readable runtime-system name.
    """

    name: str
    mips: float
    net: NetworkParams
    spawn_cycles: float
    schedule_cycles: float
    sync_cycles: float
    poll_cycles: float
    dynamic_set_cycles: float
    scheduler: str

    def __post_init__(self) -> None:
        if self.mips <= 0:
            raise ReproError(f"profile {self.name!r}: mips must be positive")
        for fieldname in (
            "spawn_cycles",
            "schedule_cycles",
            "sync_cycles",
            "poll_cycles",
            "dynamic_set_cycles",
        ):
            if getattr(self, fieldname) < 0:
                raise ReproError(f"profile {self.name!r}: {fieldname} must be >= 0")

    @property
    def cycles_per_second(self) -> float:
        return self.mips * 1e6

    def seconds(self, cycles: float) -> float:
        """Convert simulated instruction cycles to simulated seconds."""
        return cycles / self.cycles_per_second

    def task_overhead_cycles(self) -> float:
        """Total per-task scheduling overhead the parallel code pays."""
        return (
            self.spawn_cycles
            + self.schedule_cycles
            + self.sync_cycles
            + self.poll_cycles
            + self.dynamic_set_cycles
        )

    def derive(self, **changes) -> "PlatformProfile":
        """A copy with some fields replaced (for ablations)."""
        return replace(self, **changes)


#: Mid-90s Ethernet + UDP/IP as seen by a workstation.
ETHERNET_UDP = NetworkParams(
    send_overhead_s=1.0e-3,
    recv_overhead_s=1.0e-3,
    wire_latency_s=0.5e-3,
    bandwidth_bytes_per_s=1.25e6,  # 10 Mbit/s shared
)

#: CM-5 data network with active messages (per-node view).
CM5_INTERCONNECT = NetworkParams(
    send_overhead_s=3.0e-6,
    recv_overhead_s=3.0e-6,
    wire_latency_s=1.0e-6,
    bandwidth_bytes_per_s=1.0e7,  # ~10 MB/s per node
)

SPARCSTATION_1 = PlatformProfile(
    name="sparcstation-1",
    mips=12.5,
    net=ETHERNET_UDP,
    spawn_cycles=30.0,
    schedule_cycles=19.0,
    sync_cycles=9.0,
    poll_cycles=6.0,
    dynamic_set_cycles=19.0,
    scheduler="phish",
)

SPARCSTATION_10 = PlatformProfile(
    name="sparcstation-10",
    mips=100.0,
    net=ETHERNET_UDP,
    spawn_cycles=30.0,
    schedule_cycles=19.0,
    sync_cycles=9.0,
    poll_cycles=6.0,
    dynamic_set_cycles=19.0,
    scheduler="phish",
)

CM5_NODE = PlatformProfile(
    name="cm5-node",
    mips=25.0,
    net=CM5_INTERCONNECT,
    spawn_cycles=30.0,
    schedule_cycles=17.0,
    sync_cycles=8.5,
    poll_cycles=5.0,
    dynamic_set_cycles=0.0,  # Strata: static processor set
    scheduler="strata",
)

PLATFORMS: Dict[str, PlatformProfile] = {
    profile.name: profile for profile in (SPARCSTATION_1, SPARCSTATION_10, CM5_NODE)
}


def get_platform(name: str) -> PlatformProfile:
    """Look a profile up by name, with a helpful error."""
    try:
        return PLATFORMS[name]
    except KeyError:
        known = ", ".join(sorted(PLATFORMS))
        raise ReproError(f"unknown platform {name!r}; known: {known}") from None
