"""The simulated workstation: CPU time, owner state, crash faults."""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.platform import PlatformProfile
from repro.errors import ReproError
from repro.net.network import Network
from repro.sim.core import Event, Process, Simulator


class Workstation:
    """One machine on the simulated network.

    Provides:

    * a clock-speed-aware ``execute(cycles)`` primitive for simulated
      computation, with `rusage`-style busy-time accounting (message
      software overheads are charged here too, via the network's CPU
      hook);
    * owner state (``user_logged_in``, ``load``) driven by an
      :class:`~repro.cluster.owner.Owner` process and read by idleness
      policies;
    * crash faults: :meth:`crash` partitions the host off the network
      and interrupts every registered process, which is how the
      fault-tolerance experiments kill machines.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        profile: PlatformProfile,
        network: Optional[Network] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.profile = profile
        self.network = network
        #: Accumulated CPU-busy seconds ("rusage"): compute + messaging.
        self.cpu_busy_s = 0.0
        self.user_logged_in = False
        self.load = 0.0
        self.crashed = False
        #: Processes to interrupt if this machine crashes.
        self._registered: List[Process] = []
        if network is not None:
            network.attach_cpu(name, self.charge)

    # -- computation ---------------------------------------------------------

    def seconds_for(self, cycles: float) -> float:
        """Wall-clock seconds this machine needs for *cycles* of work."""
        return self.profile.seconds(cycles)

    def charge(self, seconds: float) -> None:
        """Add busy time without blocking (used for messaging overhead)."""
        if seconds < 0:
            raise ReproError("cannot charge negative CPU time")
        self.cpu_busy_s += seconds

    def execute(self, cycles: float) -> Event:
        """Perform *cycles* of computation: an event after the right delay.

        Yields control to the kernel so concurrent activity (arriving
        steal requests, owner logins) interleaves at task boundaries,
        matching the paper's poll-between-tasks discipline.
        """
        if self.crashed:
            raise ReproError(f"execute() on crashed workstation {self.name!r}")
        seconds = self.seconds_for(cycles)
        self.cpu_busy_s += seconds
        return self.sim.timeout(seconds)

    # -- process registration / faults ---------------------------------------

    def register_process(self, proc: Process) -> None:
        """Track a process so a crash can take it down with the machine."""
        self._registered.append(proc)

    def unregister_process(self, proc: Process) -> None:
        try:
            self._registered.remove(proc)
        except ValueError:
            pass

    def crash(self, cause: str = "machine-crash") -> None:
        """Fail-stop the machine: network silence + all processes killed."""
        if self.crashed:
            return
        self.crashed = True
        if self.network is not None:
            self.network.set_host_down(self.name, True)
        procs, self._registered = self._registered, []
        for proc in procs:
            proc.interrupt(cause)

    def recover(self) -> None:
        """Bring a crashed machine back (reboot); processes are gone."""
        if not self.crashed:
            return
        self.crashed = False
        if self.network is not None:
            self.network.set_host_down(self.name, False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else ("busy" if self.user_logged_in else "idle")
        return f"<Workstation {self.name} ({self.profile.name}) {state}>"
