"""Command-line entry point: regenerate the paper's exhibits.

Usage::

    python -m repro.cli table1
    python -m repro.cli table2
    python -m repro.cli figure4
    python -m repro.cli figure5
    python -m repro.cli ablations [order|victim|initiation|sharing|
                                   retirement|faults|heterogeneity|all]
    python -m repro.cli macro-demo
    python -m repro.cli check --seeds 100 --app fib
    python -m repro.cli bench --out BENCH_kernel.json

``--seed`` controls every random stream; runs are fully reproducible.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _cmd_table1(args: argparse.Namespace) -> str:
    from repro.experiments.table1 import format_table1, run_table1

    return format_table1(run_table1(seed=args.seed))


def _cmd_table2(args: argparse.Namespace) -> str:
    from repro.experiments.table2 import format_table2, run_table2

    return format_table2(run_table2(seed=args.seed))


def _cmd_figure4(args: argparse.Namespace) -> str:
    from repro.experiments.figures import format_figure4, run_speedup_curve

    return format_figure4(run_speedup_curve(seed=args.seed))


def _cmd_figure5(args: argparse.Namespace) -> str:
    from repro.experiments.figures import format_figure5, run_speedup_curve

    return format_figure5(run_speedup_curve(seed=args.seed))


def _cmd_ablations(args: argparse.Namespace) -> str:
    from repro.experiments import ablations as ab

    which = args.which
    sections: List[str] = []

    def want(name: str) -> bool:
        return which in ("all", name)

    if want("order"):
        sections.append(ab.format_order_ablation(ab.run_order_ablation(args.seed)))
    if want("victim"):
        sections.append(ab.format_victim_ablation(ab.run_victim_ablation(args.seed)))
    if want("initiation"):
        sections.append(
            ab.format_initiation_ablation(ab.run_initiation_ablation(args.seed))
        )
    if want("sharing"):
        sections.append(ab.format_sharing_ablation(ab.run_sharing_ablation(seed=args.seed)))
    if want("retirement"):
        sections.append(
            ab.format_retirement_ablation(ab.run_retirement_ablation(seed=args.seed))
        )
    if want("faults"):
        sections.append(ab.format_fault_ablation(ab.run_fault_ablation(seed=args.seed)))
    if want("heterogeneity"):
        sections.append(
            ab.format_heterogeneity_ablation(ab.run_heterogeneity_ablation(args.seed))
        )
    if not sections:
        raise SystemExit(f"unknown ablation {which!r}")
    return "\n\n".join(sections)


def _cmd_macro_demo(args: argparse.Namespace) -> str:
    """A small end-to-end macro-level scenario with owner churn."""
    from repro.apps.nqueens import nqueens_job
    from repro.apps.pfold import pfold_job
    from repro.cluster.owner import AlwaysIdleTrace, ScriptedTrace
    from repro.experiments.report import render_table
    from repro.macro import PhishSystem, PhishSystemConfig

    def traces(rng, host):
        if host in ("ws02", "ws03"):
            return ScriptedTrace([("idle", 3.0), ("busy", 12.0), ("idle", 1e9)])
        return AlwaysIdleTrace()

    system = PhishSystem(
        PhishSystemConfig(n_workstations=6, seed=args.seed, owner_trace=traces)
    )
    h1 = system.submit(pfold_job("HPHPPHHPHPPH", work_scale=40.0), from_host="ws00")
    h2 = system.submit(nqueens_job(8), from_host="ws01")
    system.run_until_done(timeout_s=3600)
    rows = []
    for name, jm in sorted(system.jobmanagers.items()):
        rows.append((name, jm.jobs_started, jm.workers_reclaimed))
    table = render_table(
        "Macro demo — 2 jobs, 6 workstations, owners reclaiming ws02/ws03",
        ["workstation", "workers started", "workers reclaimed"],
        rows,
    )
    return (
        table
        + f"\npfold result bins: {len(h1.result.counts)}  "
        + f"nqueens(8) = {h2.result}  "
        + f"finished at t={system.sim.now:.1f}s simulated"
    )


def _cmd_check(args: argparse.Namespace) -> str:
    """Fuzz the schedule space and check every run against the runtime
    invariants (see docs/checking.md)."""
    from repro.check import fuzz

    def progress(seed, run) -> None:
        sys.stderr.write("." if run.ok else "F")
        sys.stderr.flush()

    result = fuzz(
        app=args.app,
        n_seeds=args.seeds,
        start_seed=args.seed,
        n_workers=args.workers,
        bug=args.inject_bug,
        progress=progress,
    )
    sys.stderr.write("\n")
    if not result.ok:
        # Non-zero exit so CI fails loudly; the summary names the seeds
        # and prints shrunk reproducing schedules.
        print(result.summary())
        raise SystemExit(1)
    return result.summary()


def _cmd_bench(args: argparse.Namespace) -> str:
    """Benchmark the simulation substrate and record BENCH_kernel.json
    (see docs/performance.md)."""
    from repro.bench import format_bench, run_bench, write_bench

    results = run_bench(repeats=args.repeats, quick=args.quick)
    write_bench(results, args.out)
    return format_bench(results) + f"\n\nwrote {args.out}"


def _cmd_harvest(args: argparse.Namespace) -> str:
    from repro.experiments.harvest import format_harvest, run_harvest

    return format_harvest(run_harvest(seed=args.seed))


def _cmd_timeline(args: argparse.Namespace) -> str:
    """Worker-activity timeline of a run with owner churn and a crash."""
    from repro.apps.pfold import pfold_job
    from repro.cluster.owner import AlwaysIdleTrace, ScriptedTrace
    from repro.macro import PhishSystem, PhishSystemConfig
    from repro.viz.timeline import render_timeline

    def traces(rng, host):
        if host in ("ws03", "ws04"):
            return ScriptedTrace([("idle", 3.0 + args.seed % 3), ("busy", 1e9)])
        return AlwaysIdleTrace()

    system = PhishSystem(
        PhishSystemConfig(n_workstations=6, seed=args.seed, owner_trace=traces,
                          trace=True)
    )
    system.submit(pfold_job("HPHPPHHPHPPH", work_scale=60.0), from_host="ws00")
    system.run_until_done(timeout_s=36000)
    assert system.trace is not None
    return render_timeline(system.trace)


COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "figure4": _cmd_figure4,
    "figure5": _cmd_figure5,
    "ablations": _cmd_ablations,
    "macro-demo": _cmd_macro_demo,
    "timeline": _cmd_timeline,
    "harvest": _cmd_harvest,
    "check": _cmd_check,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="phish-repro",
        description="Regenerate the tables and figures of Blumofe & Park (HPDC'94).",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("table1", "table2", "figure4", "figure5", "macro-demo",
                 "timeline", "harvest"):
        sub.add_parser(name)
    ab = sub.add_parser("ablations")
    ab.add_argument(
        "which",
        nargs="?",
        default="all",
        choices=["all", "order", "victim", "initiation", "sharing",
                 "retirement", "faults", "heterogeneity"],
    )
    bench = sub.add_parser(
        "bench",
        help="benchmark the simulation substrate (kernel event throughput, "
             "process switching, fib/knary macro runs) and write the "
             "baseline file",
    )
    bench.add_argument("--out", default="BENCH_kernel.json",
                       help="output JSON path (default BENCH_kernel.json)")
    bench.add_argument("--repeats", type=int, default=10,
                       help="kernel-benchmark repetitions; wall numbers are "
                            "best-of-N (default 10)")
    bench.add_argument("--quick", action="store_true",
                       help="fewer repetitions (smoke-test mode)")
    chk = sub.add_parser(
        "check",
        help="fuzz schedules (tie-breaks, jitter, crashes, reclaims) and "
             "verify runtime invariants on every run",
    )
    chk.add_argument("--seeds", type=int, default=25,
                     help="number of fuzz seeds to run (default 25)")
    chk.add_argument("--app", default="fib", choices=["fib", "knary", "shrink"],
                     help="application to fuzz (default fib)")
    chk.add_argument("--workers", type=int, default=4,
                     help="cluster size (default 4)")
    chk.add_argument("--inject-bug", default=None,
                     choices=["skip-redo", "drop-migration", "dup-exec"],
                     help="deliberately break the scheduler to prove the "
                          "checker catches it")
    args = parser.parse_args(argv)
    started = time.time()
    output = COMMANDS[args.command](args)
    print(output)
    print(f"\n[{args.command} regenerated in {time.time() - started:.1f}s real time]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
