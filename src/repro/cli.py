"""Command-line entry point: regenerate the paper's exhibits.

Usage::

    python -m repro.cli table1
    python -m repro.cli table2
    python -m repro.cli figure4
    python -m repro.cli figure5
    python -m repro.cli ablations [order|victim|initiation|sharing|
                                   retirement|faults|heterogeneity|all]
    python -m repro.cli macro-demo
    python -m repro.cli latency --jobs 4
    python -m repro.cli traffic --policies rr,srp,fair,interrupt --jobs 4
    python -m repro.cli check --seeds 100 --app fib --jobs 4
    python -m repro.cli check --seeds 25 --scenario partition
    python -m repro.cli bench --out BENCH_kernel.json
    python -m repro.cli obs --seed 1 --app fib
    python -m repro.cli timeline --perfetto out.json

``--seed`` controls every random stream; runs are fully reproducible.
``check``, ``figure4``/``figure5``/``table2``, ``ablations`` and
``harvest --reps N`` accept ``--jobs N`` to fan independent runs out
over a process pool (0 = one per CPU); outputs are byte-identical at
any ``--jobs`` (see docs/checking.md, "Parallel runs").
``table2``/``figure4``/``figure5``/``bench`` accept ``--manifest PATH``
to drop a provenance manifest (see docs/observability.md) next to the
printed output; ``check --manifest`` additionally records merged
per-shard metrics and the fan-out speedup.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _obs_job(app: str, scale: Optional[int] = None):
    """Build the job an ``obs`` run measures (small by default: the
    point is the metrics, not the workload)."""
    if app == "fib":
        from repro.apps.fib import fib_job
        return fib_job(scale if scale is not None else 22)
    if app == "knary":
        from repro.apps.knary import knary_job
        return knary_job(scale if scale is not None else 7, 4, 1)
    if app == "pfold":
        from repro.apps.pfold import pfold_job
        return pfold_job("HPHPPHHPHPPH", work_scale=float(scale or 40))
    raise SystemExit(f"unknown obs app {app!r}")


def _fmt_s(value: Optional[float]) -> str:
    """Human-readable seconds (or '-' when there is no data)."""
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def _cmd_obs(args: argparse.Namespace) -> str:
    """Run a seeded job with full observability wired in and report."""
    from repro.experiments.report import render_table
    from repro.obs import MetricsRegistry, build_manifest, write_manifest
    from repro.phish import run_job

    registry = MetricsRegistry()
    started = time.time()
    res = run_job(
        _obs_job(args.app, args.scale),
        n_workers=args.workers,
        seed=args.seed,
        trace=True,
        metrics=registry,
    )
    wall = time.time() - started

    hist_rows = []
    for name in registry.names():
        inst = registry.get(name)
        if inst.kind != "histogram" or inst.count == 0:
            continue
        # The `_s` naming convention marks seconds-valued metrics;
        # everything else (deque depth) is a plain quantity.
        fmt = _fmt_s if name.endswith("_s") else (lambda v: f"{v:.1f}")
        hist_rows.append((
            name, inst.count,
            fmt(inst.percentile(0.50)),
            fmt(inst.percentile(0.90)),
            fmt(inst.percentile(0.99)),
            fmt(inst.mean),
        ))
    sections = [render_table(
        f"Latency/size distributions — {args.app} seed={args.seed} "
        f"P={args.workers}",
        ["metric", "n", "p50", "p90", "p99", "mean"],
        hist_rows,
    )]

    scalar_rows = []
    for name in registry.names():
        inst = registry.get(name)
        if inst.kind == "counter":
            scalar_rows.append((name, inst.value))
        elif inst.kind == "gauge":
            scalar_rows.append((name, f"{inst.value:g} (peak {inst.peak:g})"))
    scalar_rows.append(("job.result", res.result))
    scalar_rows.append(("job.makespan_s", f"{res.makespan:.4f}"))
    scalar_rows.append(("job.tasks_executed", res.stats.tasks_executed))
    scalar_rows.append(("job.tasks_stolen", res.stats.tasks_stolen))
    sections.append(render_table(
        "Counters", ["metric", "value"], scalar_rows,
    ))

    manifest = build_manifest(
        command="obs",
        seed=args.seed,
        app=args.app,
        cluster={"workers": args.workers, "profile": "SparcStation-1"},
        wall_s=wall,
        registry=registry,
        extra={"makespan_s": res.makespan},
    )
    write_manifest(manifest, args.manifest)
    sections.append(f"wrote manifest {args.manifest}")
    return "\n\n".join(sections)


def _maybe_manifest(
    args: argparse.Namespace,
    command: str,
    app: str,
    cluster: dict,
    wall_s: float,
) -> str:
    """Write a provenance manifest when the command got ``--manifest``."""
    path = getattr(args, "manifest", None)
    if not path:
        return ""
    from repro.obs import build_manifest, write_manifest

    manifest = build_manifest(
        command=command,
        seed=getattr(args, "seed", 0),
        app=app,
        cluster=cluster,
        wall_s=wall_s,
    )
    write_manifest(manifest, path)
    return f"\n\nwrote manifest {path}"


def _cmd_table1(args: argparse.Namespace) -> str:
    from repro.experiments.table1 import format_table1, run_table1

    return format_table1(run_table1(seed=args.seed))


def _cmd_table2(args: argparse.Namespace) -> str:
    from repro.experiments.table2 import format_table2, run_table2

    started = time.time()
    out = format_table2(run_table2(seed=args.seed, jobs=args.jobs))
    return out + _maybe_manifest(
        args, "table2", "pfold", {"workers": [4, 8]}, time.time() - started
    )


def _cmd_figure4(args: argparse.Namespace) -> str:
    from repro.experiments.figures import (
        PAPER_PARTICIPANTS, format_figure4, run_speedup_curve,
    )

    started = time.time()
    out = format_figure4(run_speedup_curve(seed=args.seed, jobs=args.jobs))
    return out + _maybe_manifest(
        args, "figure4", "pfold", {"workers": list(PAPER_PARTICIPANTS)},
        time.time() - started,
    )


def _cmd_figure5(args: argparse.Namespace) -> str:
    from repro.experiments.figures import (
        PAPER_PARTICIPANTS, format_figure5, run_speedup_curve,
    )

    started = time.time()
    out = format_figure5(run_speedup_curve(seed=args.seed, jobs=args.jobs))
    return out + _maybe_manifest(
        args, "figure5", "pfold", {"workers": list(PAPER_PARTICIPANTS)},
        time.time() - started,
    )


def _cmd_ablations(args: argparse.Namespace) -> str:
    from repro.experiments.ablations import SECTIONS, run_sections

    which = args.which
    names = list(SECTIONS) if which == "all" else [which]
    if not all(name in SECTIONS for name in names):
        raise SystemExit(f"unknown ablation {which!r}")
    return "\n\n".join(run_sections(names, seed=args.seed, jobs=args.jobs))


def _cmd_macro_demo(args: argparse.Namespace) -> str:
    """A small end-to-end macro-level scenario with owner churn."""
    from repro.apps.nqueens import nqueens_job
    from repro.apps.pfold import pfold_job
    from repro.cluster.owner import AlwaysIdleTrace, ScriptedTrace
    from repro.experiments.report import render_table
    from repro.macro import PhishSystem, PhishSystemConfig

    def traces(rng, host):
        if host in ("ws02", "ws03"):
            return ScriptedTrace([("idle", 3.0), ("busy", 12.0), ("idle", 1e9)])
        return AlwaysIdleTrace()

    system = PhishSystem(
        PhishSystemConfig(n_workstations=6, seed=args.seed, owner_trace=traces)
    )
    h1 = system.submit(pfold_job("HPHPPHHPHPPH", work_scale=40.0), from_host="ws00")
    h2 = system.submit(nqueens_job(8), from_host="ws01")
    system.run_until_done(timeout_s=3600)
    rows = []
    for name, jm in sorted(system.jobmanagers.items()):
        rows.append((name, jm.jobs_started, jm.workers_reclaimed))
    table = render_table(
        "Macro demo — 2 jobs, 6 workstations, owners reclaiming ws02/ws03",
        ["workstation", "workers started", "workers reclaimed"],
        rows,
    )
    return (
        table
        + f"\npfold result bins: {len(h1.result.counts)}  "
        + f"nqueens(8) = {h2.result}  "
        + f"finished at t={system.sim.now:.1f}s simulated"
    )


def _cmd_check(args: argparse.Namespace) -> str:
    """Fuzz the schedule space and check every run against the runtime
    invariants (see docs/checking.md).  ``--jobs N`` shards the seed
    range over worker processes; the merged result is byte-identical to
    the serial sweep."""
    from repro.check import fuzz_sharded

    def progress(seed: int, ok: bool) -> None:
        sys.stderr.write("." if ok else "F")
        sys.stderr.flush()

    if args.verify_queue:
        from repro.check import verify_queue_backends

        started = time.time()
        result = verify_queue_backends(
            app=args.app,
            n_seeds=args.seeds,
            start_seed=args.seed,
            n_workers=args.workers,
            scenario=args.scenario,
            progress=progress,
        )
        sys.stderr.write(
            f"\n{len(result.seeds)} seeds x 2 backends in "
            f"{time.time() - started:.1f}s\n"
        )
        if not result.ok:
            print(result.summary())
            raise SystemExit(1)
        return result.summary()

    started = time.time()
    outcome = fuzz_sharded(
        app=args.app,
        n_seeds=args.seeds,
        start_seed=args.seed,
        n_workers=args.workers,
        bug=args.inject_bug,
        jobs=args.jobs,
        progress=progress,
        scenario=args.scenario,
        queue=args.queue,
    )
    elapsed = time.time() - started
    result, stats = outcome.result, outcome.stats
    sys.stderr.write("\n")
    # Fuzz-budget telemetry: CI logs make seeds/s regressions visible.
    n = max(1, len(result.seeds))
    sys.stderr.write(
        f"{len(result.seeds)} seeds in {elapsed:.1f}s "
        f"({n / elapsed:.1f} seeds/s, jobs={stats.effective_jobs}, "
        f"mode={stats.mode})\n"
    )
    if stats.effective_jobs > 1:
        for shard in stats.shards:
            sys.stderr.write(
                f"  shard {shard.index:2d}: {shard.description} "
                f"in {shard.wall_s:.2f}s (pid {shard.pid})\n"
            )
        sys.stderr.write(
            f"  shard work {stats.work_s:.1f}s / wall {stats.wall_s:.1f}s "
            f"= {stats.speedup:.2f}x harvest\n"
        )
    if getattr(args, "manifest", None):
        from repro.obs import build_manifest, write_manifest

        manifest = build_manifest(
            command="check",
            seed=args.seed,
            app=args.app,
            cluster={"workers": args.workers, "profile": "SparcStation-1"},
            wall_s=elapsed,
            metrics_snapshot=outcome.metrics,
            extra={
                "parallel": stats.to_dict(),
                "fuzz": {
                    "seeds": len(result.seeds),
                    "failures": len(result.failures),
                    "bug": result.bug,
                    "scenario": result.scenario,
                },
            },
        )
        write_manifest(manifest, args.manifest)
        sys.stderr.write(f"wrote manifest {args.manifest}\n")
    if not result.ok:
        # Non-zero exit so CI fails loudly; the summary names the seeds
        # and prints shrunk reproducing schedules.
        print(result.summary())
        raise SystemExit(1)
    return result.summary()


def _cmd_latency(args: argparse.Namespace) -> str:
    """Makespan vs steal latency per victim/steal policy, against the
    Gast et al. analytical bound (see docs/stealing.md)."""
    from repro.experiments.latency import format_latency, run_latency_sweep

    started = time.time()
    sweep = run_latency_sweep(seed=args.seed, jobs=args.jobs,
                              n_workers=args.workers)
    return format_latency(sweep) + _maybe_manifest(
        args, "latency", "pfold", {"workers": args.workers, "segments": 2},
        time.time() - started,
    )


def _cmd_traffic(args: argparse.Namespace) -> str:
    """Policy × arrival competition under thousand-job synthetic
    traffic on the real PhishJobQ (see docs/traffic.md)."""
    from repro.experiments.traffic import format_traffic, run_traffic_matrix
    from repro.macro.traffic import TrafficConfig

    started = time.time()
    base = TrafficConfig(
        rate_per_s=args.rate,
        owners=args.owners,
        sizes=args.sizes,
    )
    matrix = run_traffic_matrix(
        policies=[p for p in args.policies.split(",") if p],
        arrivals=[a for a in args.arrivals.split(",") if a],
        n_jobs=args.njobs,
        n_workstations=args.machines,
        seed=args.seed,
        jobs=args.jobs,
        base=base,
    )
    return format_traffic(matrix) + _maybe_manifest(
        args, "traffic", "traffic",
        {"workers": args.machines, "n_jobs": args.njobs},
        time.time() - started,
    )


def _cmd_bench(args: argparse.Namespace) -> str:
    """Benchmark the simulation substrate and record BENCH_kernel.json
    (see docs/performance.md)."""
    from repro.bench import format_bench, run_bench, write_bench

    started = time.time()
    results = run_bench(repeats=args.repeats, quick=args.quick,
                        profile=args.profile)
    write_bench(results, args.out)
    return (
        format_bench(results)
        + f"\n\nwrote {args.out}"
        + _maybe_manifest(args, "bench", "-", {"workers": 0},
                          time.time() - started)
    )


def _cmd_harvest(args: argparse.Namespace) -> str:
    from repro.experiments.harvest import (
        format_harvest, format_harvest_sweep, run_harvest, run_harvest_sweep,
    )

    if args.reps <= 1:
        return format_harvest(run_harvest(seed=args.seed))
    seeds = list(range(args.seed, args.seed + args.reps))
    reports = run_harvest_sweep(seeds, jobs=args.jobs)
    return format_harvest_sweep(seeds, reports)


def _warn_truncated(trace, stream=None) -> bool:
    """Stderr warning when an exported TraceLog lost its oldest events
    to the capacity bound — the Perfetto doc then renders a history
    that *starts mid-run*, which is silent data loss unless flagged.
    Returns True when a warning was emitted (testable seam)."""
    if not trace.truncated:
        return False
    print(
        f"warning: trace log truncated — {trace.dropped} oldest events "
        f"were dropped (capacity {trace.capacity}); the exported "
        f"timeline starts mid-run (otherData.trace_dropped records the "
        f"count)",
        file=stream if stream is not None else sys.stderr,
    )
    return True


def _cmd_profile(args: argparse.Namespace) -> str:
    """Critical-path profile of one seeded run: T1 / T-inf, efficiency
    vs the greedy and Gast latency-aware bounds, per-worker overhead
    attribution (see docs/observability.md, "Profiling")."""
    from repro.cluster.platform import SPARCSTATION_1
    from repro.experiments.report import render_attribution, render_table
    from repro.micro.worker import WorkerConfig
    from repro.obs import JsonlSpanSink, SpanProfiler, StreamingPerfettoWriter, TeeSink
    from repro.phish import run_job

    sinks = []
    jsonl = perfetto = None
    if args.out:
        jsonl = JsonlSpanSink(args.out, buffer_events=args.buffer,
                              meta={"app": args.app, "seed": args.seed,
                                    "workers": args.workers})
        sinks.append(jsonl)
    if args.perfetto:
        perfetto = StreamingPerfettoWriter(args.perfetto, job_name=args.app,
                                           buffer_events=args.buffer)
        sinks.append(perfetto)
    sink = None
    if len(sinks) == 1:
        sink = sinks[0]
    elif sinks:
        sink = TeeSink(sinks)

    prof = SpanProfiler(sink=sink)
    cfg = WorkerConfig()
    res = run_job(
        _obs_job(args.app, args.scale),
        n_workers=args.workers,
        seed=args.seed,
        worker_config=cfg,
        profiler=prof,
    )
    summary = res.profile
    assert summary is not None

    sections = [render_table(
        f"Critical-path profile — {args.app} seed={args.seed} "
        f"P={args.workers}",
        ["quantity", "value"],
        [
            ("result", res.result),
            ("tasks executed (nodes)", summary["nodes"]),
            ("dependency edges", summary["edges"]),
            ("critical-path depth (nodes)", summary["max_depth"]),
            ("redo copies", summary["redo_copies"]),
            ("T1 (total work)", _fmt_s(summary["t1_s"])),
            ("T-inf (span)", _fmt_s(summary["t_inf_s"])),
            ("parallelism T1/T-inf", f"{summary['parallelism']:.2f}"),
            ("steal requests / stolen", f"{summary['steal_requests']} / "
                                        f"{summary['tasks_stolen']}"),
            ("tasks migrated", summary["tasks_migrated"]),
            ("wire messages (bytes)", f"{summary['msgs']} "
                                      f"({summary['msg_bytes']})"),
            ("heartbeats", summary["heartbeats"]),
        ],
    )]

    lam = SPARCSTATION_1.net.wire_latency_s
    bounds = prof.bound_report(res.makespan, args.workers, lam,
                               startup_s=cfg.startup_cost_s)
    sections.append(render_table(
        "Makespan vs analytical bounds",
        ["bound", "seconds", "makespan / bound"],
        [
            ("measured makespan", _fmt_s(bounds["makespan_s"]), "1.00"),
            ("greedy  T1/P + T-inf", _fmt_s(bounds["greedy_bound_s"]),
             f"{bounds['vs_greedy']:.2f}"),
            (f"Gast (latency-aware, lam={lam * 1e3:.2f}ms)",
             _fmt_s(bounds["gast_bound_s"]), f"{bounds['vs_gast']:.2f}"),
            ("efficiency T1/(P*makespan)", f"{bounds['efficiency']:.3f}", "-"),
        ],
    ))

    sections.append(render_attribution(
        "Per-worker wall-clock attribution", summary["workers"]))

    rtt_rows = []
    for worker in res.workers:
        for victim, rtt in worker.victim_policy.profile_snapshot().items():
            rtt_rows.append((worker.name, victim, _fmt_s(rtt)))
    if rtt_rows:
        sections.append(render_table(
            "Victim-policy learned RTT estimates",
            ["thief", "victim", "EWMA RTT"], rtt_rows,
        ))

    if jsonl is not None:
        sections.append(
            f"wrote span stream {args.out} ({jsonl.events} events, "
            f"peak {jsonl.peak_buffered} buffered, {jsonl.flushes} flushes)")
    if perfetto is not None:
        sections.append(
            f"wrote Perfetto profile {args.perfetto} ({perfetto.events} "
            f"events, peak {perfetto.peak_buffered} buffered; open at "
            f"ui.perfetto.dev)")
    return "\n\n".join(sections)


def _cmd_timeline(args: argparse.Namespace) -> str:
    """Worker-activity timeline of a run with owner churn and a crash."""
    from repro.apps.pfold import pfold_job
    from repro.cluster.owner import AlwaysIdleTrace, ScriptedTrace
    from repro.macro import PhishSystem, PhishSystemConfig
    from repro.viz.timeline import render_timeline

    def traces(rng, host):
        if host in ("ws03", "ws04"):
            return ScriptedTrace([("idle", 3.0 + args.seed % 3), ("busy", 1e9)])
        return AlwaysIdleTrace()

    perfetto_path = getattr(args, "perfetto", None)
    system = PhishSystem(
        PhishSystemConfig(n_workstations=6, seed=args.seed, owner_trace=traces,
                          trace=True, metrics=perfetto_path is not None)
    )
    system.submit(pfold_job("HPHPPHHPHPPH", work_scale=60.0), from_host="ws00")
    system.run_until_done(timeout_s=36000)
    assert system.trace is not None
    out = render_timeline(system.trace)
    if perfetto_path:
        from repro.obs import write_perfetto

        write_perfetto(system.trace, perfetto_path, system.metrics,
                       job_name="timeline")
        _warn_truncated(system.trace)
        out += (f"\n\nwrote Perfetto trace {perfetto_path} "
                f"(open at ui.perfetto.dev)")
    return out


def _fmt_evidence(evidence: dict) -> str:
    """Compact k=v rendering of an incident's evidence columns."""
    parts = []
    for key in sorted(evidence):
        val = evidence[key]
        parts.append(f"{key}={val:.4g}" if isinstance(val, float)
                     else f"{key}={val}")
    return " ".join(parts)


def _cmd_diagnose(args: argparse.Namespace) -> str:
    """Online health diagnosis: run seeds with the streaming anomaly
    detectors attached and print the incident timeline — or, with
    ``--diff A B``, a forensic comparison of two run manifests."""
    from repro.experiments.report import render_run_diff, render_table

    if args.diff:
        from repro.obs.manifest import diff_manifests, load_manifest

        path_a, path_b = args.diff
        diff = diff_manifests(load_manifest(path_a), load_manifest(path_b))
        return render_run_diff(f"{path_a} vs {path_b}", diff)

    from repro.obs import build_manifest, write_manifest
    from repro.obs.diagnose import diagnose_sweep

    started = time.time()
    sweep = diagnose_sweep(
        app=args.app,
        n_seeds=args.seeds,
        start_seed=args.seed,
        n_workers=args.workers,
        scenario=args.scenario,
        jobs=args.jobs,
        traffic_jobs=args.njobs,
        slo_s=args.slo,
    )
    wall = time.time() - started

    timeline_rows = [
        (seed, f"{row['t_start']:.4f}", f"{row['t_end']:.4f}", row["kind"],
         row["severity"], row["subject"], _fmt_evidence(row["evidence"]))
        for seed, row in sweep.incidents
    ]
    sections = [render_table(
        f"Incident timeline — {args.app} scenario={args.scenario} "
        f"seeds={args.seed}..{args.seed + args.seeds - 1}",
        ["seed", "t_start", "t_end", "kind", "severity", "subject",
         "evidence"],
        timeline_rows,
    )]
    incomplete = [r["seed"] for r in sweep.runs if not r["completed"]]
    summary_rows = [("runs", len(sweep.runs)),
                    ("incidents", len(sweep.incidents)),
                    ("incomplete runs", incomplete or "none")]
    summary_rows += sorted(sweep.kind_counts.items())
    sections.append(render_table("Diagnosis summary", ["what", "count"],
                                 summary_rows))

    if args.incidents:
        from repro.obs.health import Incident
        from repro.obs.stream import write_incidents_jsonl

        n = write_incidents_jsonl(
            (Incident.from_row(row) for _seed, row in sweep.incidents),
            args.incidents,
        )
        sections.append(f"wrote {n} incidents to {args.incidents}")
    if args.perfetto:
        sections.append(_diagnose_perfetto(args))
    if args.manifest:
        manifest = build_manifest(
            command="diagnose",
            seed=args.seed,
            app=args.app,
            cluster={"workers": args.workers, "profile": "SparcStation-1"},
            wall_s=wall,
            metrics_snapshot=sweep.metrics,
            extra={"diagnose": {
                "scenario": args.scenario,
                "seeds": len(sweep.runs),
                "incidents": len(sweep.incidents),
                "kinds": sweep.kind_counts,
            }},
        )
        write_manifest(manifest, args.manifest)
        sections.append(f"wrote manifest {args.manifest}")

    out = "\n\n".join(sections)
    if args.fail_on_incident and sweep.incidents:
        print(out)
        raise SystemExit(1)
    return out


def _diagnose_perfetto(args: argparse.Namespace) -> str:
    """Re-run the first seed inline to capture its TraceLog and export
    it with the health incidents on the worker tracks."""
    if args.app == "traffic":
        return "(--perfetto skipped: the traffic engine keeps no TraceLog)"
    from repro.check.fuzzer import APPS
    from repro.check.harness import Perturbation, run_checked
    from repro.obs import HealthMonitor, MetricsRegistry, write_perfetto

    spec = APPS[args.app]
    registry = MetricsRegistry()
    HealthMonitor(registry)
    pert = None
    if args.scenario != "clean":
        pert = Perturbation.generate(args.seed, args.workers,
                                     scenario=args.scenario)
    run = run_checked(
        spec.make(), n_workers=args.workers, seed=args.seed,
        perturbation=pert, expected=spec.expected,
        worker_config=spec.worker_config, metrics=registry,
    )
    write_perfetto(run.trace, args.perfetto, registry,
                   job_name=f"diagnose-{args.app}")
    return (f"wrote Perfetto trace {args.perfetto} for seed {args.seed} "
            f"(open at ui.perfetto.dev)")


COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "figure4": _cmd_figure4,
    "figure5": _cmd_figure5,
    "ablations": _cmd_ablations,
    "macro-demo": _cmd_macro_demo,
    "timeline": _cmd_timeline,
    "harvest": _cmd_harvest,
    "latency": _cmd_latency,
    "traffic": _cmd_traffic,
    "check": _cmd_check,
    "bench": _cmd_bench,
    "obs": _cmd_obs,
    "profile": _cmd_profile,
    "diagnose": _cmd_diagnose,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="phish-repro",
        description="Regenerate the tables and figures of Blumofe & Park (HPDC'94).",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_jobs(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for independent runs (0 = one per "
                 "CPU, default 1 = serial); results are identical at "
                 "any value",
        )

    for name in ("table1", "macro-demo"):
        sub.add_parser(name)
    harvest = sub.add_parser("harvest")
    harvest.add_argument("--reps", type=int, default=1, metavar="N",
                         help="repetitions at consecutive seeds (owner "
                              "churn is stochastic; default 1)")
    add_jobs(harvest)
    for name in ("table2", "figure4", "figure5"):
        cmd = sub.add_parser(name)
        cmd.add_argument("--manifest", default=None, metavar="PATH",
                         help="also write a run-provenance manifest JSON")
        add_jobs(cmd)
    timeline = sub.add_parser("timeline")
    timeline.add_argument("--perfetto", default=None, metavar="PATH",
                          help="also export the run as Chrome/Perfetto "
                               "trace_event JSON (open at ui.perfetto.dev)")
    obs = sub.add_parser(
        "obs",
        help="run one seeded job with full metrics wired in, print the "
             "latency/counter report, and write a run manifest",
    )
    obs.add_argument("--app", default="fib", choices=["fib", "knary", "pfold"],
                     help="application to run (default fib)")
    obs.add_argument("--workers", type=int, default=4,
                     help="cluster size (default 4)")
    obs.add_argument("--scale", type=int, default=None,
                     help="problem size override (fib n / knary n / "
                          "pfold work scale)")
    obs.add_argument("--manifest", default="obs_manifest.json", metavar="PATH",
                     help="manifest output path (default obs_manifest.json)")
    profile = sub.add_parser(
        "profile",
        help="critical-path profile of one seeded run: T1/T-inf, "
             "efficiency vs the greedy and latency-aware bounds, and a "
             "per-worker overhead-attribution table; optionally stream "
             "the span log to JSONL and/or Perfetto",
    )
    profile.add_argument("--app", default="fib",
                         choices=["fib", "knary", "pfold"],
                         help="application to profile (default fib)")
    profile.add_argument("--workers", type=int, default=4,
                         help="cluster size (default 4)")
    profile.add_argument("--scale", type=int, default=None,
                         help="problem size override (fib n / knary n / "
                              "pfold work scale)")
    profile.add_argument("--out", default=None, metavar="PATH",
                         help="stream the span log as JSONL to PATH "
                              "(bounded memory; mergeable across shards)")
    profile.add_argument("--perfetto", default=None, metavar="PATH",
                         help="stream a Chrome/Perfetto trace_event doc "
                              "to PATH (open at ui.perfetto.dev)")
    profile.add_argument("--buffer", type=int, default=8192,
                         help="sink flush buffer, in events (default 8192)")
    ab = sub.add_parser("ablations")
    ab.add_argument(
        "which",
        nargs="?",
        default="all",
        choices=["all", "order", "victim", "initiation", "sharing",
                 "retirement", "faults", "heterogeneity"],
    )
    add_jobs(ab)
    bench = sub.add_parser(
        "bench",
        help="benchmark the simulation substrate (kernel event throughput, "
             "process switching, fib/knary macro runs) and write the "
             "baseline file",
    )
    bench.add_argument("--out", default="BENCH_kernel.json",
                       help="output JSON path (default BENCH_kernel.json)")
    bench.add_argument("--repeats", type=int, default=10,
                       help="kernel-benchmark repetitions; wall numbers are "
                            "best-of-N (default 10)")
    bench.add_argument("--quick", action="store_true",
                       help="fewer repetitions (smoke-test mode)")
    bench.add_argument("--profile", default="full",
                       choices=["full", "timeouts"],
                       help="benchmark sections to run: 'timeouts' measures "
                            "only the timeout-churn microbench and merges it "
                            "into the existing record (default full)")
    bench.add_argument("--manifest", default=None, metavar="PATH",
                       help="also write a run-provenance manifest JSON")
    lat = sub.add_parser(
        "latency",
        help="sweep backbone steal latency on a two-segment cluster per "
             "victim/steal policy and compare against the Gast et al. "
             "analytical makespan bound",
    )
    lat.add_argument("--workers", type=int, default=8,
                     help="cluster size, split over two segments (default 8)")
    lat.add_argument("--manifest", default=None, metavar="PATH",
                     help="also write a run-provenance manifest JSON")
    add_jobs(lat)
    traffic = sub.add_parser(
        "traffic",
        help="run the policy x arrival competition under thousand-job "
             "synthetic traffic on the real PhishJobQ and report "
             "makespan, throughput and job-latency percentiles",
    )
    traffic.add_argument("--policies", default="rr,srp,fair,interrupt",
                         metavar="LIST",
                         help="comma-separated assignment policies "
                              "(default rr,srp,fair,interrupt)")
    traffic.add_argument("--arrivals", default="poisson,diurnal",
                         metavar="LIST",
                         help="comma-separated arrival processes: poisson, "
                              "diurnal, bursty (default poisson,diurnal)")
    traffic.add_argument("--njobs", type=int, default=1000,
                         help="jobs submitted per cell (default 1000)")
    traffic.add_argument("--machines", type=int, default=16,
                         help="workstations in the network (default 16)")
    traffic.add_argument("--rate", type=float, default=0.5,
                         help="mean arrival rate, jobs per simulated "
                              "second (default 0.5)")
    traffic.add_argument("--sizes", default="pareto",
                         choices=["pareto", "exponential"],
                         help="job-size distribution (default pareto, "
                              "heavy-tailed)")
    traffic.add_argument("--owners", default="idle",
                         choices=["idle", "workday"],
                         help="owner model: dedicated idle machines or "
                              "replayed login/logout logs (default idle)")
    traffic.add_argument("--manifest", default=None, metavar="PATH",
                         help="also write a run-provenance manifest JSON")
    add_jobs(traffic)
    chk = sub.add_parser(
        "check",
        help="fuzz schedules (tie-breaks, jitter, crashes, reclaims) and "
             "verify runtime invariants on every run",
    )
    chk.add_argument("--seeds", type=int, default=25,
                     help="number of fuzz seeds to run (default 25)")
    chk.add_argument("--app", default="fib", choices=["fib", "knary", "shrink"],
                     help="application to fuzz (default fib)")
    chk.add_argument("--workers", type=int, default=4,
                     help="cluster size (default 4)")
    chk.add_argument("--scenario", default="mixed",
                     choices=["mixed", "partition", "spike", "faults-only"],
                     help="perturbation scenario class: 'partition' and "
                          "'spike' force that network dynamic into every "
                          "seed; 'faults-only' disables both (default "
                          "mixed: probabilistic)")
    chk.add_argument("--queue", default="auto",
                     choices=["auto", "heap", "calendar"],
                     help="event-queue backend for every run's Simulator "
                          "(default auto; see docs/performance.md)")
    chk.add_argument("--verify-queue", action="store_true",
                     help="instead of fuzzing, run every seed once per "
                          "queue backend (heap and calendar) and require "
                          "byte-identical traces")
    chk.add_argument("--inject-bug", default=None,
                     choices=["skip-redo", "drop-migration", "dup-exec"],
                     help="deliberately break the scheduler to prove the "
                          "checker catches it")
    chk.add_argument("--manifest", default=None, metavar="PATH",
                     help="write a run manifest with merged per-shard "
                          "metrics and the fan-out speedup")
    add_jobs(chk)
    diag = sub.add_parser(
        "diagnose",
        help="run seeds with the streaming health detectors attached "
             "(steal storms, heartbeat gaps, partition stalls, "
             "starvation, stragglers, liveness stalls, SLO breaches) "
             "and print the incident timeline; --diff compares two run "
             "manifests",
    )
    diag.add_argument("--app", default="fib",
                      choices=["fib", "knary", "shrink", "traffic"],
                      help="application to diagnose (default fib)")
    diag.add_argument("--workers", type=int, default=4,
                      help="cluster size (default 4)")
    diag.add_argument("--seeds", type=int, default=1,
                      help="number of consecutive seeds (default 1)")
    diag.add_argument("--scenario", default="clean",
                      choices=["clean", "mixed", "partition", "spike",
                               "faults-only"],
                      help="perturbation scenario: 'clean' runs no "
                           "faults (the false-positive gate); the rest "
                           "match `check --scenario` (default clean)")
    diag.add_argument("--slo", type=float, default=None, metavar="S",
                      help="per-job sojourn SLO in simulated seconds "
                           "(traffic app only)")
    diag.add_argument("--njobs", type=int, default=200,
                      help="jobs per traffic run (default 200)")
    diag.add_argument("--incidents", default=None, metavar="PATH",
                      help="also write the incident stream as JSONL")
    diag.add_argument("--perfetto", default=None, metavar="PATH",
                      help="re-run the first seed and export its trace "
                           "with incidents as Perfetto instants")
    diag.add_argument("--manifest", default=None, metavar="PATH",
                      help="write a run manifest with the merged metric "
                           "snapshot and incident counts")
    diag.add_argument("--fail-on-incident", action="store_true",
                      help="exit 1 if any incident fired (CI gate for "
                           "clean runs)")
    diag.add_argument("--diff", nargs=2, default=None,
                      metavar=("A", "B"),
                      help="compare two run manifests (provenance drift "
                           "+ metric deltas) instead of running")
    add_jobs(diag)
    # --seed works both before and after the subcommand; SUPPRESS keeps a
    # pre-subcommand value from being clobbered by a subparser default.
    for cmd in sub.choices.values():
        cmd.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                         help="root random seed (default 0)")
    args = parser.parse_args(argv)
    started = time.time()
    output = COMMANDS[args.command](args)
    print(output)
    print(f"\n[{args.command} regenerated in {time.time() - started:.1f}s real time]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
