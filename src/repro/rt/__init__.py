"""A real (threaded) work-stealing runtime with the paper's discipline.

Everything else in this repository *simulates* the Phish scheduler to
reproduce the paper's measurements; this package *executes* it: a pool
of OS threads, each with its own ready deque, running tasks LIFO and
stealing FIFO from uniformly-random victims, with helping joins (a
worker blocked on a future executes other tasks instead of sleeping).

Because of CPython's GIL, pure-Python tasks do not speed up with
threads — the repro band for this paper notes exactly that limitation —
so this runtime is shipped as a *correctness* demonstration (the same
algorithm, actually scheduling) and is useful for I/O-bound or
C-extension workloads.  The measured claims all come from the
simulator.
"""

from repro.rt.future import Future
from repro.rt.pool import WorkStealingPool, current_pool

__all__ = ["WorkStealingPool", "Future", "current_pool"]
