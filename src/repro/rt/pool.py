"""The threaded work-stealing pool.

Usage::

    from repro.rt import WorkStealingPool

    def fib(pool, n):
        if n < 2:
            return n
        a = pool.spawn(fib, pool, n - 1)   # child task (stealable)
        b = fib(pool, n - 2)               # work-first: run one inline
        return pool.join(a) + b            # helping join

    with WorkStealingPool(4) as pool:
        print(pool.run(fib, pool, 25))

Scheduling discipline: per-worker deques, LIFO local execution, FIFO
steals from uniformly-random victims, and *helping* joins — a worker
waiting on a future executes other ready tasks instead of blocking, so
fork-join programs cannot deadlock the pool.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import ReproError, RuntimeShutdown
from repro.rt.deque import WorkDeque
from repro.rt.future import Future

_tls = threading.local()


def current_pool() -> Optional["WorkStealingPool"]:
    """The pool whose worker thread is running the caller, if any."""
    return getattr(_tls, "pool", None)


class _Task:
    __slots__ = ("fn", "args", "future")

    def __init__(self, fn: Callable, args: tuple, future: Future) -> None:
        self.fn = fn
        self.args = args
        self.future = future

    def run(self) -> None:
        try:
            self.future.set_result(self.fn(*self.args))
        except BaseException as exc:  # noqa: BLE001 - delivered via future
            self.future.set_exception(exc)


class WorkStealingPool:
    """N worker threads with per-worker steal deques."""

    #: Idle backoff while no task is found anywhere (seconds).
    IDLE_SLEEP_S = 0.0005

    def __init__(self, n_workers: int = 4, seed: int = 0) -> None:
        if n_workers < 1:
            raise ReproError("need at least one worker thread")
        self.n_workers = n_workers
        self._deques: List[WorkDeque] = [WorkDeque() for _ in range(n_workers)]
        self._rngs = [random.Random(seed * 7919 + i) for i in range(n_workers)]
        self._shutdown = threading.Event()
        self._submit_cursor = 0
        #: Statistics (approximate; updated without locks).
        self.tasks_executed = 0
        self.tasks_stolen = 0
        self._threads = [
            threading.Thread(target=self._worker, args=(i,), daemon=True,
                             name=f"ws-pool-{i}")
            for i in range(n_workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------

    def spawn(self, fn: Callable, *args: Any) -> Future:
        """Create a task; from a worker thread it lands on that worker's
        deque head (LIFO), from outside it is distributed round-robin."""
        if self._shutdown.is_set():
            raise RuntimeShutdown("spawn() after shutdown")
        future = Future()
        task = _Task(fn, args, future)
        idx = getattr(_tls, "worker_index", None)
        if idx is None or getattr(_tls, "pool", None) is not self:
            idx = self._submit_cursor % self.n_workers
            self._submit_cursor += 1
        self._deques[idx].push(task)
        return future

    submit = spawn

    def join(self, future: Future) -> Any:
        """Wait for *future*, helping with other tasks meanwhile.

        Safe from worker threads (no deadlock: the blocked worker keeps
        the pool moving) and from external threads (plain blocking).
        """
        if getattr(_tls, "pool", None) is not self:
            return future.result()
        idx: int = _tls.worker_index
        while not future.done():
            task = self._find_task(idx)
            if task is not None:
                self.tasks_executed += 1
                task.run()
            else:
                time.sleep(self.IDLE_SLEEP_S)
        return future.result()

    def run(self, fn: Callable, *args: Any) -> Any:
        """Submit a root task from outside and wait for its result."""
        return self.join(self.spawn(fn, *args))

    def map(self, fn: Callable, items: Sequence[Any]) -> List[Any]:
        """Apply *fn* to every item in parallel; results in order."""
        futures = [self.spawn(fn, item) for item in items]
        return [self.join(f) for f in futures]

    # ------------------------------------------------------------------

    def _find_task(self, idx: int) -> Optional[_Task]:
        task = self._deques[idx].pop()
        if task is not None:
            return task
        rng = self._rngs[idx]
        # A few random steal attempts (uniformly-random victim, FIFO end).
        for _ in range(2 * self.n_workers):
            victim = rng.randrange(self.n_workers)
            if victim == idx:
                continue
            task = self._deques[victim].steal()
            if task is not None:
                self.tasks_stolen += 1
                return task
        return None

    def _worker(self, idx: int) -> None:
        _tls.pool = self
        _tls.worker_index = idx
        while not self._shutdown.is_set():
            task = self._find_task(idx)
            if task is None:
                time.sleep(self.IDLE_SLEEP_S)
                continue
            self.tasks_executed += 1
            task.run()

    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the workers (pending tasks are abandoned)."""
        self._shutdown.set()
        for t in self._threads:
            t.join(timeout=2.0)

    def __enter__(self) -> "WorkStealingPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
