"""A lock-protected work deque for the threaded runtime.

The owner pushes and pops at the head (LIFO); thieves take from the
tail (FIFO) — the same discipline as the simulated
:class:`repro.micro.deque.ReadyDeque`, made thread-safe.  A single lock
per deque is plenty at Python-thread contention levels; the classic
lock-free variants (Arora–Blumofe–Plaxton) optimise costs the GIL
dwarfs anyway.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Optional


class WorkDeque:
    """Head-LIFO / tail-FIFO deque with a per-instance lock."""

    __slots__ = ("_items", "_lock")

    def __init__(self) -> None:
        self._items: Deque[Any] = deque()
        self._lock = threading.Lock()

    def push(self, item: Any) -> None:
        """Owner: push a task at the head."""
        with self._lock:
            self._items.appendleft(item)

    def pop(self) -> Optional[Any]:
        """Owner: take the most recently pushed task (head)."""
        with self._lock:
            if self._items:
                return self._items.popleft()
        return None

    def steal(self) -> Optional[Any]:
        """Thief: take the oldest task (tail)."""
        with self._lock:
            if self._items:
                return self._items.pop()
        return None

    def __len__(self) -> int:
        return len(self._items)  # racy read; used only as a hint
