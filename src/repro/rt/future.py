"""Futures for the threaded work-stealing pool."""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.errors import ReproError


class Future:
    """A write-once result slot with blocking and polling reads."""

    __slots__ = ("_event", "_result", "_exception", "_lock")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._lock = threading.Lock()

    def done(self) -> bool:
        """True once a result or exception has been set."""
        return self._event.is_set()

    def set_result(self, value: Any) -> None:
        with self._lock:
            if self._event.is_set():
                raise ReproError("future already resolved")
            self._result = value
            self._event.set()

    def set_exception(self, exc: BaseException) -> None:
        with self._lock:
            if self._event.is_set():
                raise ReproError("future already resolved")
            self._exception = exc
            self._event.set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until resolved; re-raises the task's exception.

        Worker threads should prefer :meth:`WorkStealingPool.join`,
        which helps execute other tasks instead of blocking.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("future not resolved within timeout")
        if self._exception is not None:
            raise self._exception
        return self._result
