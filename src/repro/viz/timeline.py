"""ASCII timelines of worker activity, built from a TraceLog.

``render_timeline`` draws one lane per worker over the run's time span:

* ``=`` — participating (between ``worker.start`` and its exit event),
* ``S`` — a successful steal landed at that moment (thief lane),
* ``m`` — a migration batch arrived (reclaim/retirement refugees),
* ``X`` — the worker crashed,
* ``.`` — registered but idle-ish (no marks recorded in that column).

Useful for eyeballing macro-level churn: owners reclaiming machines,
retirements during shrinking parallelism, crash redo waves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.util.trace import TraceLog

#: Event kinds that mark the start/end of a worker's participation.
_START = "worker.start"
_EXITS = ("worker.exit.done", "worker.exit.retired", "worker.exit.reclaimed",
          "worker.exit.crashed", "worker.exit.preempted")


def worker_intervals(trace: TraceLog) -> Dict[str, Tuple[float, float, str]]:
    """Per worker: (start time, end time, exit reason) from the trace.

    Workers that never exited get the trace's last timestamp as their
    end and reason ``"running"``.
    """
    starts: Dict[str, float] = {}
    ends: Dict[str, Tuple[float, str]] = {}
    last_t = 0.0
    for ev in trace:
        last_t = max(last_t, ev.time)
        if ev.kind == _START:
            starts.setdefault(ev.source, ev.time)
        elif ev.kind in _EXITS:
            ends.setdefault(ev.source, (ev.time, ev.kind.rsplit(".", 1)[1]))
    out: Dict[str, Tuple[float, float, str]] = {}
    for name, t0 in starts.items():
        t1, reason = ends.get(name, (last_t, "running"))
        out[name] = (t0, t1, reason)
    return out


def render_timeline(
    trace: TraceLog,
    width: int = 72,
    until: Optional[float] = None,
) -> str:
    """Render one ASCII lane per worker (see module docstring legend)."""
    intervals = worker_intervals(trace)
    if not intervals:
        return "(no worker activity in trace)"
    t_end = until if until is not None else max(t1 for _t0, t1, _r in intervals.values())
    t_end = max(t_end, 1e-9)

    def col(t: float) -> int:
        return min(width - 1, max(0, int(t / t_end * (width - 1))))

    lanes: Dict[str, List[str]] = {}
    for name, (t0, t1, _reason) in sorted(intervals.items()):
        lane = [" "] * width
        for c in range(col(t0), col(t1) + 1):
            lane[c] = "="
        lanes[name] = lane

    marks = [
        ("steal.success", "S"),
        ("migrate.in", "m"),
        ("redo", "R"),
    ]
    for kind, ch in marks:
        for ev in trace.events(kind=kind):
            lane = lanes.get(ev.source)
            if lane is not None:
                lane[col(ev.time)] = ch
    for ev in trace.events(kind="worker.exit.crashed"):
        lane = lanes.get(ev.source)
        if lane is not None:
            lane[col(ev.time)] = "X"

    name_w = max(len(n) for n in lanes)
    lines = [
        f"timeline 0 .. {t_end:.2f}s   (= run, S steal, m migrate-in, R redo, X crash)"
    ]
    for name, lane in sorted(lanes.items()):
        _t0, _t1, reason = intervals[name]
        lines.append(f"{name:<{name_w}} |{''.join(lane)}| {reason}")
    return "\n".join(lines)
