"""Text visualisation of simulated executions."""

from repro.viz.timeline import render_timeline, worker_intervals

__all__ = ["render_timeline", "worker_intervals"]
