"""Structured event tracing for simulated executions.

A :class:`TraceLog` is an append-only list of timestamped, typed records.
Schedulers and the network emit into it when tracing is enabled; tests and
the experiment harness query it to assert ordering properties (e.g. "no
steal reply precedes its request") and to debug runs.  Tracing is off by
default because the paper's largest run executes millions of tasks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    Attributes:
        time: simulated time at which the event occurred.
        kind: short event-type tag, e.g. ``"steal.request"``.
        source: name of the emitting component (worker/host name).
        detail: free-form payload for humans and tests.
    """

    time: float
    kind: str
    source: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:12.6f}] {self.source:<16} {self.kind:<20} {extras}"


class TraceLog:
    """Append-only trace collector with simple query helpers."""

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        """Create a log.

        Args:
            enabled: when False, :meth:`emit` is a no-op (cheap to leave in
                hot paths).
            capacity: optional bound; older events are discarded FIFO once
                the bound is reached, so long runs cannot exhaust memory.
        """
        if capacity is not None and capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity!r}")
        self.enabled = enabled
        self.capacity = capacity
        #: Bounded deque: eviction of the oldest event is O(1), so a
        #: capacity-limited log stays cheap no matter how long the run.
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._dropped = 0

    def emit(self, time: float, kind: str, source: str, **detail: Any) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled:
            return
        if self.capacity is not None and len(self._events) == self.capacity:
            self._dropped += 1  # deque(maxlen) evicts the oldest silently
        self._events.append(TraceEvent(time, kind, source, detail))

    @property
    def dropped(self) -> int:
        """Number of events discarded due to the capacity bound.

        Consumers that need the *complete* history (e.g. the invariant
        checker in :mod:`repro.check`) must treat ``dropped > 0`` as
        "history truncated" and degrade to warnings rather than report
        false violations.
        """
        return self._dropped

    @property
    def truncated(self) -> bool:
        """True when at least one event was evicted (history incomplete)."""
        return self._dropped > 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        where: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Return events filtered by kind and/or source and/or predicate."""
        out = []
        for ev in self._events:
            if kind is not None and ev.kind != kind:
                continue
            if source is not None and ev.source != source:
                continue
            if where is not None and not where(ev):
                continue
            out.append(ev)
        return out

    def count(self, kind: str) -> int:
        """Number of recorded events of the given kind."""
        return sum(1 for ev in self._events if ev.kind == kind)

    def kinds(self) -> List[Tuple[str, int]]:
        """(kind, count) pairs sorted by kind — a quick run fingerprint."""
        acc: Dict[str, int] = {}
        for ev in self._events:
            acc[ev.kind] = acc.get(ev.kind, 0) + 1
        return sorted(acc.items())

    def dump(self) -> str:
        """The whole log as one newline-joined string.

        Stable given a deterministic run: the determinism regression
        tests compare ``dump()`` outputs byte-for-byte.
        """
        return "\n".join(str(ev) for ev in self._events)

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0
