"""Structured event tracing for simulated executions.

A :class:`TraceLog` is an append-only list of timestamped, typed records.
Schedulers and the network emit into it when tracing is enabled; tests and
the experiment harness query it to assert ordering properties (e.g. "no
steal reply precedes its request") and to debug runs.  Tracing is off by
default because the paper's largest run executes millions of tasks.

Emitting is deliberately cheap: a record is four attribute stores on a
slotted object (no dataclass machinery), and rendering is lazy — the
``[time] source kind k=v`` line is only formatted when someone calls
``str()``/:meth:`TraceLog.dump`.  A log can additionally be restricted to
*categories* (kind prefixes) so a consumer that only needs, say, the
``steal.`` and ``closure.`` records does not pay to store the rest.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, Iterator, List, Optional, Tuple


def _jsonl_value(value: Any) -> Any:
    """Best-effort JSON coercion of one detail value (tuples become
    lists, unknown objects their ``repr``) — lossy on types, lossless on
    information, which is what offline re-analysis needs."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonl_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonl_value(v) for k, v in value.items()}
    return repr(value)


class TraceEvent:
    """One trace record.

    Attributes:
        time: simulated time at which the event occurred.
        kind: short event-type tag, e.g. ``"steal.request"``.
        source: name of the emitting component (worker/host name).
        detail: free-form payload for humans and tests.
    """

    __slots__ = ("time", "kind", "source", "detail")

    def __init__(self, time: float, kind: str, source: str,
                 detail: Optional[Dict[str, Any]] = None) -> None:
        self.time = time
        self.kind = kind
        self.source = source
        self.detail: Dict[str, Any] = {} if detail is None else detail

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceEvent)
            and other.time == self.time
            and other.kind == self.kind
            and other.source == self.source
            and other.detail == self.detail
        )

    def __repr__(self) -> str:
        return (f"TraceEvent(time={self.time!r}, kind={self.kind!r}, "
                f"source={self.source!r}, detail={self.detail!r})")

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:12.6f}] {self.source:<16} {self.kind:<20} {extras}"


class TraceLog:
    """Append-only trace collector with simple query helpers."""

    def __init__(
        self,
        enabled: bool = True,
        capacity: Optional[int] = None,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        """Create a log.

        Args:
            enabled: when False, :meth:`emit` is a no-op (cheap to leave in
                hot paths).
            capacity: optional bound; older events are discarded FIFO once
                the bound is reached, so long runs cannot exhaust memory.
            categories: optional kind-prefix filter; when given, only
                events whose ``kind`` starts with one of these prefixes
                are recorded (e.g. ``("steal.", "closure.")``).  Filtered
                events are *not* counted as dropped: a filtered log is a
                deliberate projection, not a truncated history.
        """
        if capacity is not None and capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity!r}")
        self.enabled = enabled
        self.capacity = capacity
        #: Kind-prefix filter as a tuple (``str.startswith`` accepts it
        #: directly), or None for "record everything".
        self.categories: Optional[Tuple[str, ...]] = (
            tuple(categories) if categories is not None else None
        )
        #: Bounded deque: eviction of the oldest event is O(1), so a
        #: capacity-limited log stays cheap no matter how long the run.
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._dropped = 0

    def emit(self, time: float, kind: str, source: str, **detail: Any) -> None:
        """Record one event (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        categories = self.categories
        if categories is not None and not kind.startswith(categories):
            return
        if self.capacity is not None and len(self._events) == self.capacity:
            self._dropped += 1  # deque(maxlen) evicts the oldest silently
        self._events.append(TraceEvent(time, kind, source, detail))

    @property
    def dropped(self) -> int:
        """Number of events discarded due to the capacity bound.

        Consumers that need the *complete* history (e.g. the invariant
        checker in :mod:`repro.check`) must treat ``dropped > 0`` as
        "history truncated" and degrade to warnings rather than report
        false violations.
        """
        return self._dropped

    @property
    def truncated(self) -> bool:
        """True when at least one event was evicted (history incomplete)."""
        return self._dropped > 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        where: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Return events filtered by kind and/or source and/or predicate."""
        out = []
        for ev in self._events:
            if kind is not None and ev.kind != kind:
                continue
            if source is not None and ev.source != source:
                continue
            if where is not None and not where(ev):
                continue
            out.append(ev)
        return out

    def count(self, kind: str) -> int:
        """Number of recorded events of the given kind."""
        return sum(1 for ev in self._events if ev.kind == kind)

    def kinds(self) -> List[Tuple[str, int]]:
        """(kind, count) pairs sorted by kind — a quick run fingerprint."""
        acc: Dict[str, int] = {}
        for ev in self._events:
            acc[ev.kind] = acc.get(ev.kind, 0) + 1
        return sorted(acc.items())

    def dump(self) -> str:
        """The whole log as one newline-joined string.

        Stable given a deterministic run: the determinism regression
        tests compare ``dump()`` outputs byte-for-byte.
        """
        return "\n".join(str(ev) for ev in self._events)

    def to_jsonl(self) -> str:
        """Serialise the log as JSON Lines for offline re-analysis.

        The first line is a meta record (capacity, categories, dropped
        count); each further line is one event.  Detail payloads are
        JSON-coerced (tuples become lists, arbitrary objects their
        ``repr``), so the round-trip preserves times, kinds, sources,
        and counts exactly but not Python types inside ``detail`` —
        :meth:`dump` remains the byte-exact determinism fingerprint.
        """
        lines = [json.dumps({
            "meta": {
                "capacity": self.capacity,
                "categories": list(self.categories) if self.categories else None,
                "dropped": self._dropped,
                "events": len(self._events),
            }
        }, sort_keys=True)]
        for ev in self._events:
            lines.append(json.dumps({
                "t": ev.time,
                "kind": ev.kind,
                "src": ev.source,
                "detail": {k: _jsonl_value(v) for k, v in ev.detail.items()},
            }, sort_keys=True))
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "TraceLog":
        """Rebuild a log written by :meth:`to_jsonl`.

        The restored log keeps the original capacity bound and dropped
        count, so truncation-aware consumers (the invariant checker)
        treat a reloaded truncated history exactly like a live one.
        """
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            return cls(enabled=True)
        head = json.loads(lines[0])
        meta = head.get("meta")
        body = lines[1:] if meta is not None else lines
        meta = meta or {}
        log = cls(
            enabled=True,
            capacity=meta.get("capacity"),
            categories=meta.get("categories"),
        )
        for line in body:
            rec = json.loads(line)
            log._events.append(TraceEvent(
                rec["t"], rec["kind"], rec["src"], rec.get("detail") or {}
            ))
        log._dropped = int(meta.get("dropped", 0))
        return log

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0
