"""General-purpose utilities: deterministic RNG streams, statistics, tracing."""

from repro.util.rng import RngRegistry
from repro.util.stats import Histogram, OnlineStats, summarize
from repro.util.trace import TraceEvent, TraceLog

__all__ = [
    "RngRegistry",
    "Histogram",
    "OnlineStats",
    "summarize",
    "TraceEvent",
    "TraceLog",
]
