"""Deterministic named random-number streams.

Every stochastic decision in the simulator (steal-victim choice, owner
activity traces, message jitter, crash times...) draws from a *named*
stream obtained from a single :class:`RngRegistry`.  Two runs constructed
with the same root seed therefore make identical random choices in every
subsystem, independently of the order in which subsystems are created or
of how many draws each subsystem makes.  This is what makes whole
simulated executions reproducible and is relied on by the regression and
property tests.

The implementation derives each stream's seed from ``(root_seed, name)``
with a stable hash (``sha256``), so adding a new stream never perturbs
existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit stream seed from a root seed and a stream name.

    Stable across Python versions and processes (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of independent, deterministically-seeded RNG streams.

    >>> reg = RngRegistry(42)
    >>> a = reg.stream("steal.victim")
    >>> b = reg.stream("owner.trace")
    >>> a is reg.stream("steal.victim")
    True

    Streams are plain :class:`random.Random` instances; they are created
    lazily and cached by name.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (cached) RNG stream called *name*."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngRegistry":
        """Return a child registry whose streams are independent of ours.

        Useful for giving each job in a multi-job experiment its own
        reproducible universe of streams.
        """
        return RngRegistry(derive_seed(self.root_seed, f"child:{name}"))

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(root_seed={self.root_seed}, streams={len(self._streams)})"
