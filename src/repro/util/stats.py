"""Small statistics helpers used by the metrics and experiment layers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple


class OnlineStats:
    """Streaming mean/variance/min/max (Welford's algorithm).

    Used for per-worker busy-time accounting and benchmark summaries
    without storing every sample.
    """

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 for fewer than 2 samples."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineStats(n={self.count}, mean={self.mean:.6g}, "
            f"sd={self.stdev:.6g}, min={self.min:.6g}, max={self.max:.6g})"
        )


@dataclass
class Histogram:
    """An integer-keyed histogram.

    This is the exact data structure the paper's pfold application
    produces (a histogram of fold energy values), so it is part of the
    public API rather than a private helper.
    """

    counts: Dict[int, int] = field(default_factory=dict)

    def add(self, key: int, count: int = 1) -> None:
        """Add *count* occurrences of *key*."""
        self.counts[key] = self.counts.get(key, 0) + count

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one (used at sync points)."""
        for key, count in other.counts.items():
            self.add(key, count)

    def total(self) -> int:
        """Total number of occurrences across all keys."""
        return sum(self.counts.values())

    def items(self) -> List[Tuple[int, int]]:
        """(key, count) pairs sorted by key."""
        return sorted(self.counts.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return {k: v for k, v in self.counts.items() if v} == {
            k: v for k, v in other.counts.items() if v
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({dict(self.items())})"


def summarize(xs: Iterable[float]) -> OnlineStats:
    """Build an :class:`OnlineStats` from an iterable in one call."""
    s = OnlineStats()
    s.extend(xs)
    return s


def geometric_mean(xs: Iterable[float]) -> float:
    """Geometric mean, the right average for ratios such as slowdowns."""
    xs = list(xs)
    if not xs:
        raise ValueError("geometric_mean of empty sequence")
    if any(x <= 0 for x in xs):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def speedup_paper(t1: float, per_participant_times: Iterable[float]) -> float:
    """The paper's P-processor speedup formula.

    ``S_P = P * T1 / sum_i T_P(i)`` where ``T_P(i)`` is the wall-clock
    execution time of the i-th participant (Section 4, Figure 5 caption).
    The formula is the ratio of T1 to the *average* participant time.
    """
    times = list(per_participant_times)
    if not times:
        raise ValueError("need at least one participant time")
    total = sum(times)
    if total <= 0:
        raise ValueError("participant times must be positive")
    return len(times) * t1 / total


def mean(xs: Mapping | Iterable[float]) -> float:
    """Arithmetic mean of a non-empty iterable."""
    xs = list(xs)  # type: ignore[arg-type]
    if not xs:
        raise ValueError("mean of empty sequence")
    return sum(xs) / len(xs)
