"""Streaming, bounded-memory sinks for :class:`repro.obs.prof.SpanProfiler`.

The profiler's span stream is append-only and globally time-ordered
(all hooks fire at the simulator's current time, which never moves
backwards), so sinks can be pure forward writers: hold at most
``buffer_events`` rows, flush, repeat.  A million-task run therefore
profiles in O(buffer) memory — ROADMAP item 1's streaming/bounded
requirement — and the memory bound is pinned by
``tests/obs/test_stream.py``.

Two writers share the row vocabulary documented in ``prof.py``:

* :class:`JsonlSpanSink` — one JSON object per line; first line is a
  ``profile_meta`` header, last line (written by ``close``) is the
  ``profile_summary``.  This is the mergeable interchange format.
* :class:`StreamingPerfettoWriter` — incremental Chrome ``traceEvents``
  JSON.  Execution/phase/participation intervals are emitted as
  ``B``/``E`` duration pairs *at their start and end times* rather than
  as ``X`` complete events: an ``X`` is written when the interval ends
  but stamped with its start time, which would interleave out of order
  with instants served mid-interval and break the writer's
  forward-only contract.  ``B``/``E`` keeps every track monotonic by
  construction (and is what ``validate_perfetto`` pairing-checks).
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, IO, Iterable, Iterator, List, Optional, Tuple

from repro.obs.prof import PROFILE_SCHEMA, merge_profiles

_US = 1e6  # seconds -> trace-event microseconds

#: Track layout shared with repro.obs.export: worker rows live in one
#: "cluster" process, control-plane rows in another.
WORKERS_PID = 1
CONTROL_PID = 2


class JsonlSpanSink:
    """Buffered JSON-lines span writer.

    ``path_or_fh`` may be a filesystem path (opened and owned by the
    sink) or an already-open text file object (borrowed — ``close``
    flushes but does not close it).  ``events``, ``peak_buffered`` and
    ``flushes`` expose the memory-bound contract to tests.
    """

    def __init__(self, path_or_fh: Any, buffer_events: int = 8192,
                 meta: Optional[Dict[str, Any]] = None) -> None:
        if buffer_events < 1:
            raise ValueError("buffer_events must be >= 1")
        self.buffer_events = buffer_events
        if hasattr(path_or_fh, "write"):
            self._fh: IO[str] = path_or_fh
            self._owns_fh = False
            self.path = getattr(path_or_fh, "name", "<stream>")
        else:
            self.path = str(path_or_fh)
            self._fh = open(self.path, "w", encoding="utf-8")
            self._owns_fh = True
        self.events = 0
        self.peak_buffered = 0
        self.flushes = 0
        self._buf: List[str] = []
        header = {"profile_meta": {"schema": PROFILE_SCHEMA}}
        if meta:
            header["profile_meta"].update(meta)
        self._fh.write(json.dumps(header, sort_keys=True) + "\n")
        self._closed = False

    def emit(self, row: Dict[str, Any]) -> None:
        self._buf.append(json.dumps(row))
        self.events += 1
        n = len(self._buf)
        if n > self.peak_buffered:
            self.peak_buffered = n
        if n >= self.buffer_events:
            self._flush()

    def _flush(self) -> None:
        if self._buf:
            self._fh.write("\n".join(self._buf) + "\n")
            self._buf.clear()
            self.flushes += 1

    def close(self, summary: Optional[Dict[str, Any]] = None) -> None:
        if self._closed:
            return
        self._closed = True
        self._flush()
        if summary is not None:
            self._fh.write(json.dumps({"profile_summary": summary},
                                      sort_keys=True) + "\n")
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()


class TeeSink:
    """Fan one span stream out to several sinks (e.g. JSONL + Perfetto)."""

    def __init__(self, sinks: Iterable[Any]) -> None:
        self.sinks = list(sinks)

    def emit(self, row: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(row)

    def close(self, summary: Optional[Dict[str, Any]] = None) -> None:
        for sink in self.sinks:
            sink.close(summary)


class StreamingPerfettoWriter:
    """Incremental Chrome/Perfetto ``traceEvents`` writer.

    Rows are translated and appended as they arrive; nothing is kept in
    memory beyond the JSONL-sized buffer, the per-track open-``B``
    stacks (bounded by nesting depth, <= 3), and the thread-name table.
    ``close`` auto-closes any still-open ``B`` at the last seen
    timestamp (a crash can end the sim mid-interval), writes process/
    thread metadata and the closing bracket, so the document always
    passes ``validate_perfetto``.
    """

    def __init__(self, path: str, job_name: str = "job",
                 buffer_events: int = 8192) -> None:
        if buffer_events < 1:
            raise ValueError("buffer_events must be >= 1")
        self.path = str(path)
        self.job_name = job_name
        self.buffer_events = buffer_events
        self.events = 0
        self.peak_buffered = 0
        self._fh = open(self.path, "w", encoding="utf-8")
        self._buf: List[str] = []
        self._first = True
        self._tids: Dict[Tuple[int, str], int] = {}
        self._next_tid: Dict[int, int] = {WORKERS_PID: 1, CONTROL_PID: 1}
        self._stacks: Dict[Tuple[int, int], List[str]] = {}
        self._last_ts = 0.0
        self._closed = False
        self._fh.write('{"traceEvents":[\n')

    # -- low-level appends ------------------------------------------------

    def _append(self, event: Dict[str, Any]) -> None:
        text = json.dumps(event)
        self._buf.append(text if self._first else "," + text)
        self._first = False
        self.events += 1
        n = len(self._buf)
        if n > self.peak_buffered:
            self.peak_buffered = n
        if n >= self.buffer_events:
            self._flush()

    def _flush(self) -> None:
        if self._buf:
            self._fh.write("\n".join(self._buf) + "\n")
            self._buf.clear()

    def _tid(self, pid: int, worker: str) -> int:
        key = (pid, worker)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._next_tid[pid]
            self._next_tid[pid] = tid + 1
            self._tids[key] = tid
        return tid

    def _begin(self, ts: float, pid: int, tid: int, name: str, cat: str,
               args: Optional[Dict[str, Any]] = None) -> None:
        event: Dict[str, Any] = {"name": name, "cat": cat, "ph": "B",
                                 "pid": pid, "tid": tid,
                                 "ts": round(ts * _US, 3)}
        if args:
            event["args"] = args
        self._append(event)
        self._stacks.setdefault((pid, tid), []).append(name)

    def _end(self, ts: float, pid: int, tid: int) -> None:
        stack = self._stacks.get((pid, tid))
        if not stack:
            return  # unmatched E: drop rather than corrupt the doc
        stack.pop()
        self._append({"ph": "E", "pid": pid, "tid": tid,
                      "ts": round(ts * _US, 3)})

    def _instant(self, ts: float, pid: int, tid: int, name: str, cat: str,
                 scope: str, args: Optional[Dict[str, Any]] = None) -> None:
        event: Dict[str, Any] = {"name": name, "cat": cat, "ph": "i",
                                 "pid": pid, "tid": tid,
                                 "ts": round(ts * _US, 3), "s": scope}
        if args:
            event["args"] = args
        self._append(event)

    # -- sink protocol ----------------------------------------------------

    def emit(self, row: Dict[str, Any]) -> None:
        ev = row["ev"]
        t = row["t"]
        if t > self._last_ts:
            self._last_ts = t
        if ev.startswith("ch."):
            tid = 1
            self._next_tid[CONTROL_PID] = max(self._next_tid[CONTROL_PID], 2)
            self._tids.setdefault((CONTROL_PID, "clearinghouse"), 1)
            args = {k: v for k, v in row.items()
                    if k not in ("ev", "t", "w")}
            self._instant(t, CONTROL_PID, tid, ev, "control", "p",
                          args or None)
            return
        tid = self._tid(WORKERS_PID, row["w"])
        if ev == "exec.b":
            self._begin(t, WORKERS_PID, tid, row["thread"], "exec",
                        {"cid": str(row["cid"]), "depth": row["depth"]})
        elif ev == "exec.e":
            self._end(t, WORKERS_PID, tid)
        elif ev == "ph.b":
            self._begin(t, WORKERS_PID, tid, row["ph"], "phase")
        elif ev == "ph.e":
            self._end(t, WORKERS_PID, tid)
        elif ev == "wk.b":
            self._begin(t, WORKERS_PID, tid, "participating", "worker")
        elif ev == "wk.e":
            self._end(t, WORKERS_PID, tid)
        else:  # steal.*, migrate.*, redo — lifecycle instants
            args = {k: v for k, v in row.items()
                    if k not in ("ev", "t", "w")}
            self._instant(t, WORKERS_PID, tid, ev, "lifecycle", "t",
                          args or None)

    def close(self, summary: Optional[Dict[str, Any]] = None) -> None:
        if self._closed:
            return
        self._closed = True
        # Close intervals left open by a crash or an abrupt sim end;
        # deepest frames first so B/E nesting stays well-formed.
        for (pid, tid), stack in sorted(self._stacks.items()):
            while stack:
                stack.pop()
                self._append({"ph": "E", "pid": pid, "tid": tid,
                              "ts": round(self._last_ts * _US, 3)})
        self._append({"name": "process_name", "ph": "M", "pid": WORKERS_PID,
                      "args": {"name": f"cluster:{self.job_name}"}})
        self._append({"name": "process_name", "ph": "M", "pid": CONTROL_PID,
                      "args": {"name": "control"}})
        for (pid, worker), tid in sorted(self._tids.items(),
                                         key=lambda kv: (kv[0][0], kv[1])):
            self._append({"name": "thread_name", "ph": "M", "pid": pid,
                          "tid": tid, "args": {"name": worker}})
        self._flush()
        other: Dict[str, Any] = {"schema": PROFILE_SCHEMA,
                                 "job": self.job_name}
        if summary is not None:
            for key in ("t1_s", "t_inf_s", "parallelism", "nodes", "edges",
                        "max_depth", "redo_copies"):
                if key in summary:
                    other[key] = summary[key]
        self._fh.write('],"displayTimeUnit":"ms","otherData":'
                       + json.dumps(other, sort_keys=True) + "}\n")
        self._fh.close()


# ----------------------------------------------------------------------
# JSONL profile readers / merger
# ----------------------------------------------------------------------

def iter_profile_jsonl(path: str) -> Iterator[Dict[str, Any]]:
    """Yield every line of a profile JSONL file as a parsed object
    (header and summary included), streaming — O(1) memory."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_profile_summary(path: str) -> Optional[Dict[str, Any]]:
    """Return the ``profile_summary`` object of a JSONL profile, or
    ``None`` if the file has no summary line (unclosed sink)."""
    summary: Optional[Dict[str, Any]] = None
    for obj in iter_profile_jsonl(path):
        if "profile_summary" in obj:
            summary = obj["profile_summary"]
    return summary


def merge_profile_jsonl(paths: Iterable[str], out_path: str) -> Dict[str, Any]:
    """Merge shard profile JSONL files into one: span lines are
    concatenated in shard order (shards are independent runs; within a
    shard, order is already time-sorted), summaries combine via
    :func:`merge_profiles`.  Line-streaming, deterministic — the same
    shard files in the same order produce a byte-identical output."""
    paths = list(paths)
    summaries: List[Dict[str, Any]] = []
    with open(out_path, "w", encoding="utf-8") as out:
        out.write(json.dumps(
            {"profile_meta": {"schema": PROFILE_SCHEMA,
                              "merged_shards": len(paths)}},
            sort_keys=True) + "\n")
        for shard, path in enumerate(paths):
            for obj in iter_profile_jsonl(path):
                if "profile_meta" in obj:
                    continue
                if "profile_summary" in obj:
                    summaries.append(obj["profile_summary"])
                    continue
                obj["shard"] = shard
                out.write(json.dumps(obj) + "\n")
        merged = merge_profiles(summaries)
        out.write(json.dumps({"profile_summary": merged},
                             sort_keys=True) + "\n")
    return merged


def write_incidents_jsonl(incidents: Iterable[Any], path: str) -> int:
    """Write health :class:`~repro.obs.health.Incident` records as JSON
    lines (one ``Incident.row()`` object per line, in the order given —
    rings hand them over already sorted).  Returns the line count.
    Streaming and deterministic: the same incidents produce a
    byte-identical file."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for inc in incidents:
            fh.write(json.dumps(inc.row(), sort_keys=True) + "\n")
            count += 1
    return count


def iter_incidents_jsonl(path: str) -> Iterator[Any]:
    """Yield :class:`~repro.obs.health.Incident` records back from a
    :func:`write_incidents_jsonl` file, streaming — O(1) memory."""
    from repro.obs.health import Incident

    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield Incident.from_row(json.loads(line))


def warn_stream(message: str, stream: Optional[IO[str]] = None) -> None:
    """Small stderr-warning helper (kept here so CLI tests can hook it)."""
    print(message, file=stream if stream is not None else sys.stderr)
