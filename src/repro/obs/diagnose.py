"""Drive health-diagnosed runs: the engine behind ``repro diagnose``.

A diagnosed run is an ordinary checked run (or traffic run) with a
:class:`~repro.obs.health.HealthMonitor` attached through the standard
metrics seams — the workload, trace, and RNG draws are untouched, so a
diagnosed schedule is byte-identical to the plain one.  The sweep maps
seeds over :class:`~repro.parallel.ShardedRunner` (one registry per
seed: detector state must never bleed across runs whose sim clocks each
start at zero) and merges the per-seed snapshots with
:func:`~repro.obs.metrics.merge_snapshots`, which is what makes the
merged incident stream byte-identical between ``--jobs 1`` and
``--jobs N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError

#: Scenario names ``repro diagnose`` accepts: "clean" (no perturbation,
#: the false-positive gate) plus every fuzzer scenario.
SCENARIOS = ("clean", "mixed", "partition", "spike", "faults-only")


@dataclass(frozen=True)
class DiagnoseSpec:
    """One diagnosed run — primitives only (spawn-safe shard item)."""

    app: str = "fib"
    seed: int = 0
    n_workers: int = 4
    scenario: str = "clean"
    horizon_s: float = 60.0
    #: Traffic-app knobs (ignored for checked apps).
    traffic_jobs: int = 200
    slo_s: Optional[float] = None

    def describe(self) -> str:
        return f"{self.app} seed={self.seed} scenario={self.scenario}"


def diagnose_seed(spec: DiagnoseSpec) -> Dict[str, Any]:
    """Run one diagnosed seed; returns a picklable payload:
    ``{"seed", "completed", "ok", "makespan_s", "snapshot"}`` where
    ``snapshot`` is the seed's full registry snapshot (the incident
    ring rides in it under ``health.incidents``)."""
    from repro.obs.health import HealthMonitor
    from repro.obs.metrics import MetricsRegistry

    if spec.scenario not in SCENARIOS:
        raise ReproError(
            f"unknown scenario {spec.scenario!r}; known: {sorted(SCENARIOS)}")
    registry = MetricsRegistry()
    HealthMonitor(registry)
    if spec.app == "traffic":
        from repro.macro.traffic import TrafficConfig, TrafficSystem

        system = TrafficSystem(
            TrafficConfig(
                n_workstations=spec.n_workers, n_jobs=spec.traffic_jobs,
                seed=spec.seed, slo_s=spec.slo_s,
            ),
            metrics=registry,
        )
        try:
            report = system.run()
        finally:
            system.stop()
        return {
            "seed": spec.seed,
            "completed": report.n_completed == report.n_jobs,
            "ok": True,
            "makespan_s": report.makespan_s,
            "snapshot": registry.snapshot(),
        }

    from repro.check.fuzzer import APPS
    from repro.check.harness import Perturbation, run_checked

    app_spec = APPS.get(spec.app)
    if app_spec is None:
        raise ReproError(
            f"unknown app {spec.app!r}; known: {sorted(APPS) + ['traffic']}")
    pert = None
    if spec.scenario != "clean":
        pert = Perturbation.generate(
            spec.seed, spec.n_workers, scenario=spec.scenario)
    run = run_checked(
        app_spec.make(),
        n_workers=spec.n_workers,
        seed=spec.seed,
        perturbation=pert,
        expected=app_spec.expected,
        worker_config=app_spec.worker_config,
        horizon_s=spec.horizon_s,
        metrics=registry,
    )
    return {
        "seed": spec.seed,
        "completed": run.completed,
        "ok": run.ok,
        "makespan_s": run.makespan,
        "snapshot": registry.snapshot(),
    }


@dataclass
class DiagnoseSweep:
    """Outcome of :func:`diagnose_sweep`."""

    app: str
    scenario: str
    seeds: Tuple[int, ...]
    #: ``(seed, incident-row)`` pairs, seed-major then ring order (the
    #: ring is already in :func:`~repro.obs.health.incident_sort_key`
    #: order) — the timeline table's data.
    incidents: List[Tuple[int, Dict[str, Any]]]
    #: Per-seed ``{"seed", "completed", "ok", "makespan_s"}`` summaries.
    runs: List[Dict[str, Any]]
    #: The :func:`~repro.obs.metrics.merge_snapshots` of every seed's
    #: registry — identical whatever ``jobs`` was.
    metrics: Dict[str, Any]
    stats: Any  # repro.parallel.PoolStats

    @property
    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for _seed, row in self.incidents:
            counts[row["kind"]] = counts.get(row["kind"], 0) + 1
        return counts


def diagnose_sweep(
    app: str = "fib",
    n_seeds: int = 1,
    start_seed: int = 0,
    n_workers: int = 4,
    scenario: str = "clean",
    jobs: Optional[int] = 1,
    horizon_s: float = 60.0,
    traffic_jobs: int = 200,
    slo_s: Optional[float] = None,
) -> DiagnoseSweep:
    """Diagnose a window of seeds, possibly sharded over processes.

    Results are assembled in seed order regardless of ``jobs`` (the
    runner preserves input order), so the incident list, the per-seed
    summaries, and the merged metric snapshot are all byte-identical
    between a serial and a sharded sweep.
    """
    from repro.obs.metrics import merge_snapshots
    from repro.parallel import ShardedRunner

    specs = [
        DiagnoseSpec(app=app, seed=seed, n_workers=n_workers,
                     scenario=scenario, horizon_s=horizon_s,
                     traffic_jobs=traffic_jobs, slo_s=slo_s)
        for seed in range(start_seed, start_seed + n_seeds)
    ]
    runner = ShardedRunner(jobs=jobs)
    payloads, stats = runner.map(
        diagnose_seed, specs, label=f"diagnose({app})",
        describe=DiagnoseSpec.describe,
    )
    incidents: List[Tuple[int, Dict[str, Any]]] = []
    runs: List[Dict[str, Any]] = []
    for payload in payloads:
        ring = payload["snapshot"].get("health.incidents", {})
        incidents.extend((payload["seed"], row) for row in ring.get("rows", ()))
        runs.append({k: payload[k]
                     for k in ("seed", "completed", "ok", "makespan_s")})
    return DiagnoseSweep(
        app=app,
        scenario=scenario,
        seeds=tuple(s.seed for s in specs),
        incidents=incidents,
        runs=runs,
        metrics=merge_snapshots([p["snapshot"] for p in payloads]),
        stats=stats,
    )
