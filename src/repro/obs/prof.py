"""Critical-path span/DAG profiler (``repro profile``).

The paper's evaluation is an accounting argument: execution time
decomposed into useful work (T1), critical-path span (T-inf), and the
scheduling overheads in between.  :class:`SpanProfiler` performs that
accounting *online*: the worker, Clearinghouse, network and simulator
call into it through optional is-not-None hooks (the TraceLog/metrics
discipline — a run without a profiler pays one attribute load and a
pointer compare per site), and it reduces the task-lifecycle span
stream to

* **T1** — total executed work, including redone tasks;
* **T-inf** — the longest dependency path through the computation DAG,
  weighted by per-task charged seconds, plus the matching node-depth
  (``max_depth``) for closed-form pins;
* **per-worker wall-clock attribution** — working / stealing /
  migrating / protocol / idle buckets, the paper's Table-style
  breakdown of where each participant's time went.

The DAG is never materialised.  Every spawn, successor creation, and
argument send of a task happens *synchronously* while its thread
function runs (before the cycle-charging yield), so by ``exec_end`` all
out-edges of the finishing task are known and its finish-span can be
pushed forward immediately::

    span(task)  = max over predecessors(pred finish span) + dur(task)
    depth(task) = max over predecessors(pred depth) + 1

State is therefore O(live closures): pending base spans for
not-yet-executed closures, popped at their own ``exec_end``.  (The one
deliberate leak: a *duplicate* send from a redone parent to an
already-finished target re-creates that target's pending entry, which
nobody pops — bounded by the run's duplicate-send count, which is zero
outside fault schedules.)

Raw span events stream to an optional *sink* (see
:mod:`repro.obs.stream`) so million-task runs profile in O(buffer)
memory; :func:`merge_profiles` combines per-shard summaries
deterministically for ``repro.parallel`` sweeps.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

PROFILE_SCHEMA = "repro.profile/1"

#: Wall-clock attribution buckets, in report order.  ``idle`` is the
#: residual: participation wall minus the four measured buckets.
BUCKETS: Tuple[str, ...] = ("working", "stealing", "migrating", "protocol")


class SpanProfiler:
    """Online critical-path + overhead-attribution profiler.

    One instance observes one simulation (all workers share it — the
    cluster is a single discrete-event process space, so hook calls
    arrive in global sim-time order, which is what lets the span stream
    go straight to a forward-only sink).
    """

    def __init__(self, sink: Optional[Any] = None) -> None:
        #: Optional streaming sink (``emit(row)`` / ``close(summary)``).
        self.sink = sink
        # -- DAG aggregates ------------------------------------------------
        self.t1_s = 0.0          #: total executed work (includes redone)
        self.t_inf_s = 0.0       #: critical-path span, seconds
        self.nodes = 0           #: tasks executed
        self.edges = 0           #: spawn/successor/send dependency edges
        self.max_depth = 0       #: critical-path length in nodes
        self.redo_copies = 0     #: re-keyed redo copies observed
        # -- protocol counters ---------------------------------------------
        self.steal_requests = 0
        self.tasks_stolen = 0
        self.tasks_migrated = 0
        self.heartbeats = 0
        self.msgs = 0
        self.msg_bytes = 0
        self.control_events = 0
        # -- live DAG state (O(live closures)) -----------------------------
        self._base: Dict[Any, float] = {}    # cid -> max predecessor span
        self._bdepth: Dict[Any, int] = {}    # cid -> max predecessor depth
        self._out: Dict[Any, List[Any]] = {} # executing cid -> out-edges
        # -- per-worker attribution ----------------------------------------
        self._buckets: Dict[str, Dict[str, float]] = {}
        self._open: Dict[Tuple[str, str], float] = {}   # (worker, phase) -> t0
        self._span_open: Dict[str, float] = {}          # worker -> t0
        self._wall: Dict[str, float] = {}
        self._exit: Dict[str, str] = {}
        # -- kernel pressure samples (bounded, stride-decimated) -----------
        self._sim: Optional[Any] = None
        self._kernel: List[Tuple[float, int]] = []
        self._kernel_cap = 256
        self._kernel_stride = 1
        self._kernel_seen = 0
        self._end = 0.0
        self._finalized = False

    # ------------------------------------------------------------------
    # Execution spans and DAG edges (worker run loop)
    # ------------------------------------------------------------------

    def exec_begin(self, t: float, worker: str, cid: Any, thread: str,
                   depth: int) -> None:
        """The thread function is about to run (pre-dispatch)."""
        self._open[(worker, "working")] = t
        s = self.sink
        if s is not None:
            s.emit({"ev": "exec.b", "t": t, "w": worker, "cid": cid,
                    "thread": thread, "depth": depth})

    def edge(self, src: Any, dst: Any) -> None:
        """Dependency edge recorded while *src* executes (spawn,
        successor creation, or argument send)."""
        self.edges += 1
        out = self._out.get(src)
        if out is None:
            self._out[src] = [dst]
        else:
            out.append(dst)

    def exec_end(self, t: float, worker: str, cid: Any, dur_s: float) -> None:
        """The thread function returned; *dur_s* is the task's charged
        seconds.  All out-edges are known — propagate span and depth."""
        span = self._base.pop(cid, 0.0) + dur_s
        depth = self._bdepth.pop(cid, 0) + 1
        self.t1_s += dur_s
        self.nodes += 1
        if span > self.t_inf_s:
            self.t_inf_s = span
        if depth > self.max_depth:
            self.max_depth = depth
        base, bdepth = self._base, self._bdepth
        for nxt in self._out.pop(cid, ()):
            if span > base.get(nxt, -1.0):
                base[nxt] = span
            if depth > bdepth.get(nxt, 0):
                bdepth[nxt] = depth

    def exec_done(self, t: float, worker: str, cid: Any) -> None:
        """The cycle-charging yield completed (or was crash-interrupted):
        the exclusive "working" interval ends here."""
        self.phase_end(t, worker, "working", _emit=False)
        s = self.sink
        if s is not None:
            s.emit({"ev": "exec.e", "t": t, "w": worker, "cid": cid})

    def redo(self, t: float, worker: str,
             pairs: Sequence[Tuple[Any, Any]]) -> None:
        """Re-keyed redo copies: each copy inherits the original's
        pending predecessor span/depth, so redone subtrees extend the
        critical path instead of restarting it at zero."""
        for orig, copy in pairs:
            base = self._base.pop(orig, None)
            if base is not None and base > self._base.get(copy, -1.0):
                self._base[copy] = base
            bdepth = self._bdepth.pop(orig, None)
            if bdepth is not None and bdepth > self._bdepth.get(copy, 0):
                self._bdepth[copy] = bdepth
        self.redo_copies += len(pairs)
        s = self.sink
        if s is not None:
            s.emit({"ev": "redo", "t": t, "w": worker, "n": len(pairs)})

    # ------------------------------------------------------------------
    # Wall-clock attribution phases and participation spans
    # ------------------------------------------------------------------

    def phase_begin(self, t: float, worker: str, phase: str) -> None:
        self._open[(worker, phase)] = t
        s = self.sink
        if s is not None:
            s.emit({"ev": "ph.b", "t": t, "w": worker, "ph": phase})

    def phase_end(self, t: float, worker: str, phase: str,
                  _emit: bool = True) -> None:
        t0 = self._open.pop((worker, phase), None)
        if t0 is None:
            return
        buckets = self._buckets.get(worker)
        if buckets is None:
            buckets = self._buckets[worker] = dict.fromkeys(BUCKETS, 0.0)
        buckets[phase] += t - t0
        if t > self._end:
            self._end = t
        if _emit:
            s = self.sink
            if s is not None:
                s.emit({"ev": "ph.e", "t": t, "w": worker, "ph": phase})

    def worker_begin(self, t: float, worker: str) -> None:
        """A participation span opens (start, or rejoin after retiring)."""
        self._span_open.setdefault(worker, t)
        self._buckets.setdefault(worker, dict.fromkeys(BUCKETS, 0.0))
        s = self.sink
        if s is not None:
            s.emit({"ev": "wk.b", "t": t, "w": worker})

    def worker_end(self, t: float, worker: str, reason: str) -> None:
        """The participation span closes; any phase the exit interrupted
        (a crash mid-protocol, a teardown mid-steal) closes with it."""
        for key in [k for k in self._open if k[0] == worker]:
            self.phase_end(t, worker, key[1])
        t0 = self._span_open.pop(worker, None)
        if t0 is not None:
            self._wall[worker] = self._wall.get(worker, 0.0) + (t - t0)
        self._exit[worker] = reason
        if t > self._end:
            self._end = t
        s = self.sink
        if s is not None:
            s.emit({"ev": "wk.e", "t": t, "w": worker, "reason": reason})

    # ------------------------------------------------------------------
    # Steal / migrate lifecycle instants
    # ------------------------------------------------------------------

    def steal_request(self, t: float, thief: str, victim: str,
                      req: int) -> None:
        self.steal_requests += 1
        s = self.sink
        if s is not None:
            s.emit({"ev": "steal.req", "t": t, "w": thief, "victim": victim,
                    "req": req})

    def steal_grant(self, t: float, victim: str, thief: str, n: int,
                    req: int) -> None:
        s = self.sink
        if s is not None:
            s.emit({"ev": "steal.grant", "t": t, "w": victim, "thief": thief,
                    "n": n, "req": req})

    def steal_adopt(self, t: float, thief: str, victim: str, n: int,
                    req: int) -> None:
        self.tasks_stolen += n
        s = self.sink
        if s is not None:
            s.emit({"ev": "steal.adopt", "t": t, "w": thief, "victim": victim,
                    "n": n, "req": req})

    def migrate_out(self, t: float, worker: str, target: str, n: int) -> None:
        self.tasks_migrated += n
        s = self.sink
        if s is not None:
            s.emit({"ev": "migrate.out", "t": t, "w": worker,
                    "target": target, "n": n})

    def migrate_in(self, t: float, worker: str, sender: str, n: int) -> None:
        s = self.sink
        if s is not None:
            s.emit({"ev": "migrate.in", "t": t, "w": worker,
                    "sender": sender, "n": n})

    def heartbeat(self, t: float, worker: str) -> None:
        """Peer-update RPC round-trip (counted, not wall-attributed: the
        update loop runs concurrently with the run loop, so its time
        overlaps the run-loop buckets)."""
        self.heartbeats += 1

    # ------------------------------------------------------------------
    # Clearinghouse / network / simulator seams
    # ------------------------------------------------------------------

    def control(self, t: float, kind: str, **detail: Any) -> None:
        """Clearinghouse lifecycle instant (register, death, result)."""
        self.control_events += 1
        s = self.sink
        if s is not None:
            row = {"ev": kind, "t": t, "w": "clearinghouse"}
            row.update(detail)
            s.emit(row)

    def msg(self, size_bytes: int) -> None:
        """One wire datagram (the network's send hot path — counter only)."""
        self.msgs += 1
        self.msg_bytes += size_bytes

    def attach_sim(self, sim: Any) -> None:
        """Chain onto the simulator's monitor hook to sample kernel
        pressure (exact ``events_processed`` at each sample).  Note the
        monitor forces the kernel's exact stepping path — acceptable,
        since profiling is opt-in."""
        self._sim = sim
        prev = sim.monitor

        def _monitor(s: Any, _prev=prev, _self=self) -> None:
            if _prev is not None:
                _prev(s)
            _self.kernel_sample(s.now, s.events_processed)

        sim.monitor = _monitor

    def kernel_sample(self, t: float, events_processed: int) -> None:
        """Bounded (time, events) samples: at capacity the series is
        decimated 2x and the stride doubles — deterministic, O(cap)."""
        self._kernel_seen += 1
        if self._kernel_seen % self._kernel_stride:
            return
        if len(self._kernel) >= self._kernel_cap:
            self._kernel = self._kernel[::2]
            self._kernel_stride *= 2
            if self._kernel_seen % self._kernel_stride:
                return
        self._kernel.append((t, events_processed))

    # ------------------------------------------------------------------
    # Finalisation and reporting
    # ------------------------------------------------------------------

    def finalize(self, t_end: Optional[float] = None,
                 close_sink: bool = True) -> None:
        """Close open phases/spans at *t_end* and (optionally) close the
        sink with the summary appended.  Idempotent."""
        if self._finalized:
            return
        if t_end is None:
            t_end = self._end
        for worker, _t0 in sorted(self._span_open.items()):
            self.worker_end(t_end, worker, "running")
        for worker, phase in sorted(self._open):
            self.phase_end(t_end, worker, phase)
        self._finalized = True
        if close_sink and self.sink is not None:
            self.sink.close(self.summary())

    def worker_report(self) -> Dict[str, Dict[str, Any]]:
        """Per-worker attribution: wall, the four measured buckets, and
        the idle residual (clamped at zero — bucket intervals recorded
        by concurrent processes can marginally overlap on fault paths)."""
        report: Dict[str, Dict[str, Any]] = {}
        for worker in sorted(self._buckets):
            buckets = self._buckets[worker]
            wall = self._wall.get(worker, 0.0)
            measured = sum(buckets.values())
            row: Dict[str, Any] = {"wall_s": wall}
            for name in BUCKETS:
                row[f"{name}_s"] = buckets[name]
            row["idle_s"] = max(0.0, wall - measured)
            row["exit"] = self._exit.get(worker, "running")
            report[worker] = row
        return report

    @property
    def parallelism(self) -> float:
        return self.t1_s / self.t_inf_s if self.t_inf_s > 0 else 0.0

    def summary(self) -> Dict[str, Any]:
        """JSON-ready profile summary (deterministic key order)."""
        kernel: Dict[str, Any] = {"samples": len(self._kernel)}
        if self._kernel:
            t, events = self._kernel[-1]
            kernel["events_processed"] = events
            kernel["sim_end_s"] = t
        return {
            "schema": PROFILE_SCHEMA,
            "t1_s": self.t1_s,
            "t_inf_s": self.t_inf_s,
            "parallelism": self.parallelism,
            "nodes": self.nodes,
            "edges": self.edges,
            "max_depth": self.max_depth,
            "redo_copies": self.redo_copies,
            "steal_requests": self.steal_requests,
            "tasks_stolen": self.tasks_stolen,
            "tasks_migrated": self.tasks_migrated,
            "heartbeats": self.heartbeats,
            "msgs": self.msgs,
            "msg_bytes": self.msg_bytes,
            "control_events": self.control_events,
            "workers": self.worker_report(),
            "kernel": kernel,
        }

    def bound_report(self, makespan_s: float, n_workers: int, lam_s: float,
                     startup_s: float = 0.0) -> Dict[str, float]:
        """Efficiency of a finished run against the two analytical
        references: the greedy bound ``T1/P + T-inf`` and the Gast et
        al. latency-aware bound (see ``repro.experiments.latency``)."""
        from repro.experiments.latency import gast_bound_s

        greedy = self.t1_s / n_workers + self.t_inf_s
        gast = gast_bound_s(self.t1_s, n_workers, lam_s,
                            max(1, self.nodes), startup_s=startup_s)
        return {
            "makespan_s": makespan_s,
            "greedy_bound_s": greedy,
            "vs_greedy": makespan_s / greedy if greedy > 0 else float("inf"),
            "gast_bound_s": gast,
            "vs_gast": makespan_s / gast if gast > 0 else float("inf"),
            "efficiency": (self.t1_s / (n_workers * makespan_s)
                           if makespan_s > 0 else 0.0),
        }


def merge_profiles(
    summaries: Iterable[Dict[str, Any]],
) -> Dict[str, Any]:
    """Deterministically merge per-shard :meth:`SpanProfiler.summary`
    dicts into one profile (the ``repro.parallel`` merge).

    Work totals and counters add; ``t_inf_s``/``max_depth`` take the
    max (shards are independent runs, so the merged critical path is
    the longest one observed); same-named workers' buckets and wall
    add.  Associative, so chunked merges equal one flat merge."""
    out: Optional[Dict[str, Any]] = None
    for summary in summaries:
        if out is None:
            out = {k: (dict(v) if isinstance(v, dict) else v)
                   for k, v in summary.items()}
            out["workers"] = {w: dict(row)
                              for w, row in summary.get("workers", {}).items()}
            continue
        for key in ("t1_s", "nodes", "edges", "redo_copies",
                    "steal_requests", "tasks_stolen", "tasks_migrated",
                    "heartbeats", "msgs", "msg_bytes", "control_events"):
            out[key] = out.get(key, 0) + summary.get(key, 0)
        for key in ("t_inf_s", "max_depth"):
            out[key] = max(out.get(key, 0), summary.get(key, 0))
        workers = out["workers"]
        for name, row in summary.get("workers", {}).items():
            mine = workers.get(name)
            if mine is None:
                workers[name] = dict(row)
                continue
            for field, value in row.items():
                if field.endswith("_s"):
                    mine[field] = mine.get(field, 0.0) + value
                elif field == "exit":
                    mine[field] = value
        kernel_a = out.get("kernel", {})
        kernel_b = summary.get("kernel", {})
        out["kernel"] = {
            "samples": kernel_a.get("samples", 0) + kernel_b.get("samples", 0),
        }
        if "events_processed" in kernel_a or "events_processed" in kernel_b:
            out["kernel"]["events_processed"] = (
                kernel_a.get("events_processed", 0)
                + kernel_b.get("events_processed", 0)
            )
    if out is None:
        return {"schema": PROFILE_SCHEMA, "t1_s": 0.0, "t_inf_s": 0.0,
                "parallelism": 0.0, "nodes": 0, "edges": 0, "max_depth": 0,
                "workers": {}}
    out["parallelism"] = (out["t1_s"] / out["t_inf_s"]
                          if out.get("t_inf_s") else 0.0)
    out["workers"] = dict(sorted(out["workers"].items()))
    return out
