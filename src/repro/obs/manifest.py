"""Run manifests: attributable, machine-readable experiment provenance.

Every experiment/bench output can be accompanied by a small JSON file
recording *what produced it*: the command, the seed, the cluster shape,
the git revision, the metric snapshot, wall time, and the machine's
recorded kernel throughput (so a slow number can be told apart from a
slow machine).  ``validate_manifest`` is the schema check used by the
unit tests and the CI smoke step.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

#: Manifest schema version (bump on breaking shape changes).
MANIFEST_SCHEMA = 1

#: Required top-level fields and their types (the schema, in effect).
MANIFEST_FIELDS: Dict[str, tuple] = {
    "schema": (int,),
    "kind": (str,),
    "command": (str,),
    "seed": (int,),
    "app": (str,),
    "created_at": (str,),
    "python": (str,),
    "platform": (str,),
    "git": (str, type(None)),
    "cluster": (dict,),
    "wall_s": (int, float),
    "kernel_events_per_s": (int, float, type(None)),
    "metrics": (dict,),
}


def git_describe(cwd: Optional[str] = None) -> Optional[str]:
    """``git describe --always --dirty`` of the working tree, or None.

    Tolerates every failure mode (no git binary, not a repository, bare
    checkout without tags) — provenance is best-effort, never fatal.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _baseline_kernel_rate() -> Optional[float]:
    """kernel events/s from the recorded BENCH_kernel.json, if any."""
    from repro.bench import load_bench

    recorded = load_bench()
    if not recorded:
        return None
    return (recorded.get("kernel") or {}).get("events_per_s")


def build_manifest(
    command: str,
    seed: int,
    app: str,
    cluster: Dict[str, Any],
    wall_s: float,
    registry: Optional[MetricsRegistry] = None,
    extra: Optional[Dict[str, Any]] = None,
    metrics_snapshot: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a manifest dict that passes :func:`validate_manifest`.

    Args:
        command: the CLI subcommand (or API entry point) that ran.
        seed: the root random seed of the run.
        app: application name ("fib", "pfold", ...; "-" when not
            app-specific, e.g. for ``bench``).
        cluster: shape description, e.g. ``{"workers": 8,
            "profile": "SparcStation-1"}``.
        wall_s: real (not simulated) seconds the run took.
        registry: metric snapshot source (empty snapshot when None).
        extra: additional payload merged under its own keys (must not
            collide with schema fields).
        metrics_snapshot: pre-built metrics dict — how sharded runs
            hand over their :func:`~repro.obs.metrics.merge_snapshots`
            result (mutually exclusive with *registry*).
    """
    if registry is not None and metrics_snapshot is not None:
        raise ValueError("pass either registry or metrics_snapshot, not both")
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "kind": "repro.obs.manifest",
        "command": command,
        "seed": seed,
        "app": app,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git": git_describe(),
        "cluster": cluster,
        "wall_s": wall_s,
        "kernel_events_per_s": _baseline_kernel_rate(),
        "metrics": (
            registry.snapshot() if registry is not None
            else metrics_snapshot if metrics_snapshot is not None
            else {}
        ),
    }
    if extra:
        for key in extra:
            if key in MANIFEST_FIELDS:
                raise ValueError(f"extra key {key!r} collides with the schema")
        manifest.update(extra)
    return manifest


def validate_manifest(manifest: Any) -> List[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    if not isinstance(manifest, dict):
        return ["manifest is not a JSON object"]
    problems: List[str] = []
    for field, types in MANIFEST_FIELDS.items():
        if field not in manifest:
            problems.append(f"missing field {field!r}")
        elif not isinstance(manifest[field], types):
            problems.append(
                f"field {field!r} has type {type(manifest[field]).__name__}, "
                f"wanted {'/'.join(t.__name__ for t in types)}"
            )
    if manifest.get("schema") not in (None, MANIFEST_SCHEMA):
        problems.append(
            f"schema version {manifest.get('schema')!r} unknown "
            f"(this build reads {MANIFEST_SCHEMA})"
        )
    if manifest.get("kind") not in (None, "repro.obs.manifest"):
        problems.append(f"kind {manifest.get('kind')!r} is not a run manifest")
    cluster = manifest.get("cluster")
    if isinstance(cluster, dict) and "workers" not in cluster:
        problems.append("cluster description lacks 'workers'")
    return problems


def write_manifest(manifest: Dict[str, Any], path: str) -> None:
    """Write *manifest* as pretty-printed JSON (validating first)."""
    problems = validate_manifest(manifest)
    if problems:
        raise ValueError(f"refusing to write invalid manifest: {problems}")
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_manifest(path: str) -> Dict[str, Any]:
    """Read a manifest back (no validation; callers validate as needed)."""
    with open(path) as fh:
        return json.load(fh)


# ---------------------------------------------------------------------------
# Run-diff forensics (``repro diagnose --diff A B``)
# ---------------------------------------------------------------------------

#: Provenance fields compared (in report order) by :func:`diff_manifests`.
PROVENANCE_FIELDS = (
    "command", "app", "seed", "cluster", "git", "python", "platform",
    "kernel_events_per_s", "wall_s",
)

#: Scalar list keys are flattened by index; these list-valued keys hold
#: structured rows whose contents would drown the diff — their *length*
#: is compared instead.
_SUMMARIZED_LISTS = ("rows", "samples")


def _flatten(prefix: str, value: Any, out: Dict[str, Any]) -> None:
    """Flatten *value* into dotted-path scalar leaves (diffable)."""
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], out)
    elif isinstance(value, list):
        leaf = prefix.rsplit(".", 1)[-1]
        if leaf in _SUMMARIZED_LISTS:
            out[f"{prefix}.len"] = len(value)
        else:
            for i, item in enumerate(value):
                _flatten(f"{prefix}[{i}]", item, out)
    else:
        out[prefix] = value


def diff_manifests(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, List]:
    """Compare two run manifests for forensics.

    Returns ``{"provenance": [...], "metrics": [...]}``:

    * ``provenance`` rows are ``(field, a_value, b_value)`` for every
      :data:`PROVENANCE_FIELDS` entry that differs (environment drift —
      different git revision, machine, cluster shape — is the first
      thing to rule out when two runs disagree);
    * ``metrics`` rows are ``(path, a_value, b_value, delta)`` over the
      flattened metric snapshots, including the extra payload fields
      (``makespan_s`` etc.); ``delta`` is numeric when both sides are,
      else ``None``.  Paths present on only one side appear with the
      other side as ``None``.
    """
    provenance = [
        (field, a.get(field), b.get(field))
        for field in PROVENANCE_FIELDS
        if a.get(field) != b.get(field)
    ]
    flat_a: Dict[str, Any] = {}
    flat_b: Dict[str, Any] = {}
    skip = set(MANIFEST_FIELDS) - {"metrics"}
    _flatten("", {k: v for k, v in a.items() if k not in skip}, flat_a)
    _flatten("", {k: v for k, v in b.items() if k not in skip}, flat_b)
    metrics: List[tuple] = []
    for path in sorted(set(flat_a) | set(flat_b)):
        va, vb = flat_a.get(path), flat_b.get(path)
        if va == vb:
            continue
        delta = None
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)) \
                and not isinstance(va, bool) and not isinstance(vb, bool):
            delta = vb - va
        metrics.append((path, va, vb, delta))
    return {"provenance": provenance, "metrics": metrics}
