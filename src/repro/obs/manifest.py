"""Run manifests: attributable, machine-readable experiment provenance.

Every experiment/bench output can be accompanied by a small JSON file
recording *what produced it*: the command, the seed, the cluster shape,
the git revision, the metric snapshot, wall time, and the machine's
recorded kernel throughput (so a slow number can be told apart from a
slow machine).  ``validate_manifest`` is the schema check used by the
unit tests and the CI smoke step.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

#: Manifest schema version (bump on breaking shape changes).
MANIFEST_SCHEMA = 1

#: Required top-level fields and their types (the schema, in effect).
MANIFEST_FIELDS: Dict[str, tuple] = {
    "schema": (int,),
    "kind": (str,),
    "command": (str,),
    "seed": (int,),
    "app": (str,),
    "created_at": (str,),
    "python": (str,),
    "platform": (str,),
    "git": (str, type(None)),
    "cluster": (dict,),
    "wall_s": (int, float),
    "kernel_events_per_s": (int, float, type(None)),
    "metrics": (dict,),
}


def git_describe(cwd: Optional[str] = None) -> Optional[str]:
    """``git describe --always --dirty`` of the working tree, or None.

    Tolerates every failure mode (no git binary, not a repository, bare
    checkout without tags) — provenance is best-effort, never fatal.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _baseline_kernel_rate() -> Optional[float]:
    """kernel events/s from the recorded BENCH_kernel.json, if any."""
    from repro.bench import load_bench

    recorded = load_bench()
    if not recorded:
        return None
    return (recorded.get("kernel") or {}).get("events_per_s")


def build_manifest(
    command: str,
    seed: int,
    app: str,
    cluster: Dict[str, Any],
    wall_s: float,
    registry: Optional[MetricsRegistry] = None,
    extra: Optional[Dict[str, Any]] = None,
    metrics_snapshot: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a manifest dict that passes :func:`validate_manifest`.

    Args:
        command: the CLI subcommand (or API entry point) that ran.
        seed: the root random seed of the run.
        app: application name ("fib", "pfold", ...; "-" when not
            app-specific, e.g. for ``bench``).
        cluster: shape description, e.g. ``{"workers": 8,
            "profile": "SparcStation-1"}``.
        wall_s: real (not simulated) seconds the run took.
        registry: metric snapshot source (empty snapshot when None).
        extra: additional payload merged under its own keys (must not
            collide with schema fields).
        metrics_snapshot: pre-built metrics dict — how sharded runs
            hand over their :func:`~repro.obs.metrics.merge_snapshots`
            result (mutually exclusive with *registry*).
    """
    if registry is not None and metrics_snapshot is not None:
        raise ValueError("pass either registry or metrics_snapshot, not both")
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "kind": "repro.obs.manifest",
        "command": command,
        "seed": seed,
        "app": app,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git": git_describe(),
        "cluster": cluster,
        "wall_s": wall_s,
        "kernel_events_per_s": _baseline_kernel_rate(),
        "metrics": (
            registry.snapshot() if registry is not None
            else metrics_snapshot if metrics_snapshot is not None
            else {}
        ),
    }
    if extra:
        for key in extra:
            if key in MANIFEST_FIELDS:
                raise ValueError(f"extra key {key!r} collides with the schema")
        manifest.update(extra)
    return manifest


def validate_manifest(manifest: Any) -> List[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    if not isinstance(manifest, dict):
        return ["manifest is not a JSON object"]
    problems: List[str] = []
    for field, types in MANIFEST_FIELDS.items():
        if field not in manifest:
            problems.append(f"missing field {field!r}")
        elif not isinstance(manifest[field], types):
            problems.append(
                f"field {field!r} has type {type(manifest[field]).__name__}, "
                f"wanted {'/'.join(t.__name__ for t in types)}"
            )
    if manifest.get("schema") not in (None, MANIFEST_SCHEMA):
        problems.append(
            f"schema version {manifest.get('schema')!r} unknown "
            f"(this build reads {MANIFEST_SCHEMA})"
        )
    if manifest.get("kind") not in (None, "repro.obs.manifest"):
        problems.append(f"kind {manifest.get('kind')!r} is not a run manifest")
    cluster = manifest.get("cluster")
    if isinstance(cluster, dict) and "workers" not in cluster:
        problems.append("cluster description lacks 'workers'")
    return problems


def write_manifest(manifest: Dict[str, Any], path: str) -> None:
    """Write *manifest* as pretty-printed JSON (validating first)."""
    problems = validate_manifest(manifest)
    if problems:
        raise ValueError(f"refusing to write invalid manifest: {problems}")
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_manifest(path: str) -> Dict[str, Any]:
    """Read a manifest back (no validation; callers validate as needed)."""
    with open(path) as fh:
        return json.load(fh)
