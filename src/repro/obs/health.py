"""Online health diagnosis: streaming anomaly detectors over the obs seams.

The paper's scheduler degrades *silently* — a steal storm, a
partition-stalled reclaim, or a false death shows up only as a worse
makespan, and the fuzzer finds such holes post-hoc by shrinking seeds.
This module watches the run while it is in flight: a
:class:`HealthMonitor` receives the same guarded ``is not None`` hook
calls as the metrics registry (worker steal outcomes, Clearinghouse
heartbeat scans, network partition drops, macro job completions) and
turns anomalies into structured, picklable :class:`Incident` records in
a bounded :class:`IncidentRing`.

Detectors (catalogue and thresholds in ``docs/observability.md``):

* ``steal-storm`` — cluster-wide steal-request *timeouts* in a rolling
  window.  Timeouts, not refusals: an empty victim answers instantly,
  so end-of-job scarcity never looks like a storm, while a latency
  spike (grants slower than the thief's budget) does.
* ``heartbeat-gap`` — a registered worker or forwarder silent past a
  fraction of the death timeout (warn), or actually declared dead
  (crit).
* ``false-death`` — a heartbeat arrives from a name the Clearinghouse
  already declared dead: the failure detector was wrong.
* ``partition-stall`` — an ARG/MIGRATE sequence retransmitted past the
  retry budget, or repeated drops on one severed link: in-flight
  protocol state is aging behind a partition.
* ``starvation`` — a worker's consecutive failed steals exceed the
  budget while another worker demonstrably holds work: queue imbalance
  the stealing protocol is failing to correct.
* ``straggler`` — a worker's EWMA service time is a multiple of the
  cluster's: one machine is pathologically slower than its peers.
* ``stall`` — the liveness watchdog: no closure retired for
  ``watchdog_s`` simulated seconds while live workers exist and the job
  is not done.  This is the detection-only net under protocol bugs of
  the bug-12 class (lost redo obligations).
* ``slo-breach`` — a macro-traffic job's sojourn exceeded its SLO.

Everything is passive: hooks never touch the simulator, its RNG, or any
process state, so an instrumented run's TraceLog stays byte-identical
to an uninstrumented one.  All detector state is O(window): rolling
structures carry hard caps and the ring is capacity-bounded
(``tests/obs/test_health.py`` pins both).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

#: Every incident kind a detector can emit (docs/observability.md).
INCIDENT_KINDS: Tuple[str, ...] = (
    "steal-storm",
    "heartbeat-gap",
    "false-death",
    "partition-stall",
    "starvation",
    "straggler",
    "stall",
    "slo-breach",
)

#: Severity ladder (info < warn < crit).
SEVERITIES: Tuple[str, ...] = ("info", "warn", "crit")


@dataclass(frozen=True)
class Incident:
    """One diagnosed anomaly: what, how bad, when, who, and the numbers.

    Frozen and built only from primitives/tuples so records pickle
    across :mod:`repro.parallel` shard boundaries and hash for dedup.
    ``evidence`` is a sorted tuple of ``(counter, value)`` pairs — the
    measurements that crossed a threshold, not prose.
    """

    kind: str
    severity: str
    t_start: float
    t_end: float
    subject: str  # implicated worker, link ("a->b"), or job id
    evidence: Tuple[Tuple[str, Any], ...] = ()

    def row(self) -> Dict[str, Any]:
        """JSON-ready dict (the snapshot/merge interchange shape)."""
        return {
            "kind": self.kind,
            "severity": self.severity,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "subject": self.subject,
            "evidence": {k: v for k, v in self.evidence},
        }

    @staticmethod
    def from_row(row: Dict[str, Any]) -> "Incident":
        return Incident(
            kind=row["kind"],
            severity=row["severity"],
            t_start=row["t_start"],
            t_end=row["t_end"],
            subject=row["subject"],
            evidence=tuple(sorted(row.get("evidence", {}).items())),
        )


def incident_sort_key(row: Dict[str, Any]) -> Tuple:
    """Total order for incident rows: sim-time, then implicated worker,
    then every remaining field — so any two permutations of the same
    multiset of incidents sort to byte-identical JSON."""
    return (
        row["t_start"],
        row["subject"],
        row["kind"],
        row["t_end"],
        row["severity"],
        tuple(sorted((str(k), str(v)) for k, v in row.get("evidence", {}).items())),
    )


class IncidentRing:
    """Capacity-bounded incident buffer, registrable as an instrument.

    Follows the :class:`~repro.obs.metrics.Series` bounding discipline:
    once full, new incidents are counted in ``dropped`` rather than
    evicting old ones (the *first* occurrences of a failure mode are the
    diagnostic ones).  ``snapshot()`` rows come out in the deterministic
    :func:`incident_sort_key` order, which is what makes the sharded
    merge byte-identical to a serial run.
    """

    __slots__ = ("name", "capacity", "dropped", "_incidents")
    kind = "incidents"

    def __init__(self, name: str, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("incident ring capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.dropped = 0
        self._incidents: List[Incident] = []

    def push(self, incident: Incident) -> None:
        if len(self._incidents) >= self.capacity:
            self.dropped += 1
            return
        self._incidents.append(incident)

    def __len__(self) -> int:
        return len(self._incidents)

    @property
    def incidents(self) -> List[Incident]:
        """Recorded incidents in deterministic sort order."""
        return sorted(self._incidents,
                      key=lambda i: incident_sort_key(i.row()))

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "capacity": self.capacity,
            "count": len(self._incidents),
            "dropped": self.dropped,
            "rows": [i.row() for i in self.incidents],
        }


def merge_incident_snapshots(name: str, a: Dict[str, Any],
                             b: Dict[str, Any]) -> Dict[str, Any]:
    """Merge two incident-ring snapshots (the ``_merge_two`` branch).

    Rows concatenate and re-sort under :func:`incident_sort_key`; the
    merged ring honours the first snapshot's capacity, counting any
    overflow as dropped — exactly what one ring fed every shard's
    incidents in sorted order would have recorded.
    """
    capacity = a.get("capacity", 512)
    rows = sorted(list(a.get("rows", ())) + list(b.get("rows", ())),
                  key=incident_sort_key)
    dropped = a.get("dropped", 0) + b.get("dropped", 0)
    if len(rows) > capacity:
        dropped += len(rows) - capacity
        rows = rows[:capacity]
    out = dict(a)
    out["capacity"] = capacity
    out["rows"] = rows
    out["count"] = len(rows)
    out["dropped"] = dropped
    return out


@dataclass(frozen=True)
class HealthConfig:
    """Detector thresholds.  Defaults are calibrated so the fuzzer's
    clean seeds stay silent while every ``--scenario`` class trips its
    matching detector (the scenario-oracle suite in
    ``tests/obs/test_health_oracle.py`` pins both directions)."""

    #: Rolling window for rate detectors (steal-storm, link drops).
    window_s: float = 0.25
    #: Steal-request timeouts across the cluster within one window.
    storm_timeouts: int = 10
    #: Fraction of the death timeout a silent worker may sit before a
    #: heartbeat-gap warning (1.0 would only ever fire as the death).
    gap_fraction: float = 0.6
    #: Retransmissions of one ARG/MIGRATE sequence before it counts as
    #: stalled behind a partition.
    retry_limit: int = 3
    #: Drops on one severed link within a window.
    link_drops: int = 3
    #: Consecutive failed steals before a worker counts as starving —
    #: only while some peer demonstrably holds ``starve_min_depth`` work.
    starve_fails: int = 8
    starve_min_depth: int = 4
    #: A worker whose EWMA service time is this multiple of the
    #: cluster's is a straggler (after both saw enough tasks).
    straggler_factor: float = 6.0
    straggler_min_tasks: int = 30
    #: EWMA smoothing for service times.
    ewma_alpha: float = 0.2
    #: Liveness watchdog: no closure retired for this many simulated
    #: seconds while live workers exist and the job is not done.
    watchdog_s: float = 1.0
    #: Incident ring capacity.
    ring_capacity: int = 512
    #: Hard cap on every rolling structure (retransmission table, storm
    #: window, per-link drop windows) — the O(window) memory bound.
    max_tracked: int = 256


class HealthMonitor:
    """The streaming diagnosis engine: one per run (shared by every
    component the run's :class:`~repro.obs.metrics.MetricsRegistry`
    instruments).

    Construction registers the incident ring with the registry (so the
    ring rides the existing ``snapshot()``/``merge_snapshots`` path) and
    installs the monitor as ``registry.health`` — components resolve
    ``metrics.health`` once in ``__init__`` and guard each hook call
    with the usual single ``is not None`` check.
    """

    def __init__(self, registry: Optional[Any] = None,
                 config: Optional[HealthConfig] = None) -> None:
        self.config = config or HealthConfig()
        cfg = self.config
        if registry is not None:
            self.ring = registry.incidents("health.incidents",
                                           cfg.ring_capacity)
            registry.health = self
        else:
            self.ring = IncidentRing("health.incidents", cfg.ring_capacity)
        # -- steal-storm: (time,) ring of recent steal-request timeouts.
        self._timeouts: Deque[float] = deque()
        self._storm_active = False
        # -- starvation: per-worker consecutive failed steals + last
        #    observed deque depth per worker ("does work exist?").
        self._fail_streak: Dict[str, int] = {}
        self._starving: Dict[str, bool] = {}
        self._last_depth: Dict[str, float] = {}
        # -- straggler: per-worker (ewma, n) + cluster (ewma, n).
        self._service: Dict[str, Tuple[float, int]] = {}
        self._service_all: Tuple[float, int] = (0.0, 0)
        self._stragglers: Dict[str, bool] = {}
        # -- partition-stall: (worker, kind, seq) -> (first_t, retries),
        #    and per-link rolling drop windows.
        self._retrans: Dict[Tuple[str, str, Any], Tuple[float, int]] = {}
        self._link_drops: Dict[str, Deque[float]] = {}
        # -- heartbeat-gap: workers currently in a silence episode.
        self._silent: Dict[str, float] = {}
        # -- watchdog: last closure retirement (or run start).
        self._last_progress: Optional[float] = None
        self._stalled = False
        # -- slo-breach dedup (one incident per job).
        self._breached: set = set()

    # ------------------------------------------------------------------
    # Worker-side hooks
    # ------------------------------------------------------------------

    def steal_timeout(self, now: float, worker: str, victim: str) -> None:
        """A steal request got *no reply* inside the thief's budget."""
        cfg = self.config
        window = self._timeouts
        window.append(now)
        horizon = now - cfg.window_s
        while window and window[0] < horizon:
            window.popleft()
        while len(window) > cfg.max_tracked:
            window.popleft()
        if len(window) >= cfg.storm_timeouts:
            if not self._storm_active:
                self._storm_active = True
                self._emit(Incident(
                    kind="steal-storm", severity="warn",
                    t_start=window[0], t_end=now, subject=worker,
                    evidence=(("timeouts", len(window)),
                              ("window_s", cfg.window_s)),
                ))
        elif len(window) <= cfg.storm_timeouts // 2:
            self._storm_active = False  # storm abated; re-arm
        self._steal_failed(now, worker)

    def steal_refused(self, now: float, worker: str, victim: str) -> None:
        """The victim answered, but had nothing to give."""
        self._steal_failed(now, worker)

    def steal_ok(self, now: float, worker: str) -> None:
        self._fail_streak[worker] = 0
        self._starving[worker] = False

    def _steal_failed(self, now: float, worker: str) -> None:
        cfg = self.config
        streak = self._fail_streak.get(worker, 0) + 1
        self._fail_streak[worker] = streak
        if streak < cfg.starve_fails or self._starving.get(worker):
            return
        held = [(w, d) for w, d in self._last_depth.items()
                if w != worker and d >= cfg.starve_min_depth]
        if not held:
            return
        held.sort(key=lambda wd: (-wd[1], wd[0]))
        self._starving[worker] = True
        self._emit(Incident(
            kind="starvation", severity="warn",
            t_start=now, t_end=now, subject=worker,
            evidence=(("failed_steals", streak),
                      ("holder", held[0][0]),
                      ("holder_depth", held[0][1])),
        ))

    def deque_sample(self, now: float, worker: str, depth: int) -> None:
        self._last_depth[worker] = depth

    def task_done(self, now: float, worker: str, service_s: float) -> None:
        """A closure retired: feeds the watchdog and the straggler EWMA."""
        cfg = self.config
        self._last_progress = now
        self._stalled = False
        self._fail_streak[worker] = 0
        self._starving[worker] = False
        a = cfg.ewma_alpha
        ewma, n = self._service.get(worker, (service_s, 0))
        ewma = ewma + a * (service_s - ewma)
        self._service[worker] = (ewma, n + 1)
        all_ewma, all_n = self._service_all
        if all_n == 0:
            all_ewma = service_s
        all_ewma = all_ewma + a * (service_s - all_ewma)
        self._service_all = (all_ewma, all_n + 1)
        if (not self._stragglers.get(worker)
                and n + 1 >= cfg.straggler_min_tasks
                and all_n + 1 >= 2 * cfg.straggler_min_tasks
                and all_ewma > 0.0
                and ewma >= cfg.straggler_factor * all_ewma):
            self._stragglers[worker] = True
            self._emit(Incident(
                kind="straggler", severity="info",
                t_start=now, t_end=now, subject=worker,
                evidence=(("cluster_ewma_s", all_ewma),
                          ("tasks", n + 1),
                          ("worker_ewma_s", ewma)),
            ))

    def retransmission(self, now: float, worker: str, what: str,
                       seq: Any) -> None:
        """An ARG/MIGRATE sequence was sent again (resilient mode)."""
        cfg = self.config
        key = (worker, what, seq)
        first_t, retries = self._retrans.get(key, (now, 0))
        retries += 1
        if retries >= cfg.retry_limit:
            self._retrans.pop(key, None)
            self._emit(Incident(
                kind="partition-stall", severity="warn",
                t_start=first_t, t_end=now, subject=worker,
                evidence=(("age_s", now - first_t),
                          ("retries", retries),
                          ("what", what)),
            ))
            return
        self._retrans[key] = (first_t, retries)
        while len(self._retrans) > cfg.max_tracked:
            self._retrans.pop(next(iter(self._retrans)))

    # ------------------------------------------------------------------
    # Network-side hooks
    # ------------------------------------------------------------------

    def link_drop(self, now: float, src: str, dst: str) -> None:
        """A datagram died on a severed link (partition drop only —
        random loss and down-host drops have their own detectors)."""
        cfg = self.config
        link = f"{src}->{dst}"
        window = self._link_drops.get(link)
        if window is None:
            if len(self._link_drops) >= cfg.max_tracked:
                self._link_drops.pop(next(iter(self._link_drops)))
            window = self._link_drops[link] = deque()
        window.append(now)
        horizon = now - cfg.window_s
        while window and window[0] < horizon:
            window.popleft()
        while len(window) > cfg.max_tracked:
            window.popleft()
        if len(window) == cfg.link_drops:
            self._emit(Incident(
                kind="partition-stall", severity="warn",
                t_start=window[0], t_end=now, subject=link,
                evidence=(("drops", len(window)),
                          ("window_s", cfg.window_s)),
            ))

    # ------------------------------------------------------------------
    # Clearinghouse-side hooks
    # ------------------------------------------------------------------

    def heartbeat(self, now: float, worker: str, gap_s: float) -> None:
        """A worker/forwarder heartbeat landed; ends any silence episode."""
        self._silent.pop(worker, None)

    def death(self, now: float, worker: str, last_seen: float) -> None:
        """The Clearinghouse declared *worker* dead."""
        self._silent.pop(worker, None)
        self._emit(Incident(
            kind="heartbeat-gap", severity="crit",
            t_start=last_seen, t_end=now, subject=worker,
            evidence=(("declared_dead", 1),
                      ("silence_s", now - last_seen)),
        ))

    def false_death(self, now: float, worker: str) -> None:
        """A heartbeat arrived from a name already declared dead."""
        self._emit(Incident(
            kind="false-death", severity="crit",
            t_start=now, t_end=now, subject=worker,
            evidence=(("heartbeat_after_death", 1),),
        ))

    def pulse(self, now: float, last_seen: Dict[str, float],
              forwarders: Dict[str, float], death_timeout_s: float,
              done: bool) -> None:
        """Periodic scan, driven by the Clearinghouse death detector.

        Two detectors ride it: heartbeat-gap (silence past
        ``gap_fraction`` of the death timeout, warning before the
        detector would kill) and the job-progress watchdog (``stall``).
        """
        cfg = self.config
        threshold = cfg.gap_fraction * death_timeout_s
        for table in (last_seen, forwarders):
            for worker, last in table.items():
                silence = now - last
                if silence < threshold:
                    self._silent.pop(worker, None)
                elif worker not in self._silent:
                    self._silent[worker] = last
                    self._emit(Incident(
                        kind="heartbeat-gap", severity="warn",
                        t_start=last, t_end=now, subject=worker,
                        evidence=(("silence_s", silence),
                                  ("threshold_s", threshold)),
                    ))
        if self._last_progress is None:
            self._last_progress = now
            return
        quiet = now - self._last_progress
        if (not done and not self._stalled and last_seen
                and quiet >= cfg.watchdog_s):
            self._stalled = True
            self._emit(Incident(
                kind="stall", severity="crit",
                t_start=self._last_progress, t_end=now, subject="job",
                evidence=(("live_workers", len(last_seen)),
                          ("quiet_s", quiet)),
            ))

    # ------------------------------------------------------------------
    # Macro-traffic hook
    # ------------------------------------------------------------------

    def job_sojourn(self, now: float, job_id: Any, sojourn_s: float,
                    slo_s: float) -> None:
        """A macro job completed; flag it once if it blew its SLO."""
        if sojourn_s <= slo_s or job_id in self._breached:
            return
        if len(self._breached) >= self.config.max_tracked:
            return  # dedup set is full; the ring has the early breaches
        self._breached.add(job_id)
        self._emit(Incident(
            kind="slo-breach", severity="warn",
            t_start=now - sojourn_s, t_end=now, subject=f"job{job_id}",
            evidence=(("slo_s", slo_s), ("sojourn_s", sojourn_s)),
        ))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _emit(self, incident: Incident) -> None:
        self.ring.push(incident)

    @property
    def incidents(self) -> List[Incident]:
        return self.ring.incidents

    def state_size(self) -> int:
        """Total entries across every rolling structure — the quantity
        the O(window) memory-bound test pins."""
        return (
            len(self._timeouts)
            + len(self._fail_streak)
            + len(self._starving)
            + len(self._last_depth)
            + len(self._service)
            + len(self._stragglers)
            + len(self._retrans)
            + sum(len(w) for w in self._link_drops.values())
            + len(self._link_drops)
            + len(self._silent)
            + len(self._breached)
        )
