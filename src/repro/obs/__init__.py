"""repro.obs — the unified observability layer.

Three pieces (see ``docs/observability.md``):

* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of counters,
  gauges, fixed-bucket histograms, and time series that every layer of
  the scheduler populates when observability is wired in;
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` export of a
  run's :class:`~repro.util.trace.TraceLog` plus registry, openable in
  ``ui.perfetto.dev``;
* :mod:`repro.obs.manifest` — attributable run manifests written next
  to experiment and benchmark outputs;
* :mod:`repro.obs.prof` / :mod:`repro.obs.stream` — the critical-path
  span profiler (T1 / T-inf / overhead attribution) and its streaming
  bounded-memory JSONL/Perfetto sinks, surfaced as ``repro profile``;
* :mod:`repro.obs.health` — the online diagnosis engine: streaming
  anomaly detectors (steal storms, heartbeat gaps, partition stalls,
  starvation, stragglers, liveness stalls, SLO breaches) emitting
  bounded :class:`Incident` rings, surfaced as ``repro diagnose``.
"""

from repro.obs.export import to_perfetto, validate_perfetto, write_perfetto
from repro.obs.health import (
    INCIDENT_KINDS,
    HealthConfig,
    HealthMonitor,
    Incident,
    IncidentRing,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    DEPTH_BUCKETS,
    GRAIN_BUCKETS_S,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    merge_snapshots,
)
from repro.obs.prof import PROFILE_SCHEMA, SpanProfiler, merge_profiles
from repro.obs.stream import (
    JsonlSpanSink,
    StreamingPerfettoWriter,
    TeeSink,
    iter_incidents_jsonl,
    iter_profile_jsonl,
    merge_profile_jsonl,
    read_profile_summary,
    write_incidents_jsonl,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "LATENCY_BUCKETS_S",
    "DEPTH_BUCKETS",
    "GRAIN_BUCKETS_S",
    "merge_snapshots",
    "INCIDENT_KINDS",
    "HealthConfig",
    "HealthMonitor",
    "Incident",
    "IncidentRing",
    "to_perfetto",
    "write_perfetto",
    "validate_perfetto",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "write_manifest",
    "validate_manifest",
    "load_manifest",
    "PROFILE_SCHEMA",
    "SpanProfiler",
    "merge_profiles",
    "JsonlSpanSink",
    "StreamingPerfettoWriter",
    "TeeSink",
    "iter_profile_jsonl",
    "merge_profile_jsonl",
    "read_profile_summary",
    "write_incidents_jsonl",
    "iter_incidents_jsonl",
]
