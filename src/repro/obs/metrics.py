"""The metrics registry: counters, gauges, histograms, time series.

The paper's whole evaluation is observability — counting steals,
synchronizations, messages, and per-participant times — and the related
work argues that *distributions* (steal latency, message latency) drive
makespan, not just counts.  This module is the common registry those
measurements flow into.

Design discipline (same as :meth:`repro.util.trace.TraceLog.emit`):
instrumented components hold ``Optional`` references to their
instruments and guard every hot-path update with an ``is not None``
check, so a run without observability pays one attribute load and a
pointer comparison per site.  A :class:`MetricsRegistry` constructed
with ``enabled=False`` additionally hands out shared null instruments,
so code that unconditionally keeps a registry reference is also cheap.

Names are hierarchical dot-paths (``micro.steal.latency_s``,
``net.msg.inflight``, ``macro.jobq.wait_s``); the catalogue lives in
``docs/observability.md``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Latency histogram edges (seconds): geometric 10 µs .. 10 s, the span
#: from a loopback datagram to a heartbeat-scale stall on the 1994 LAN.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3,
    1e-2, 2e-2, 5e-2,
    1e-1, 2e-1, 5e-1,
    1.0, 2.0, 5.0, 10.0,
)

#: Queue-depth histogram edges (tasks): the paper's "max tasks in use"
#: working sets are tens of tasks; powers-of-two-ish up to 256.
DEPTH_BUCKETS: Tuple[float, ...] = (
    1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256,
)

#: Task-grain histogram edges (simulated seconds of useful work).
GRAIN_BUCKETS_S: Tuple[float, ...] = (
    1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Job-duration histogram edges (seconds): geometric 1 s .. 50000 s,
#: spanning a short job's sojourn to a starved job's queue wait under
#: production traffic (the macro traffic engine's scale).
DURATION_BUCKETS_S: Tuple[float, ...] = (
    1.0, 2.0, 5.0,
    10.0, 20.0, 50.0,
    100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0,
    10000.0, 20000.0, 50000.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Instantaneous value (set/inc/dec); also remembers its peak."""

    __slots__ = ("name", "value", "peak")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def inc(self, n: float = 1.0) -> None:
        self.set(self.value + n)

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value, "peak": self.peak}


class Histogram:
    """Fixed-bucket histogram with underflow/overflow buckets.

    For edges ``(e0, .., e{n-1})`` there are ``n + 1`` buckets: bucket 0
    is the underflow (``v < e0``), bucket ``i`` covers ``e{i-1} <= v <
    e{i}``, and bucket ``n`` is the overflow (``v >= e{n-1}``).  Exact
    sum/count/min/max are tracked alongside, so averages are exact and
    only percentiles are bucket-interpolated.
    """

    __slots__ = ("name", "edges", "counts", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, name: str, edges: Sequence[float] = LATENCY_BUCKETS_S) -> None:
        if len(edges) < 1:
            raise ReproError(f"histogram {name!r} needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, list(edges)[1:])):
            raise ReproError(f"histogram {name!r} edges must strictly increase")
        self.name = name
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        # Linear scan: the edge lists are short (~20) and observations
        # cluster in a few buckets; bisect would not pay for itself.
        edges = self.edges
        i = 0
        n = len(edges)
        while i < n and value >= edges[i]:
            i += 1
        self.counts[i] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Bucket-interpolated q-quantile (q in [0, 1]); None when empty.

        Within a bucket the mass is assumed uniform; the underflow bucket
        interpolates from the observed minimum, the overflow bucket to
        the observed maximum (both exact).
        """
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"percentile wants q in [0, 1], got {q!r}")
        if self.count == 0:
            return None
        target = q * self.count
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cum + n >= target:
                lo = self.min if i == 0 else self.edges[i - 1]
                hi = self.max if i == len(self.edges) else self.edges[i]
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                frac = (target - cum) / n
                return lo + frac * (hi - lo)
            cum += n
        return self.max

    def snapshot(self) -> Dict[str, Any]:
        snap: Dict[str, Any] = {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "mean": self.mean,
            "edges": list(self.edges),
            "counts": list(self.counts),
        }
        snap["percentiles"] = {
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }
        return snap


class Series:
    """Timestamped (time, value) samples of a piecewise-constant quantity.

    The raw material of a Perfetto counter track (deque depth over time,
    live participants over time).  Optionally capacity-bounded the same
    way :class:`~repro.util.trace.TraceLog` is, so a long run cannot
    exhaust memory through its metrics.
    """

    __slots__ = ("name", "samples", "capacity", "dropped")
    kind = "series"

    def __init__(self, name: str, capacity: Optional[int] = None) -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []
        self.capacity = capacity
        self.dropped = 0

    def record(self, time: float, value: float) -> None:
        if self.capacity is not None and len(self.samples) >= self.capacity:
            self.dropped += 1
            return
        self.samples.append((time, float(value)))

    @property
    def last(self) -> Optional[float]:
        return self.samples[-1][1] if self.samples else None

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "n_samples": len(self.samples),
            "dropped": self.dropped,
            "last": self.last,
            "peak": max((v for _t, v in self.samples), default=None),
        }


class _NullInstrument:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    __slots__ = ()
    kind = "null"
    name = "<null>"
    value = 0
    count = 0
    samples: List[Tuple[float, float]] = []

    def inc(self, n: int = 1) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def record(self, time: float, value: float) -> None:
        pass

    def push(self, incident: Any) -> None:
        pass

    def percentile(self, q: float) -> Optional[float]:
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind}


NULL_INSTRUMENT = _NullInstrument()


def _merge_two(name: str, a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Merge one instrument snapshot *b* into a copy of *a*."""
    kind = a.get("kind")
    if kind != b.get("kind"):
        raise ReproError(
            f"cannot merge metric {name!r}: kind {a.get('kind')!r} vs "
            f"{b.get('kind')!r}"
        )
    out = dict(a)
    if kind == "counter":
        out["value"] = a["value"] + b["value"]
    elif kind == "gauge":
        # Shards are concurrent instances of the same quantity: the
        # instantaneous values add, the merged peak is bounded below by
        # each shard's own peak.
        out["value"] = a["value"] + b["value"]
        out["peak"] = max(a["peak"], b["peak"])
    elif kind == "histogram":
        if list(a["edges"]) != list(b["edges"]):
            # ValueError, not ReproError: this is a caller bug (two
            # registries configured differently), and zipping the counts
            # below would silently produce a corrupt merge.
            raise ValueError(
                f"cannot merge histogram {name!r}: bucket edges differ "
                f"({list(a['edges'])} vs {list(b['edges'])})"
            )
        out["counts"] = [x + y for x, y in zip(a["counts"], b["counts"])]
        out["count"] = a["count"] + b["count"]
        out["sum"] = a["sum"] + b["sum"]
        mins = [v for v in (a["min"], b["min"]) if v is not None]
        maxs = [v for v in (a["max"], b["max"]) if v is not None]
        out["min"] = min(mins) if mins else None
        out["max"] = max(maxs) if maxs else None
        out["mean"] = out["sum"] / out["count"] if out["count"] else None
        # Percentiles are not mergeable from summaries; rebuild the
        # interpolation over the combined buckets.
        rebuilt = Histogram(name, a["edges"])
        rebuilt.counts = list(out["counts"])
        rebuilt.count = out["count"]
        rebuilt.sum = out["sum"]
        rebuilt.min = out["min"] if out["min"] is not None else float("inf")
        rebuilt.max = out["max"] if out["max"] is not None else float("-inf")
        out["percentiles"] = {
            "p50": rebuilt.percentile(0.50),
            "p90": rebuilt.percentile(0.90),
            "p99": rebuilt.percentile(0.99),
        }
    elif kind == "series":
        # Snapshots carry summaries, not samples; combine the summaries.
        out["n_samples"] = a["n_samples"] + b["n_samples"]
        out["dropped"] = a["dropped"] + b["dropped"]
        peaks = [v for v in (a.get("peak"), b.get("peak")) if v is not None]
        out["peak"] = max(peaks) if peaks else None
        out["last"] = b.get("last") if b.get("last") is not None else a.get("last")
    elif kind == "incidents":
        # Incident rings: rows concatenate and re-sort under the total
        # incident order, so the sharded merge is byte-identical to one
        # ring that saw every shard's incidents (repro.obs.health).
        from repro.obs.health import merge_incident_snapshots

        out = merge_incident_snapshots(name, a, b)
    # "null" and unknown kinds merge to the first snapshot unchanged.
    return out


def merge_snapshots(
    snapshots: Sequence[Dict[str, Dict[str, Any]]],
) -> Dict[str, Dict[str, Any]]:
    """Combine per-shard :meth:`MetricsRegistry.snapshot` dicts.

    Counters and histogram buckets add, gauge/series peaks take the
    max, histogram percentiles are re-interpolated over the summed
    buckets.  Disjoint names union.  This is the shard-aware merge the
    parallel runner uses to produce one run manifest from N worker
    processes (instrument *objects* never cross the process boundary —
    only these JSON-ready snapshots do).
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for snap in snapshots:
        for name, inst in snap.items():
            if name not in merged:
                merged[name] = dict(inst)
            else:
                merged[name] = _merge_two(name, merged[name], inst)
    return dict(sorted(merged.items()))


class MetricsRegistry:
    """Named instruments under hierarchical dot-path names.

    ``counter``/``gauge``/``histogram``/``series`` create on first use
    and return the existing instrument afterwards, so call sites need no
    setup ceremony.  Asking for an existing name with a different
    instrument kind is an error — silent aliasing would corrupt both
    measurements.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, Any] = {}
        #: The run's :class:`~repro.obs.health.HealthMonitor`, or None.
        #: Installed by the monitor's constructor; components resolve it
        #: once (``metrics.health``) under the usual guarded-seam
        #: discipline, so runs without diagnosis pay nothing.
        self.health: Optional[Any] = None

    def _get_or_make(self, name: str, cls, *args: Any):
        if not self.enabled:
            return NULL_INSTRUMENT
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(name, *args)
        elif not isinstance(inst, cls):
            raise ReproError(
                f"metric {name!r} already registered as {inst.kind}, "
                f"not {cls.kind}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_make(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_make(name, Gauge)

    def histogram(self, name: str, edges: Sequence[float] = LATENCY_BUCKETS_S) -> Histogram:
        return self._get_or_make(name, Histogram, edges)

    def series(self, name: str, capacity: Optional[int] = 100_000) -> Series:
        return self._get_or_make(name, Series, capacity)

    def incidents(self, name: str, capacity: int = 512):
        """A bounded :class:`~repro.obs.health.IncidentRing` instrument
        (create-on-first-use like every other kind)."""
        from repro.obs.health import IncidentRing

        return self._get_or_make(name, IncidentRing, capacity)

    def get(self, name: str) -> Optional[Any]:
        """The instrument registered under *name*, or None."""
        return self._instruments.get(name)

    def names(self, prefix: str = "") -> List[str]:
        """Sorted registered names, optionally filtered by prefix."""
        return sorted(n for n in self._instruments if n.startswith(prefix))

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """name -> instrument snapshot, sorted by name (JSON-ready)."""
        return {name: self._instruments[name].snapshot() for name in self.names()}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
