"""Export a TraceLog (+ MetricsRegistry) to Chrome/Perfetto trace JSON.

The output follows the Chrome ``trace_event`` JSON-array format that
``ui.perfetto.dev`` and ``chrome://tracing`` both open directly:

* one **thread track per worker** (pid/tid pairs with ``process_name``
  and ``thread_name`` metadata), carrying a duration slice for each
  participation span (``worker.start``/``worker.rejoin`` .. the matching
  ``worker.exit.*``) and instant events for steals, migrations, redo
  waves, and crashes;
* **counter tracks** built from registry :class:`~repro.obs.metrics.Series`
  instruments — per-worker deque depth (``micro.deque.depth.<host>``)
  and the live-participant count (``macro.participants``);
* Clearinghouse events (deaths, result delivery) on their own track;
* health :class:`~repro.obs.health.Incident` records (when the registry
  carries a :class:`~repro.obs.health.HealthMonitor`) as instant events
  on the offending worker's track, or on a dedicated ``health`` track
  for cluster-scoped incidents (stalls, SLO breaches).

Simulated seconds map to trace microseconds (the format's native unit).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.util.trace import TraceLog
from repro.viz.timeline import worker_intervals

#: Trace kinds rendered as instant events on the emitting worker's track.
INSTANT_KINDS: Tuple[str, ...] = (
    "steal.request",
    "steal.grant",
    "steal.success",
    "migrate.in",
    "migrate.out",
    "redo",
    "closure.lost",
    "worker.exit.crashed",
    "worker.rejoin",
)

#: Clearinghouse kinds rendered on the control track.
CH_KINDS: Tuple[str, ...] = (
    "ch.register",
    "ch.unregister",
    "ch.worker_died",
    "ch.result",
    "jobq.submit",
    "jobq.grant",
    "jobq.done",
)

#: pid of the per-worker tracks / of the control+counter tracks.
WORKERS_PID = 1
CONTROL_PID = 2
#: tid (under CONTROL_PID) of the health-incident track.
HEALTH_TID = 2

_US = 1e6  # seconds -> trace microseconds


def _jsonable(value: Any) -> Any:
    """Coerce a trace-detail value into something JSON can carry."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def to_perfetto(
    trace: TraceLog,
    registry: Optional[MetricsRegistry] = None,
    job_name: str = "phish",
) -> Dict[str, Any]:
    """Build the trace_event document (a JSON-ready dict)."""
    events: List[Dict[str, Any]] = []
    intervals = worker_intervals(trace)
    # A capacity-truncated trace may have lost the worker.start records;
    # any surviving worker-track event still names its source, so the
    # track set is the union (the slice for an evicted start is simply
    # absent, not a reason to drop the worker's instants).
    instant_sources = {
        ev.source for ev in trace
        if ev.kind in INSTANT_KINDS or ev.kind.startswith("worker.")
    }
    workers = sorted(set(intervals) | instant_sources)
    tids = {name: i + 1 for i, name in enumerate(workers)}

    events.append({
        "ph": "M", "pid": WORKERS_PID, "tid": 0, "ts": 0,
        "name": "process_name", "args": {"name": f"{job_name} workers"},
    })
    events.append({
        "ph": "M", "pid": CONTROL_PID, "tid": 0, "ts": 0,
        "name": "process_name", "args": {"name": f"{job_name} control"},
    })
    for name in workers:
        events.append({
            "ph": "M", "pid": WORKERS_PID, "tid": tids[name], "ts": 0,
            "name": "thread_name", "args": {"name": name},
        })

    # Participation slices: complete events (ph "X") per start..exit span.
    # A worker may have several spans (retire, then rejoin), so pair each
    # start-ish event with the next exit-ish event in trace order.
    open_since: Dict[str, float] = {}
    last_t = 0.0
    for ev in trace:
        last_t = max(last_t, ev.time)
        if ev.kind in ("worker.start", "worker.rejoin"):
            open_since.setdefault(ev.source, ev.time)
        elif ev.kind.startswith("worker.exit."):
            t0 = open_since.pop(ev.source, None)
            if t0 is not None and ev.source in tids:
                events.append({
                    "ph": "X", "pid": WORKERS_PID, "tid": tids[ev.source],
                    "ts": t0 * _US, "dur": max(0.0, ev.time - t0) * _US,
                    "name": "participating", "cat": "worker",
                    "args": {"exit": ev.kind.rsplit(".", 1)[1]},
                })
    for source, t0 in open_since.items():
        if source in tids:
            events.append({
                "ph": "X", "pid": WORKERS_PID, "tid": tids[source],
                "ts": t0 * _US, "dur": max(0.0, last_t - t0) * _US,
                "name": "participating", "cat": "worker",
                "args": {"exit": "running"},
            })

    instant_kinds = set(INSTANT_KINDS)
    ch_kinds = set(CH_KINDS)
    for ev in trace:
        if ev.kind in instant_kinds:
            tid = tids.get(ev.source)
            if tid is None:
                continue
            events.append({
                "ph": "i", "s": "t", "pid": WORKERS_PID, "tid": tid,
                "ts": ev.time * _US, "name": ev.kind,
                "cat": ev.kind.split(".", 1)[0],
                "args": {k: _jsonable(v) for k, v in ev.detail.items()},
            })
        elif ev.kind in ch_kinds:
            events.append({
                "ph": "i", "s": "p", "pid": CONTROL_PID, "tid": 1,
                "ts": ev.time * _US, "name": ev.kind, "cat": "control",
                "args": {k: _jsonable(v) for k, v in ev.detail.items()},
            })

    health = getattr(registry, "health", None) if registry is not None else None
    if health is not None and health.ring.incidents:
        events.append({
            "ph": "M", "pid": CONTROL_PID, "tid": HEALTH_TID, "ts": 0,
            "name": "thread_name", "args": {"name": "health"},
        })
        for inc in health.ring.incidents:
            tid = tids.get(inc.subject)
            # Instants must land inside the trace's time range (the
            # validator rejects strays); a detector that fires at a
            # pulse after the last traced event is clamped to it.
            ts = min(max(inc.t_start, 0.0), last_t) * _US
            ev: Dict[str, Any] = {
                "ph": "i", "ts": ts, "name": f"health.{inc.kind}",
                "cat": "health",
                "args": {
                    "severity": inc.severity,
                    "subject": inc.subject,
                    "t_end": inc.t_end,
                    **{k: _jsonable(v) for k, v in inc.evidence},
                },
            }
            if tid is not None:
                ev.update({"s": "t", "pid": WORKERS_PID, "tid": tid})
            else:
                ev.update({"s": "p", "pid": CONTROL_PID, "tid": HEALTH_TID})
            events.append(ev)

    if registry is not None:
        for name in registry.names():
            inst = registry.get(name)
            if inst is None or inst.kind != "series":
                continue
            # "micro.deque.depth.ws03" -> counter "deque depth ws03".
            label = name.replace("micro.deque.depth.", "deque depth ") \
                if name.startswith("micro.deque.depth.") else name
            for t, v in inst.samples:
                events.append({
                    "ph": "C", "pid": CONTROL_PID, "ts": t * _US,
                    "name": label, "args": {"value": v},
                })

    # The format does not require global ordering, but a time-sorted
    # array keeps every per-track sequence monotonic and diffs stable.
    events.sort(key=lambda e: (e["ts"], e["ph"] != "M"))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"job": job_name, "trace_events": len(trace),
                      "trace_dropped": trace.dropped,
                      # A truncated log lost its *oldest* events, so the
                      # rendered timeline starts mid-run; viewers of the
                      # doc alone must be able to tell.
                      "trace_truncated": trace.truncated},
    }


def write_perfetto(
    trace: TraceLog,
    path: str,
    registry: Optional[MetricsRegistry] = None,
    job_name: str = "phish",
) -> Dict[str, Any]:
    """Write the export to *path*; returns the document."""
    doc = to_perfetto(trace, registry, job_name)
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return doc


#: Phase types emitted by this exporter and the streaming profile
#: writer, with their required keys.  "E" carries no name: it closes
#: the innermost open "B" on its track.
_REQUIRED_KEYS: Dict[str, Tuple[str, ...]] = {
    "M": ("name", "pid", "args"),
    "X": ("name", "pid", "tid", "ts", "dur"),
    "B": ("name", "pid", "tid", "ts"),
    "E": ("pid", "tid", "ts"),
    "i": ("name", "pid", "tid", "ts", "s"),
    "C": ("name", "pid", "ts", "args"),
}


def validate_perfetto(doc: Dict[str, Any]) -> List[str]:
    """Check *doc* against the Chrome trace_event JSON-object format.

    Returns a list of problems (empty = valid): structural shape, the
    per-phase required keys, numeric non-negative timestamps,
    monotonically non-decreasing ``ts`` within each (pid, tid) track,
    properly nested ``B``/``E`` duration pairs per track (every ``E``
    closes an open ``B``; a named ``E`` must match the ``B`` it closes;
    no ``B`` left open at the end of the document), and instant (``i``)
    events landing inside the trace's time range — no later than the
    last non-instant event ends (a stray instant past the end usually
    means a timestamp-unit bug in the producer; negative ``ts`` is
    already rejected for every phase).
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    # End of the substantive (non-instant, non-metadata) events;
    # instants are checked against it below.  A doc with no such events
    # has no range to enforce.
    t_hi = None
    for ev in events:
        if not isinstance(ev, dict) or ev.get("ph") in ("M", "i"):
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        end = ts + ev["dur"] if (
            ev.get("ph") == "X" and isinstance(ev.get("dur"), (int, float))
        ) else ts
        t_hi = end if t_hi is None else max(t_hi, end)
    last_ts: Dict[Tuple[Any, Any], float] = {}
    open_b: Dict[Tuple[Any, Any], List[str]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        required = _REQUIRED_KEYS.get(ph)
        if required is None:
            problems.append(f"event {i} has unknown phase {ph!r}")
            continue
        missing = [k for k in required if k not in ev]
        if missing:
            problems.append(f"event {i} ({ph}) missing keys {missing}")
            continue
        ts = ev.get("ts", 0)
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i} has bad ts {ts!r}")
            continue
        if ph == "X" and (not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0):
            problems.append(f"event {i} has bad dur {ev['dur']!r}")
        if ph == "i":
            if ev["s"] not in ("t", "p", "g"):
                problems.append(f"event {i} has bad instant scope {ev['s']!r}")
            if t_hi is not None and ts > t_hi:
                problems.append(
                    f"event {i} instant ts {ts} outside trace range "
                    f"[0, {t_hi}]"
                )
        if ph != "M":
            key = (ev.get("pid"), ev.get("tid"))
            if ts < last_ts.get(key, 0.0):
                problems.append(
                    f"event {i} ts {ts} not monotonic on track {key}"
                )
            last_ts[key] = ts
            if ph == "B":
                open_b.setdefault(key, []).append(ev["name"])
            elif ph == "E":
                stack = open_b.get(key)
                if not stack:
                    problems.append(
                        f"event {i} E with no open B on track {key}"
                    )
                    continue
                begun = stack.pop()
                name = ev.get("name")
                if name is not None and name != begun:
                    problems.append(
                        f"event {i} E name {name!r} closes B {begun!r} "
                        f"on track {key}"
                    )
    for key, stack in sorted(open_b.items(), key=lambda kv: str(kv[0])):
        for name in stack:
            problems.append(f"unclosed B {name!r} on track {key}")
    return problems
