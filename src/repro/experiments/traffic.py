"""Policy competition under production traffic: the macro-level sweep.

The paper's JobQ ran a handful of jobs under one policy (round-robin).
This sweep runs the policy × arrival matrix under thousand-job traffic
(:mod:`repro.macro.traffic`) and reports, per cell, the numbers that
separate assignment policies in practice: makespan, job throughput,
and the p50/p95/p99 of job sojourn and queue wait.

Every cell is an independently-seeded simulation, so the matrix shards
over a process pool (``--jobs``) with byte-identical output at any
fan-out — the same discipline as the figure sweeps.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.experiments.report import render_table
from repro.macro.policies import POLICY_FACTORIES
from repro.macro.traffic import (
    ARRIVAL_FACTORIES,
    TrafficConfig,
    TrafficReport,
    run_traffic,
)

#: Default competition: the paper's policy against the three upgrades
#: (SRPT-style, fair-share, interrupt-driven sharing).
TRAFFIC_POLICIES: Tuple[str, ...] = ("rr", "srp", "fair", "interrupt")

#: Default arrival mix: steady Poisson plus the diurnal profile.
TRAFFIC_ARRIVALS: Tuple[str, ...] = ("poisson", "diurnal")


def _describe_cell(config: TrafficConfig) -> str:
    return f"{config.policy} x {config.arrival} seed={config.seed}"


def _run_traffic_cell(config: TrafficConfig) -> TrafficReport:
    """Shard task: one policy × arrival cell (module-level: picklable)."""
    return run_traffic(config)


@dataclass(frozen=True)
class TrafficMatrix:
    """The full sweep in matrix order (policy-major, arrival-minor)."""

    reports: Tuple[TrafficReport, ...]
    n_workstations: int
    n_jobs: int
    seed: int


def run_traffic_matrix(
    policies: Sequence[str] = TRAFFIC_POLICIES,
    arrivals: Sequence[str] = TRAFFIC_ARRIVALS,
    n_jobs: int = 1000,
    n_workstations: int = 16,
    seed: int = 0,
    jobs: int = 1,
    base: Optional[TrafficConfig] = None,
) -> TrafficMatrix:
    """Run every (policy, arrival) cell and collect the reports.

    ``jobs > 1`` fans the cells out over worker processes; each cell is
    a fully-seeded deterministic simulation, so the matrix is
    byte-identical at any ``jobs``.  *base* overrides the remaining
    traffic knobs (rates, sizes, owner model) for every cell.
    """
    from repro.parallel import ShardedRunner

    for policy in policies:
        if policy not in POLICY_FACTORIES:
            raise ReproError(
                f"unknown traffic policy {policy!r}; "
                f"known: {sorted(POLICY_FACTORIES)}")
    for arrival in arrivals:
        if arrival not in ARRIVAL_FACTORIES:
            raise ReproError(
                f"unknown arrival process {arrival!r}; "
                f"known: {sorted(ARRIVAL_FACTORIES)}")
    template = base or TrafficConfig()
    specs = [
        dataclasses.replace(
            template, policy=policy, arrival=arrival,
            n_jobs=n_jobs, n_workstations=n_workstations, seed=seed,
        )
        for policy in policies
        for arrival in arrivals
    ]
    reports, _stats = ShardedRunner(jobs=jobs).map(
        _run_traffic_cell, specs, label="traffic-matrix",
        describe=_describe_cell,
    )
    return TrafficMatrix(
        reports=tuple(reports),
        n_workstations=n_workstations,
        n_jobs=n_jobs,
        seed=seed,
    )


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.1f}"


def format_traffic(matrix: TrafficMatrix) -> str:
    """Render the policy × arrival matrix as one comparison table."""
    rows = []
    for rep in matrix.reports:
        rows.append((
            rep.policy,
            rep.arrival,
            f"{rep.n_completed}/{rep.n_submitted}",
            f"{rep.makespan_s:.1f}",
            f"{rep.throughput_jobs_per_s:.3f}",
            _fmt(rep.latency_p50_s),
            _fmt(rep.latency_p95_s),
            _fmt(rep.latency_p99_s),
            _fmt(rep.wait_p50_s),
            _fmt(rep.wait_p99_s),
            rep.grants,
            rep.scanned,
        ))
    return render_table(
        f"Macro policy competition — {matrix.n_jobs} jobs on "
        f"{matrix.n_workstations} workstations, seed={matrix.seed} "
        f"(latency = submit-to-completion sojourn, wait = submit to "
        f"first machine grant; seconds)",
        ["policy", "arrival", "done", "makespan (s)", "jobs/s",
         "lat p50", "lat p95", "lat p99", "wait p50", "wait p99",
         "grants", "scanned"],
        rows,
    )
