"""Latency-aware stealing sweep: makespan vs steal latency vs theory.

The paper ran on one Ethernet segment where every steal pays the same
half-millisecond.  Its future-work section asks what happens when the
network is *not* uniform; the later analyses of Gast, Khatiri and
Trystram answer for the random-stealing case: with steal latency
``lambda`` the expected makespan is bounded by

    E[C_max]  <=  W/p  +  c * lambda * log2(W),     c ~= 16.12

(*"A tighter analysis of work stealing with latency"*).  This sweep
measures that curve on a two-segment cluster whose backbone latency is
scaled through several decades, once per victim/steal policy:

* ``random``       — the paper's protocol (uniform random victim, one
  task per grant), the policy the bound is proved for.
* ``steal-half``   — random victim, up to half the victim's ready list
  per grant (amortises the round-trip).
* ``low-latency``  — EWMA-RTT victim selection (prefer near victims).
* ``ll-half-early``— low-latency victims + steal-half + proactive
  requests fired one task before the deque runs dry.

Every point is an independently seeded simulation, so the sweep shards
over a process pool (``--jobs``) with byte-identical output at any
fan-out, like the other exhibits.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.apps.pfold import pfold_job
from repro.cluster.platform import ETHERNET_UDP, SPARCSTATION_1
from repro.errors import ReproError
from repro.experiments.report import render_ascii_plot, render_table
from repro.micro.worker import WorkerConfig
from repro.net.topology import SegmentedTopology
from repro.phish import run_job

#: Backbone latency multipliers swept (x the 0.5 ms Ethernet base):
#: 0.5 ms .. 32 ms one-way, the WAN-ish range the analyses consider.
LAMBDA_MULTIPLIERS: Tuple[float, ...] = (1.0, 4.0, 16.0, 64.0)

#: The constant of the Gast et al. bound E[Cmax] <= W/p + c*lambda*log2(W).
GAST_CONSTANT = 16.12

#: WorkerConfig overrides per swept policy (plain kwargs so shard specs
#: stay picklable; the config object is built inside the shard).
POLICY_CONFIGS: Dict[str, Dict[str, Any]] = {
    "random": dict(victim_policy="random"),
    "steal-half": dict(victim_policy="random", steal_amount="half"),
    "low-latency": dict(victim_policy="low-latency"),
    "ll-half-early": dict(victim_policy="low-latency", steal_amount="half",
                          proactive_threshold=1),
}

#: Sweep order (stable, so output is reproducible).
POLICIES: Tuple[str, ...] = ("random", "steal-half", "low-latency",
                             "ll-half-early")

#: Sweep workload: a 9-mer pfold (3,172 tasks) scaled so per-task work
#: (~1.4 ms) is commensurate with the swept latencies — fine enough
#: grain for stealing to matter, coarse enough that latency does too.
DEFAULT_SEQUENCE = "HPHPPHHPH"
DEFAULT_WORK_SCALE = 100.0
DEFAULT_WORKERS = 8


def two_segment_topology(n_workers: int, lam_multiplier: float) -> SegmentedTopology:
    """The sweep's cluster: two equal LAN segments, slow backbone.

    Hosts ``ws00..`` split half-and-half; intra-segment links are the
    paper's Ethernet, the backbone pays ``lam_multiplier`` x its wire
    latency (bandwidth unchanged — the sweep isolates latency).
    """
    inter = dataclasses.replace(
        ETHERNET_UDP,
        wire_latency_s=ETHERNET_UDP.wire_latency_s * lam_multiplier,
    )
    segment_of = {
        f"ws{i:02d}": ("lan0" if i < (n_workers + 1) // 2 else "lan1")
        for i in range(n_workers)
    }
    return SegmentedTopology(segment_of, intra=ETHERNET_UDP, inter=inter)


@dataclass(frozen=True)
class _SweepSpec:
    """One (policy, lambda) cell — picklable primitives only, so the
    sweep fans out over a process pool exactly like the figure curves."""

    policy: str
    lam_multiplier: float
    n_workers: int
    sequence: str
    work_scale: float
    seed: int

    def describe(self) -> str:
        return f"{self.policy} @ {self.lam_multiplier:g}x"


@dataclass(frozen=True)
class _RawRun:
    """Measured outcome of one cell (bound is attached in the parent)."""

    policy: str
    lam_multiplier: float
    makespan_s: float
    tasks_executed: int
    tasks_stolen: int
    avg_steal_latency_s: float
    proactive_steals: int
    #: Profiler-derived overhead attribution (repro.obs.prof): the
    #: critical-path span and the summed per-worker bucket fractions —
    #: where each policy's wall-clock actually went.
    t_inf_s: float
    work_frac: float
    steal_frac: float
    idle_frac: float


def _run_sweep_point(spec: _SweepSpec) -> _RawRun:
    """Shard task: one pfold run at one (policy, backbone latency) cell."""
    from repro.obs.prof import SpanProfiler

    overrides = POLICY_CONFIGS[spec.policy]
    config = dataclasses.replace(WorkerConfig(), **overrides)
    profiler = SpanProfiler()  # sink-less: aggregates only, O(live) memory
    result = run_job(
        pfold_job(spec.sequence, work_scale=spec.work_scale),
        n_workers=spec.n_workers,
        profile=SPARCSTATION_1,
        seed=spec.seed,
        worker_config=config,
        topology=two_segment_topology(spec.n_workers, spec.lam_multiplier),
        profiler=profiler,
    )
    stats = result.stats
    workers = (result.profile or {}).get("workers", {})
    wall = sum(w["wall_s"] for w in workers.values())
    frac = (lambda key: sum(w[key] for w in workers.values()) / wall
            if wall > 0 else 0.0)
    return _RawRun(
        policy=spec.policy,
        lam_multiplier=spec.lam_multiplier,
        makespan_s=result.makespan,
        tasks_executed=stats.tasks_executed,
        tasks_stolen=stats.tasks_stolen,
        avg_steal_latency_s=stats.avg_steal_latency_s,
        proactive_steals=sum(w.proactive_steals_sent for w in stats.workers),
        t_inf_s=profiler.t_inf_s,
        work_frac=frac("working_s"),
        steal_frac=frac("stealing_s"),
        idle_frac=frac("idle_s"),
    )


@dataclass(frozen=True)
class LatencyPoint:
    """One cell of the sweep with its analytical companion."""

    policy: str
    lam_s: float
    makespan_s: float
    bound_s: float
    tasks_stolen: int
    avg_steal_latency_s: float
    proactive_steals: int
    #: Profile attribution: critical-path span and wall-clock fractions.
    t_inf_s: float
    work_frac: float
    steal_frac: float
    idle_frac: float


@dataclass(frozen=True)
class LatencySweep:
    """The full sweep plus the quantities the bound is computed from."""

    points: Tuple[LatencyPoint, ...]
    t1_s: float
    n_tasks: int
    n_workers: int


def gast_bound_s(
    t1_s: float,
    n_workers: int,
    lam_s: float,
    n_tasks: int,
    startup_s: float = 0.0,
) -> float:
    """The Gast/Khatiri/Trystram bound ``W/p + c*lambda*log2(W)``.

    ``W`` enters the additive term through the task count (each unit of
    work is one task in their model), so we use ``log2(n_tasks)``; the
    ``W/p`` term uses measured serial time.  ``startup_s`` adds the
    fixed per-run cluster-assembly cost (process startup, registration)
    our simulation charges but their model has no notion of — without
    it the smallest-latency cells would sit above the bound for a
    reason that has nothing to do with stealing.
    """
    if n_workers < 1 or n_tasks < 1 or t1_s < 0 or lam_s < 0:
        raise ReproError("bound needs positive work, workers and latency")
    return (t1_s / n_workers + GAST_CONSTANT * lam_s * math.log2(max(2, n_tasks))
            + startup_s)


def run_latency_sweep(
    lam_multipliers: Sequence[float] = LAMBDA_MULTIPLIERS,
    policies: Sequence[str] = POLICIES,
    n_workers: int = DEFAULT_WORKERS,
    sequence: str = DEFAULT_SEQUENCE,
    work_scale: float = DEFAULT_WORK_SCALE,
    seed: int = 0,
    jobs: int = 1,
) -> LatencySweep:
    """Measure makespan at every (policy, backbone latency) cell.

    A 1-worker run (latency-independent) supplies the ``W/p`` term of
    the bound.  ``jobs > 1`` fans the cells out over worker processes;
    every cell is an independently seeded simulation, so the sweep is
    byte-identical at any ``jobs``.
    """
    from repro.parallel import ShardedRunner

    for policy in policies:
        if policy not in POLICY_CONFIGS:
            raise ReproError(
                f"unknown sweep policy {policy!r}; known: {sorted(POLICY_CONFIGS)}")
    specs = [_SweepSpec(policy="random", lam_multiplier=1.0, n_workers=1,
                        sequence=sequence, work_scale=work_scale, seed=seed)]
    specs += [
        _SweepSpec(policy=policy, lam_multiplier=mult, n_workers=n_workers,
                   sequence=sequence, work_scale=work_scale, seed=seed)
        for mult in lam_multipliers
        for policy in policies
    ]
    raws, _stats = ShardedRunner(jobs=jobs).map(
        _run_sweep_point, specs, label="latency-sweep",
        describe=_SweepSpec.describe,
    )
    baseline, cells = raws[0], raws[1:]
    t1 = baseline.makespan_s
    n_tasks = baseline.tasks_executed
    points = tuple(
        LatencyPoint(
            policy=raw.policy,
            lam_s=ETHERNET_UDP.wire_latency_s * raw.lam_multiplier,
            makespan_s=raw.makespan_s,
            bound_s=gast_bound_s(t1, n_workers, ETHERNET_UDP.wire_latency_s
                                 * raw.lam_multiplier, n_tasks,
                                 startup_s=WorkerConfig().startup_cost_s),
            tasks_stolen=raw.tasks_stolen,
            avg_steal_latency_s=raw.avg_steal_latency_s,
            proactive_steals=raw.proactive_steals,
            t_inf_s=raw.t_inf_s,
            work_frac=raw.work_frac,
            steal_frac=raw.steal_frac,
            idle_frac=raw.idle_frac,
        )
        for raw in cells
    )
    return LatencySweep(points=points, t1_s=t1, n_tasks=n_tasks,
                        n_workers=n_workers)


def format_latency(sweep: LatencySweep) -> str:
    """Render the sweep: plot of makespan vs lambda, bound as reference."""
    measured = [(pt.lam_s * 1e3, pt.makespan_s) for pt in sweep.points]
    bound = sorted({(pt.lam_s * 1e3, pt.bound_s) for pt in sweep.points})
    plot = render_ascii_plot(
        "Makespan vs steal latency — measured policies vs Gast et al. bound",
        measured,
        xlabel="backbone one-way latency (ms)",
        ylabel="makespan (s)",
        reference=bound,
    )
    rows = [
        (
            f"{pt.lam_s * 1e3:g}",
            pt.policy,
            f"{pt.makespan_s:.3f}",
            f"{pt.bound_s:.3f}",
            "yes" if pt.makespan_s <= pt.bound_s else "NO",
            pt.tasks_stolen,
            f"{pt.avg_steal_latency_s * 1e3:.2f}",
            pt.proactive_steals,
            f"{pt.t_inf_s * 1e3:.1f}",
            f"{pt.work_frac * 100:.1f}",
            f"{pt.steal_frac * 100:.1f}",
            f"{pt.idle_frac * 100:.1f}",
        )
        for pt in sweep.points
    ]
    table = render_table(
        f"Latency sweep data — pfold workload, P={sweep.n_workers}, "
        f"T1={sweep.t1_s:.2f}s, {sweep.n_tasks} tasks "
        f"(bound = T1/P + {GAST_CONSTANT} * lambda * log2(tasks) + startup; "
        f"work/steal/idle from the span profiler's wall attribution)",
        ["lambda (ms)", "policy", "makespan (s)", "bound (s)", "<= bound",
         "stolen", "avg steal RTT (ms)", "proactive", "T-inf (ms)",
         "work %", "steal %", "idle %"],
        rows,
    )
    return plot + "\n\n" + table
