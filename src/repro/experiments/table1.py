"""Table 1: serial slowdown of fib, nqueens, and ray on both platforms.

"The serial slowdown of an application is measured as the ratio of the
single-processor execution time of the parallel code to the execution
time of the best serial implementation of the same algorithm."

Measured here as the 1-worker parallel CPU-busy time (which excludes
the fixed startup/registration costs, as the paper's per-application
timing did) over the cost-model time of the instrumented serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps import fib as fib_mod
from repro.apps import nqueens as nq_mod
from repro.apps.ray import app as ray_mod
from repro.cluster.platform import CM5_NODE, SPARCSTATION_10, PlatformProfile
from repro.experiments.report import render_table
from repro.phish import run_job
from repro.tasks.cost import serial_time_seconds

#: The published Table 1.
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "fib": {"cm5-node": 4.44, "sparcstation-10": 5.90},
    "nqueens": {"cm5-node": 1.09, "sparcstation-10": 1.12},
    "ray": {"cm5-node": 1.00, "sparcstation-10": 1.04},
}


@dataclass(frozen=True)
class Table1Row:
    app: str
    platform: str
    measured: float
    paper: float

    @property
    def relative_error(self) -> float:
        return abs(self.measured - self.paper) / self.paper


def serial_slowdown(
    job, serial_work_cycles: float, serial_calls: int, profile: PlatformProfile, seed: int = 0
) -> float:
    """One slowdown measurement: 1-worker run vs the serial cost model."""
    result = run_job(job, n_workers=1, profile=profile, seed=seed)
    t_serial = serial_time_seconds(serial_work_cycles, serial_calls, profile)
    t_parallel = result.workers[0].stats.busy_s
    return t_parallel / t_serial


def run_table1(
    fib_n: int = 18,
    nqueens_n: int = 8,
    ray_width: int = 32,
    ray_height: int = 24,
    seed: int = 0,
) -> List[Table1Row]:
    """Regenerate Table 1 (three applications, two platforms)."""
    rows: List[Table1Row] = []
    fib_work, fib_calls = fib_mod.serial_metrics(fib_n)
    nq = nq_mod.nqueens_serial(nqueens_n)
    ray = ray_mod.ray_serial(width=ray_width, height=ray_height)
    measurements = [
        ("fib", lambda: fib_mod.fib_job(fib_n), fib_work, fib_calls),
        ("nqueens", lambda: nq_mod.nqueens_job(nqueens_n), nq.work_cycles, nq.calls),
        (
            "ray",
            lambda: ray_mod.ray_job(width=ray_width, height=ray_height),
            ray.work_cycles,
            ray.calls,
        ),
    ]
    for app, job_factory, work, calls in measurements:
        for profile in (CM5_NODE, SPARCSTATION_10):
            measured = serial_slowdown(job_factory(), work, calls, profile, seed)
            rows.append(
                Table1Row(
                    app=app,
                    platform=profile.name,
                    measured=measured,
                    paper=PAPER_TABLE1[app][profile.name],
                )
            )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render the measured-vs-paper comparison."""
    table = [
        (r.app, r.platform, f"{r.measured:.2f}", f"{r.paper:.2f}",
         f"{100 * r.relative_error:.1f}%")
        for r in rows
    ]
    return render_table(
        "Table 1 — serial slowdown (parallel 1-proc time / best serial time)",
        ["app", "platform", "measured", "paper", "rel.err"],
        table,
    )
