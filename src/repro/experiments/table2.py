"""Table 2: pfold message and scheduling statistics at P=4 and P=8.

The published numbers (10.39 M tasks):

======================  ==============  ==============
row                     4 participants  8 participants
======================  ==============  ==============
Tasks executed          10,390,216      10,390,216
Max tasks in use        59              59
Tasks stolen            70              133
Synchronizations        10,390,214      10,390,214
Non-local synchs        55              122
Messages sent           1,598           1,998
Execution time          182 sec.        94 sec.
======================  ==============  ==============

The scaled default workload executes ~65 k tasks, so the absolute row
values differ; what reproduces is the *structure* the paper argues
from: steals and non-local synchs are a vanishing fraction of tasks and
synchronizations, the working set ("max tasks in use") is tiny and does
not grow with P, few messages are sent, and time halves from P=4 to
P=8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.pfold import pfold_job
from repro.cluster.platform import SPARCSTATION_1, PlatformProfile
from repro.experiments.figures import DEFAULT_SEQUENCE, DEFAULT_WORK_SCALE
from repro.experiments.report import fmt, render_table
from repro.micro.worker import WorkerConfig
from repro.phish import run_job

#: The published Table 2, keyed by participant count.
PAPER_TABLE2: Dict[int, Dict[str, float]] = {
    4: {
        "Tasks executed": 10_390_216,
        "Max tasks in use": 59,
        "Tasks stolen": 70,
        "Synchronizations": 10_390_214,
        "Non-local synchs": 55,
        "Messages sent": 1_598,
        "Execution time": 182.0,
    },
    8: {
        "Tasks executed": 10_390_216,
        "Max tasks in use": 59,
        "Tasks stolen": 133,
        "Synchronizations": 10_390_214,
        "Non-local synchs": 122,
        "Messages sent": 1_998,
        "Execution time": 94.0,
    },
}

ROW_ORDER = [
    "Tasks executed",
    "Max tasks in use",
    "Tasks stolen",
    "Synchronizations",
    "Non-local synchs",
    "Messages sent",
    "Execution time",
]


@dataclass(frozen=True)
class Table2Column:
    """One measured column (one participant count)."""

    participants: int
    rows: Dict[str, float]

    def locality_ratios(self) -> Dict[str, float]:
        """The ratios the paper's locality argument rests on."""
        return {
            "steals_per_task": self.rows["Tasks stolen"] / self.rows["Tasks executed"],
            "nonlocal_synch_fraction": (
                self.rows["Non-local synchs"] / self.rows["Synchronizations"]
            ),
            "working_set_fraction": (
                self.rows["Max tasks in use"] / self.rows["Tasks executed"]
            ),
        }


@dataclass(frozen=True)
class _ColumnSpec:
    """One Table 2 column run — picklable for the ``--jobs`` fan-out."""

    sequence: str
    work_scale: float
    participants: int
    profile: PlatformProfile
    seed: int
    worker_config: Optional[WorkerConfig]


def _run_column(spec: _ColumnSpec) -> Table2Column:
    """Shard task: one pfold run producing one measured column."""
    result = run_job(
        pfold_job(spec.sequence, work_scale=spec.work_scale),
        n_workers=spec.participants,
        profile=spec.profile,
        seed=spec.seed,
        worker_config=spec.worker_config,
    )
    return Table2Column(participants=spec.participants,
                        rows=result.stats.table2_rows())


def run_table2(
    sequence: str = DEFAULT_SEQUENCE,
    work_scale: float = DEFAULT_WORK_SCALE,
    participants: Sequence[int] = (4, 8),
    profile: PlatformProfile = SPARCSTATION_1,
    seed: int = 0,
    worker_config: Optional[WorkerConfig] = None,
    jobs: int = 1,
) -> List[Table2Column]:
    """Regenerate the Table 2 statistics at each participant count.

    Each repetition is an independent seeded simulation; ``jobs > 1``
    runs them as parallel shard tasks with identical results, columns
    reassembled in input order.
    """
    from repro.parallel import ShardedRunner

    specs = [
        _ColumnSpec(sequence=sequence, work_scale=work_scale, participants=p,
                    profile=profile, seed=seed, worker_config=worker_config)
        for p in participants
    ]
    columns, _stats = ShardedRunner(jobs=jobs).map(
        _run_column, specs, label="table2",
        describe=lambda s: f"P={s.participants}",
    )
    return columns


def format_table2(columns: List[Table2Column]) -> str:
    """Render measured columns next to the paper's (where published)."""
    headers = ["statistic"]
    for col in columns:
        headers.append(f"{col.participants}P measured")
        if col.participants in PAPER_TABLE2:
            headers.append(f"{col.participants}P paper")
    body: List[List[str]] = []
    for row_name in ROW_ORDER:
        line = [row_name]
        for col in columns:
            line.append(fmt(col.rows[row_name]))
            if col.participants in PAPER_TABLE2:
                line.append(fmt(PAPER_TABLE2[col.participants][row_name]))
        body.append(line)
    out = render_table(
        "Table 2 — pfold message and scheduling statistics", headers, body
    )
    ratio_rows = []
    for col in columns:
        ratios = col.locality_ratios()
        ratio_rows.append(
            (
                col.participants,
                f"{ratios['steals_per_task']:.2e}",
                f"{ratios['nonlocal_synch_fraction']:.2e}",
                f"{ratios['working_set_fraction']:.2e}",
            )
        )
    out += "\n\n" + render_table(
        "Locality ratios (the paper's argument: all tiny)",
        ["P", "steals/task", "non-local synch frac", "working-set frac"],
        ratio_rows,
    )
    return out
