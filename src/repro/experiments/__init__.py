"""Reproduction drivers for every table and figure in the paper.

Each module regenerates one exhibit of the paper's Section 4 and
formats it next to the published values:

* :mod:`repro.experiments.table1` — serial slowdown (fib / nqueens / ray
  on CM-5+Strata vs SparcStation-10+Phish).
* :mod:`repro.experiments.figures` — Figure 4 (pfold average execution
  time vs participants) and Figure 5 (speedup vs participants).
* :mod:`repro.experiments.table2` — pfold locality statistics at 4 and
  8 participants.
* :mod:`repro.experiments.latency` — makespan vs steal latency on a
  two-segment cluster, per victim/steal policy, against the Gast et
  al. analytical bound (the future-work direction of Section 5).
* :mod:`repro.experiments.ablations` — the design-choice studies
  DESIGN.md calls out (LIFO/FIFO orders, victim policy, idle- vs
  sender-initiated vs central queue, space- vs time-sharing, retirement,
  fault overhead, network heterogeneity).
"""

from repro.experiments.table1 import Table1Row, format_table1, run_table1
from repro.experiments.table2 import Table2Column, format_table2, run_table2
from repro.experiments.figures import (
    FigurePoint,
    format_figure4,
    format_figure5,
    run_speedup_curve,
)
from repro.experiments.latency import (
    LatencyPoint,
    LatencySweep,
    format_latency,
    gast_bound_s,
    run_latency_sweep,
)

__all__ = [
    "run_table1",
    "format_table1",
    "Table1Row",
    "run_table2",
    "format_table2",
    "Table2Column",
    "run_speedup_curve",
    "format_figure4",
    "format_figure5",
    "FigurePoint",
    "run_latency_sweep",
    "format_latency",
    "gast_bound_s",
    "LatencyPoint",
    "LatencySweep",
]
