"""Paper-scale runs: millions of tasks, minutes of host CPU.

The default exhibits use a scaled pfold workload (64,832 tasks).  This
driver runs the big enumerations — up to the paper's 10.39-million-task
magnitude — for users who want the locality ratios at full scale.  It is
deliberately not part of the benchmark suite; invoke it directly:

    python -m repro.experiments.full_scale [length] [P]

Approximate square-lattice task counts by polymer length (tasks ≈
2 × symmetry-reduced SAW count × (1 + merge overhead)):

    length 12 ->     64,832      length 15 ->  1,276,722
    length 13 ->    178,618      length 16 ->  3,468,056
    length 14 ->    643,236      length 17 ->  9,438,172  (paper scale)
"""

from __future__ import annotations

import sys
import time

from repro.apps.pfold import BENCHMARK_20MER, pfold_job, pfold_serial
from repro.experiments.report import fmt, render_table
from repro.phish import run_job


def run_full_scale(length: int = 14, participants: int = 8, seed: int = 0):
    """One big pfold run; returns (JobResult, serial oracle, wall seconds)."""
    if not (2 <= length <= len(BENCHMARK_20MER)):
        raise ValueError(f"length must be in [2, {len(BENCHMARK_20MER)}]")
    sequence = BENCHMARK_20MER[:length]
    started = time.perf_counter()
    serial = pfold_serial(sequence)
    result = run_job(pfold_job(sequence), n_workers=participants, seed=seed)
    wall = time.perf_counter() - started
    if result.result != serial.result:
        raise AssertionError("full-scale histogram mismatch (bug!)")
    return result, serial, wall


def main(argv=None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    length = int(args[0]) if args else 14
    participants = int(args[1]) if len(args) > 1 else 8
    result, serial, wall = run_full_scale(length, participants)
    stats = result.stats
    rows = [
        ("Polymer length", length),
        ("Participants", participants),
        ("Foldings", fmt(serial.result.total())),
        ("Tasks executed", fmt(stats.tasks_executed)),
        ("Max tasks in use", stats.max_tasks_in_use),
        ("Tasks stolen", stats.tasks_stolen),
        ("Steals per task", f"{stats.tasks_stolen / stats.tasks_executed:.2e}"),
        ("Non-local synch frac",
         f"{stats.non_local_synchs / max(1, stats.synchronizations):.2e}"),
        ("Messages sent", fmt(stats.messages_sent)),
        ("Histogram exact", True),
        ("Host wall time", f"{wall:.1f}s"),
    ]
    print(render_table(f"Full-scale pfold({length}) on {participants} machines",
                       ["quantity", "value"], rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
