"""Idle-cycle harvesting: the paper's motivating scenario, measured.

"Since much of a typical workstation's computing capacity goes unused
[Condor], a workstation network presents a large source of compute
power."  This experiment quantifies how much of that unused capacity the
idle-initiated macro scheduler actually harvests: a building of
workstations whose owners come and go (renewal traces), a stream of
submitted jobs, and accounting of idle capacity versus cycles delivered
to parallel work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Sequence

from repro.apps.pfold import pfold_job, pfold_serial
from repro.cluster.owner import AlwaysIdleTrace, RenewalOwnerTrace
from repro.experiments.report import render_table
from repro.macro.jobmanager import JobManagerConfig
from repro.macro.system import PhishSystem, PhishSystemConfig


@dataclass
class HarvestReport:
    """What a harvesting run produced."""

    n_machines: int
    n_jobs: int
    horizon_s: float
    #: Machine-seconds whose owner was away (the harvestable capacity).
    idle_capacity_s: float
    #: Machine-seconds actually spent computing parallel work.
    harvested_s: float
    jobs_completed: int
    all_results_exact: bool
    workers_started: int
    workers_reclaimed: int

    @property
    def harvest_fraction(self) -> float:
        """Share of owner-idle capacity converted into parallel work."""
        return self.harvested_s / self.idle_capacity_s if self.idle_capacity_s else 0.0


def run_harvest(
    n_machines: int = 10,
    n_jobs: int = 3,
    seed: int = 0,
    busy_mean_s: float = 30.0,
    idle_mean_s: float = 60.0,
    job_spacing_s: float = 5.0,
    sequence: str = "HPHPPHHPHPPH",
    work_scale: float = 60.0,
) -> HarvestReport:
    """Run the harvesting scenario and account for the idle cycles.

    Machine 0 (the submit host, also running the JobQ) is kept
    owner-idle so submissions always have a first worker; every other
    owner follows a compressed busy/idle renewal process.
    """

    def traces(rng, host):
        if host == "ws00":
            return AlwaysIdleTrace()
        return RenewalOwnerTrace(rng, busy_mean_s=busy_mean_s,
                                 idle_mean_s=idle_mean_s, start_busy_prob=0.5)

    system = PhishSystem(
        PhishSystemConfig(
            n_workstations=n_machines,
            seed=seed,
            owner_trace=traces,
            jobmanager=JobManagerConfig(busy_poll_s=5.0, no_job_retry_s=5.0),
        )
    )
    expected = pfold_serial(sequence, work_scale=work_scale).result
    handles = []

    def submitter(sim) -> Generator:
        for i in range(n_jobs):
            handles.append(
                system.submit(
                    pfold_job(sequence, work_scale=work_scale, name=f"pfold#{i}"),
                    from_host="ws00",
                )
            )
            yield sim.timeout(job_spacing_s)

    # Idle-capacity accounting: integrate owner-idle time per machine by
    # sampling state transitions coarsely (1 s steps are exact enough for
    # renewal means >= 30 s and keep the sampler cheap).
    samples = {"idle_s": 0.0}

    def sampler(sim) -> Generator:
        while True:
            samples["idle_s"] += sum(
                1.0 for ws in system.workstations if not ws.user_logged_in
            )
            yield sim.timeout(1.0)

    system.sim.process(submitter(system.sim), name="harvest-submitter")
    system.sim.process(sampler(system.sim), name="harvest-sampler")
    # Jobs are submitted over time, so wait in rounds: finish everything
    # submitted so far, then let the submitter catch up.
    system.sim.run(until=0.001)  # first submission lands
    while True:
        system.run_until_done(timeout_s=36_000)
        if len(handles) == n_jobs and all(h.done.is_set for h in handles):
            break
        system.sim.run(until=system.sim.now + job_spacing_s)
    horizon = system.sim.now

    harvested = sum(ws.cpu_busy_s for ws in system.workstations)
    report = HarvestReport(
        n_machines=n_machines,
        n_jobs=n_jobs,
        horizon_s=horizon,
        idle_capacity_s=samples["idle_s"],
        harvested_s=harvested,
        jobs_completed=sum(1 for h in handles if h.done.is_set),
        all_results_exact=all(h.result == expected for h in handles),
        workers_started=sum(jm.jobs_started for jm in system.jobmanagers.values()),
        workers_reclaimed=sum(
            jm.workers_reclaimed for jm in system.jobmanagers.values()
        ),
    )
    system.stop()
    return report


@dataclass(frozen=True)
class HarvestSpec:
    """One harvesting repetition — picklable for the ``--jobs`` pool."""

    seed: int
    n_machines: int = 10
    n_jobs: int = 3
    busy_mean_s: float = 30.0
    idle_mean_s: float = 60.0
    job_spacing_s: float = 5.0
    sequence: str = "HPHPPHHPHPPH"
    work_scale: float = 60.0


def _run_harvest_rep(spec: HarvestSpec) -> HarvestReport:
    """Shard task: one full harvesting scenario at one seed."""
    return run_harvest(
        n_machines=spec.n_machines,
        n_jobs=spec.n_jobs,
        seed=spec.seed,
        busy_mean_s=spec.busy_mean_s,
        idle_mean_s=spec.idle_mean_s,
        job_spacing_s=spec.job_spacing_s,
        sequence=spec.sequence,
        work_scale=spec.work_scale,
    )


def run_harvest_sweep(
    seeds: Sequence[int],
    jobs: int = 1,
    **params,
) -> List[HarvestReport]:
    """Repeat the harvesting scenario at several seeds (owner churn is
    stochastic, so the harvest fraction is a distribution — one rep is
    an anecdote).  ``jobs > 1`` fans repetitions out over a process
    pool; reports come back in seed order either way.
    """
    from repro.parallel import ShardedRunner

    specs = [HarvestSpec(seed=s, **params) for s in seeds]
    reports, _stats = ShardedRunner(jobs=jobs).map(
        _run_harvest_rep, specs, label="harvest",
        describe=lambda s: f"seed={s.seed}",
    )
    return reports


def format_harvest_sweep(seeds: Sequence[int],
                         reports: List[HarvestReport]) -> str:
    """Per-seed harvest rows plus the sweep means."""
    rows = []
    for seed, r in zip(seeds, reports):
        rows.append((
            seed, f"{r.jobs_completed}/{r.n_jobs}", r.all_results_exact,
            f"{r.horizon_s:.0f}s", f"{r.idle_capacity_s:.0f}",
            f"{r.harvested_s:.0f}", f"{100 * r.harvest_fraction:.1f}%",
            r.workers_reclaimed,
        ))
    n = max(1, len(reports))
    rows.append((
        "mean", "-", all(r.all_results_exact for r in reports),
        f"{sum(r.horizon_s for r in reports) / n:.0f}s",
        f"{sum(r.idle_capacity_s for r in reports) / n:.0f}",
        f"{sum(r.harvested_s for r in reports) / n:.0f}",
        f"{100 * sum(r.harvest_fraction for r in reports) / n:.1f}%",
        sum(r.workers_reclaimed for r in reports) // n,
    ))
    return render_table(
        f"Idle-cycle harvesting — {len(reports)} repetitions",
        ["seed", "jobs done", "exact", "horizon", "idle machine-s",
         "harvested machine-s", "fraction", "reclaims"],
        rows,
    )


def format_harvest(report: HarvestReport) -> str:
    rows = [
        ("Machines", report.n_machines),
        ("Jobs submitted / completed", f"{report.n_jobs} / {report.jobs_completed}"),
        ("Results exact", report.all_results_exact),
        ("Run horizon", f"{report.horizon_s:.1f}s"),
        ("Owner-idle capacity", f"{report.idle_capacity_s:.0f} machine-seconds"),
        ("Harvested compute", f"{report.harvested_s:.0f} machine-seconds"),
        ("Harvest fraction", f"{100 * report.harvest_fraction:.1f}%"),
        ("Workers started", report.workers_started),
        ("Workers reclaimed by owners", report.workers_reclaimed),
    ]
    return render_table(
        "Idle-cycle harvesting under owner churn", ["quantity", "value"], rows
    )
