"""Figures 4 and 5: pfold execution time and speedup vs participants.

The paper runs pfold on a network of SparcStation 1s with P in
{1, 2, 4, 8, 16, 32}, reporting the average per-participant wall-clock
time (Figure 4, ~600 s at P=1) and the speedup
``S_P = P * T1 / sum_i T_P(i)`` (Figure 5, near-perfect linear with a
visible droop at 32 from fixed registration overheads).

The default workload is a scaled pfold (fewer tasks than the paper's
10.39 M) with ``work_scale`` chosen so T1 lands at the paper's
magnitude; the fixed overheads (worker startup, registration RPC) are
the same as everywhere else, which is what produces the droop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.apps.pfold import pfold_job
from repro.cluster.platform import SPARCSTATION_1, PlatformProfile
from repro.experiments.report import render_ascii_plot, render_table
from repro.micro.worker import WorkerConfig
from repro.phish import run_job
from repro.util.stats import speedup_paper

#: Participant counts of the paper's Figures 4 and 5.
PAPER_PARTICIPANTS = (1, 2, 4, 8, 16, 32)

#: Standard scaled workload: 12-mer polymer (64,832 tasks) with the
#: per-task work scaled so the 1-participant run takes on the order of
#: the paper's ~600 s on a SparcStation 1.
DEFAULT_SEQUENCE = "HPHPPHHPHPPH"
DEFAULT_WORK_SCALE = 535.0


@dataclass(frozen=True)
class FigurePoint:
    """One measured point of the speedup/time curves."""

    participants: int
    average_time_s: float
    speedup: float
    tasks_stolen: int
    messages_sent: int
    max_tasks_in_use: int


@dataclass(frozen=True)
class _PointSpec:
    """One (participants) point of the curve — picklable, so the sweep
    can fan points out over a process pool (``--jobs``)."""

    sequence: str
    work_scale: float
    participants: int
    profile: PlatformProfile
    seed: int
    worker_config: Optional[WorkerConfig]


@dataclass(frozen=True)
class _RawPoint:
    """A point before the speedup is known (needs the P=1 time)."""

    participants: int
    execution_times: Tuple[float, ...]
    average_time_s: float
    tasks_stolen: int
    messages_sent: int
    max_tasks_in_use: int


def _run_point(spec: _PointSpec) -> _RawPoint:
    """Shard task: one pfold run at one participant count."""
    result = run_job(
        pfold_job(spec.sequence, work_scale=spec.work_scale),
        n_workers=spec.participants,
        profile=spec.profile,
        seed=spec.seed,
        worker_config=spec.worker_config,
    )
    return _RawPoint(
        participants=spec.participants,
        execution_times=tuple(result.stats.execution_times),
        average_time_s=result.stats.average_execution_time,
        tasks_stolen=result.stats.tasks_stolen,
        messages_sent=result.stats.messages_sent,
        max_tasks_in_use=result.stats.max_tasks_in_use,
    )


def run_speedup_curve(
    sequence: str = DEFAULT_SEQUENCE,
    work_scale: float = DEFAULT_WORK_SCALE,
    participants: Sequence[int] = PAPER_PARTICIPANTS,
    profile: PlatformProfile = SPARCSTATION_1,
    seed: int = 0,
    worker_config: Optional[WorkerConfig] = None,
    jobs: int = 1,
) -> List[FigurePoint]:
    """Run pfold at each participant count; returns the curve points.

    The P=1 run (required for the speedup denominator) is added
    automatically if absent from *participants*.  ``jobs > 1`` runs the
    points as parallel shard tasks; every run is an independently
    seeded simulation, so the curve is identical either way.
    """
    from repro.parallel import ShardedRunner

    counts = sorted(set(participants) | {1})
    specs = [
        _PointSpec(sequence=sequence, work_scale=work_scale, participants=p,
                   profile=profile, seed=seed, worker_config=worker_config)
        for p in counts
    ]
    raws, _stats = ShardedRunner(jobs=jobs).map(
        _run_point, specs, label="speedup-curve",
        describe=lambda s: f"P={s.participants}",
    )
    t1 = next(r for r in raws if r.participants == 1).execution_times[0]
    points = [
        FigurePoint(
            participants=raw.participants,
            average_time_s=raw.average_time_s,
            speedup=speedup_paper(t1, list(raw.execution_times)),
            tasks_stolen=raw.tasks_stolen,
            messages_sent=raw.messages_sent,
            max_tasks_in_use=raw.max_tasks_in_use,
        )
        for raw in raws
    ]
    return [pt for pt in points if pt.participants in set(participants) or pt.participants == 1]


def format_figure4(points: List[FigurePoint]) -> str:
    """Figure 4: average execution time vs number of processors."""
    plot = render_ascii_plot(
        "Figure 4 — pfold average execution time vs participants",
        [(pt.participants, pt.average_time_s) for pt in points],
        xlabel="participants",
        ylabel="avg execution time (s)",
    )
    table = render_table(
        "Figure 4 data",
        ["P", "avg time (s)"],
        [(pt.participants, f"{pt.average_time_s:.1f}") for pt in points],
    )
    return plot + "\n\n" + table


def format_figure5(points: List[FigurePoint]) -> str:
    """Figure 5: speedup vs number of processors (with the ideal line)."""
    plot = render_ascii_plot(
        "Figure 5 — pfold speedup vs participants (dashed: perfect linear)",
        [(pt.participants, pt.speedup) for pt in points],
        xlabel="participants",
        ylabel="speedup S_P",
        reference=[(pt.participants, float(pt.participants)) for pt in points],
    )
    table = render_table(
        "Figure 5 data",
        ["P", "S_P", "ideal", "efficiency"],
        [
            (
                pt.participants,
                f"{pt.speedup:.2f}",
                pt.participants,
                f"{100 * pt.speedup / pt.participants:.1f}%",
            )
            for pt in points
        ],
    )
    return plot + "\n\n" + table
