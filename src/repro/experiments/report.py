"""Plain-text rendering of tables and figures (no plotting deps)."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple


def render_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table with a title rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_ascii_plot(
    title: str,
    points: List[Tuple[float, float]],
    xlabel: str,
    ylabel: str,
    width: int = 56,
    height: int = 16,
    reference: List[Tuple[float, float]] | None = None,
) -> str:
    """A scatter plot in ASCII: ``*`` for the data, ``.`` for a reference
    series (e.g. the perfect-linear-speedup dashed line of Figure 5)."""
    if not points:
        raise ValueError("nothing to plot")
    every = points + (reference or [])
    xs = [p[0] for p in every]
    ys = [p[1] for p in every]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, ch: str) -> None:
        col = round((x - x0) / xspan * (width - 1))
        row = height - 1 - round((y - y0) / yspan * (height - 1))
        if grid[row][col] == " " or ch == "*":
            grid[row][col] = ch

    for x, y in reference or []:
        put(x, y, ".")
    for x, y in points:
        put(x, y, "*")
    lines = [title, "=" * len(title)]
    lines.append(f"{ylabel} ({y1:.4g} top, {y0:.4g} bottom)")
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"{xlabel}: {x0:.4g} .. {x1:.4g}   (* measured, . reference)")
    return "\n".join(lines)


#: Column order of the per-worker overhead-attribution table — the
#: profile's wall-clock buckets (see docs/observability.md).
ATTRIBUTION_COLUMNS: Tuple[str, ...] = (
    "working", "stealing", "migrating", "protocol", "idle")


def attribution_rows(
    workers: Dict[str, Dict[str, Any]],
) -> List[Tuple[object, ...]]:
    """Rows of the overhead-attribution table from a profile summary's
    ``workers`` dict (one row per worker, name-sorted, plus a totals
    row): wall seconds, then each bucket as seconds and percent of
    wall.  Shared by ``repro profile`` and the experiment reports."""
    rows: List[Tuple[object, ...]] = []
    totals = {name: 0.0 for name in ATTRIBUTION_COLUMNS}
    total_wall = 0.0
    for worker in sorted(workers):
        row = workers[worker]
        wall = row.get("wall_s", 0.0)
        total_wall += wall
        cells: List[object] = [worker, f"{wall:.4f}"]
        for name in ATTRIBUTION_COLUMNS:
            val = row.get(f"{name}_s", 0.0)
            totals[name] += val
            pct = 100.0 * val / wall if wall > 0 else 0.0
            cells.append(f"{val:.4f} ({pct:4.1f}%)")
        cells.append(row.get("exit", "-"))
        rows.append(tuple(cells))
    if len(rows) > 1:
        cells = ["TOTAL", f"{total_wall:.4f}"]
        for name in ATTRIBUTION_COLUMNS:
            pct = 100.0 * totals[name] / total_wall if total_wall > 0 else 0.0
            cells.append(f"{totals[name]:.4f} ({pct:4.1f}%)")
        cells.append("-")
        rows.append(tuple(cells))
    return rows


def render_attribution(title: str, workers: Dict[str, Dict[str, Any]]) -> str:
    """The overhead-attribution table, rendered."""
    headers = ["worker", "wall (s)"] + [f"{c} (s)" for c in ATTRIBUTION_COLUMNS]
    headers.append("exit")
    return render_table(title, headers, attribution_rows(workers))


def render_run_diff(title: str, diff: Dict[str, List]) -> str:
    """Render a :func:`~repro.obs.manifest.diff_manifests` result.

    Two tables — provenance drift first (the usual explanation for a
    metrics delta), then the changed metric paths with signed deltas.
    Identical runs render a single "no differences" line.
    """
    sections: List[str] = []
    if diff["provenance"]:
        sections.append(render_table(
            f"{title} — provenance drift",
            ["field", "run A", "run B"],
            [(f, _cell(va), _cell(vb)) for f, va, vb in diff["provenance"]],
        ))
    if diff["metrics"]:
        sections.append(render_table(
            f"{title} — metric deltas",
            ["metric", "run A", "run B", "delta"],
            [
                (path, _cell(va), _cell(vb),
                 f"{delta:+g}" if delta is not None else "-")
                for path, va, vb, delta in diff["metrics"]
            ],
        ))
    if not sections:
        sections.append(f"{title}: no differences")
    return "\n\n".join(sections)


def _cell(value: Any) -> str:
    """One diff cell: compact numbers, '-' for a side with no value."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def fmt(value: float, digits: int = 2) -> str:
    """Format a number compactly (thousands separators for big ints)."""
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer() and abs(value) >= 1000):
        return f"{int(value):,}"
    return f"{value:.{digits}f}"
