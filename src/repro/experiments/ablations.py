"""Ablations: the design choices the paper argues for, measured.

Each function runs a controlled comparison and returns rows suitable
for :func:`repro.experiments.report.render_table`; ``format_*``
companions render them.  These back the claims:

* LIFO execution + FIFO stealing preserves memory and communication
  locality (Section 2, "supported by intuition, analytic results, and
  empirical data").
* Random victim selection suffices (the Blumofe–Leiserson bound).
* Idle-initiated scheduling moves less than sender-initiated balancing
  ("the idle-initiated scheduler does not move a task unless an idle
  machine requests work") and enormously less than a central queue.
* Space-sharing beats time-sharing (Tucker & Gupta).
* Workers retire when parallelism shrinks, freeing machines.
* Crashed machines cost redone work, not wrong answers.
* A heterogeneous (segmented) network slows naive stealing — the
  paper's future-work motivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.pfold import pfold_job, pfold_serial
from repro.baselines.sharing import SharingComparison, compare_sharing
from repro.cluster.platform import SPARCSTATION_1, PlatformProfile
from repro.experiments.report import render_table
from repro.fault.crash import CrashPlan, run_job_with_crashes
from repro.micro.worker import WorkerConfig
from repro.net.topology import SegmentedTopology
from repro.phish import run_job
from repro.tasks.program import JobProgram

#: Standard ablation workload: big enough for steals to matter, small
#: enough for quick runs.
ABLATION_SEQUENCE = "HPHPPHHPHPPH"
ABLATION_SCALE = 60.0
ABLATION_P = 8


def _job() -> JobProgram:
    return pfold_job(ABLATION_SEQUENCE, work_scale=ABLATION_SCALE)


@dataclass(frozen=True)
class AblationRow:
    variant: str
    avg_time_s: float
    tasks_stolen: int
    messages_sent: int
    max_tasks_in_use: int
    migrated: int
    correct: bool


def _measure(config: WorkerConfig, seed: int = 0, n: int = ABLATION_P,
             profile: PlatformProfile = SPARCSTATION_1, topology=None,
             variant: str = "") -> AblationRow:
    expected = pfold_serial(ABLATION_SEQUENCE, work_scale=ABLATION_SCALE).result
    result = run_job(_job(), n_workers=n, profile=profile, seed=seed,
                     worker_config=config, topology=topology)
    return AblationRow(
        variant=variant,
        avg_time_s=result.stats.average_execution_time,
        tasks_stolen=result.stats.tasks_stolen,
        messages_sent=result.stats.messages_sent,
        max_tasks_in_use=result.stats.max_tasks_in_use,
        migrated=sum(w.tasks_migrated_in for w in result.stats.workers),
        correct=result.result == expected,
    )


def _render(title: str, rows: List[AblationRow]) -> str:
    return render_table(
        title,
        ["variant", "avg time (s)", "steals", "messages", "max in use",
         "migrated", "correct"],
        [
            (r.variant, f"{r.avg_time_s:.2f}", r.tasks_stolen, r.messages_sent,
             r.max_tasks_in_use, r.migrated, r.correct)
            for r in rows
        ],
    )


# ---------------------------------------------------------------------------
# 1. Execution/steal order
# ---------------------------------------------------------------------------

def run_order_ablation(seed: int = 0) -> List[AblationRow]:
    """The paper's LIFO-exec/FIFO-steal versus the other three combos.

    Expectation: FIFO execution explodes the working set ("max in use");
    LIFO stealing exports leaf tasks, multiplying steal traffic.
    """
    rows = []
    for exec_order in ("lifo", "fifo"):
        for steal_order in ("fifo", "lifo"):
            cfg = WorkerConfig(exec_order=exec_order, steal_order=steal_order)
            label = f"exec={exec_order} steal={steal_order}"
            if exec_order == "lifo" and steal_order == "fifo":
                label += " (paper)"
            rows.append(_measure(cfg, seed=seed, variant=label))
    return rows


def format_order_ablation(rows: List[AblationRow]) -> str:
    return _render("Ablation — ready-list execution and steal order", rows)


# ---------------------------------------------------------------------------
# 2. Victim selection
# ---------------------------------------------------------------------------

def run_victim_ablation(seed: int = 0) -> List[AblationRow]:
    """Uniformly-random victim (paper) vs deterministic round-robin."""
    return [
        _measure(WorkerConfig(victim_policy="random"), seed=seed,
                 variant="random (paper)"),
        _measure(WorkerConfig(victim_policy="round-robin"), seed=seed,
                 variant="round-robin"),
    ]


def format_victim_ablation(rows: List[AblationRow]) -> str:
    return _render("Ablation — steal victim selection", rows)


# ---------------------------------------------------------------------------
# 3. Who initiates load distribution
# ---------------------------------------------------------------------------

def run_initiation_ablation(seed: int = 0) -> List[AblationRow]:
    """Idle-initiated stealing vs central queue vs sender-initiated push.

    Expectation: the central queue turns every spawn into messages; the
    push balancer moves tasks nobody asked for; idle-initiated stealing
    moves almost nothing.
    """
    return [
        _measure(WorkerConfig(mode="steal"), seed=seed,
                 variant="idle-initiated steal (paper)"),
        _measure(WorkerConfig(mode="central"), seed=seed, variant="central queue"),
        _measure(
            WorkerConfig(mode="push", push_threshold=4, load_broadcast_s=0.1),
            seed=seed,
            variant="sender-initiated push",
        ),
    ]


def format_initiation_ablation(rows: List[AblationRow]) -> str:
    return _render("Ablation — idle-initiated vs alternatives", rows)


# ---------------------------------------------------------------------------
# 4. Space-sharing vs time-sharing
# ---------------------------------------------------------------------------

def run_sharing_ablation(
    n_jobs: int = 4, n_workstations: int = 8, seed: int = 0
) -> SharingComparison:
    """K identical pfold jobs on N machines, both macro disciplines."""
    jobs = [
        pfold_job(ABLATION_SEQUENCE, work_scale=ABLATION_SCALE, name=f"pfold#{i}")
        for i in range(n_jobs)
    ]
    return compare_sharing(jobs, n_workstations, seed=seed)


def format_sharing_ablation(cmp: SharingComparison) -> str:
    rows = [
        ("space-sharing", f"{cmp.space_mean:.2f}", f"{cmp.space_makespan:.2f}"),
        ("time-sharing (gang)", f"{cmp.time_mean:.2f}", f"{cmp.time_makespan:.2f}"),
    ]
    table = render_table(
        f"Ablation — macro discipline for {len(cmp.space_completion_s)} jobs on "
        f"{cmp.n_workstations} workstations",
        ["discipline", "mean completion (s)", "makespan (s)"],
        rows,
    )
    return table + (
        f"\ntime-sharing mean completion is {cmp.mean_advantage:.2f}x "
        f"space-sharing's (quantum {cmp.quantum_s}s, switch {cmp.switch_cost_s}s)"
    )


# ---------------------------------------------------------------------------
# 5. Retirement threshold
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetirementRow:
    retire_after: Optional[int]
    retired_workers: int
    makespan_s: float
    mean_busy_fraction: float
    correct: bool


def run_retirement_ablation(
    thresholds: Sequence[Optional[int]] = (None, 5, 15, 40), seed: int = 0
) -> List[RetirementRow]:
    """How eagerly workers conclude "parallelism has shrunk" and retire.

    Uses the :mod:`repro.apps.shrink` workload — a wide phase followed
    by a long sequential chain.  With a finite threshold, the starved
    workers retire during the chain and hand their machines back to the
    macro scheduler; with None they sit failing steals until the end.
    """
    from repro.apps.shrink import shrink_expected, shrink_job

    width, chain = ABLATION_P * 6, 1500
    expected = shrink_expected(width, chain)
    rows = []
    for threshold in thresholds:
        cfg = WorkerConfig(retire_after_failed_steals=threshold)
        result = run_job(
            shrink_job(width, chain), n_workers=ABLATION_P, seed=seed,
            worker_config=cfg,
        )
        retired = sum(1 for w in result.workers if w.exit_reason == "retired")
        busy_fracs = [
            w.busy_s / w.execution_time
            for w in result.stats.workers
            if w.execution_time > 0
        ]
        rows.append(
            RetirementRow(
                retire_after=threshold,
                retired_workers=retired,
                makespan_s=result.makespan,
                mean_busy_fraction=sum(busy_fracs) / len(busy_fracs),
                correct=result.result == expected,
            )
        )
    return rows


def format_retirement_ablation(rows: List[RetirementRow]) -> str:
    return render_table(
        "Ablation — retirement after consecutive failed steals (shrink workload)",
        ["retire after", "retired workers", "makespan (s)", "mean busy frac", "correct"],
        [
            (
                "never" if r.retire_after is None else r.retire_after,
                r.retired_workers,
                f"{r.makespan_s:.2f}",
                f"{r.mean_busy_fraction:.2f}",
                r.correct,
            )
            for r in rows
        ],
    )


# ---------------------------------------------------------------------------
# 6. Fault overhead
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultRow:
    crashes: int
    makespan_s: float
    tasks_redone: int
    duplicate_sends: int
    correct: bool


def run_fault_ablation(
    crash_counts: Sequence[int] = (0, 1, 2), seed: int = 0
) -> List[FaultRow]:
    """Crash k machines mid-job; measure the redo overhead."""
    expected = pfold_serial(ABLATION_SEQUENCE, work_scale=ABLATION_SCALE).result
    rows = []
    for k in crash_counts:
        # Stagger crashes through the run; never crash the CH host (0).
        plan = CrashPlan([(4.0 + 3.0 * i, 1 + i) for i in range(k)])
        result = run_job_with_crashes(_job(), ABLATION_P, plan, seed=seed)
        rows.append(
            FaultRow(
                crashes=k,
                makespan_s=result.makespan,
                tasks_redone=sum(w.tasks_redone for w in result.stats.workers),
                duplicate_sends=sum(w.duplicate_sends for w in result.stats.workers),
                correct=result.result == expected,
            )
        )
    return rows


def format_fault_ablation(rows: List[FaultRow]) -> str:
    return render_table(
        "Ablation — crash recovery (fail-stop machines mid-job)",
        ["crashes", "makespan (s)", "tasks redone", "dup sends", "correct"],
        [
            (r.crashes, f"{r.makespan_s:.2f}", r.tasks_redone,
             r.duplicate_sends, r.correct)
            for r in rows
        ],
    )


# ---------------------------------------------------------------------------
# 7. Network heterogeneity (the paper's future work)
# ---------------------------------------------------------------------------

def run_heterogeneity_ablation(seed: int = 0) -> List[AblationRow]:
    """Uniform LAN vs two segments joined by a 10x-slower backbone.

    The paper's future work: "Our new scheduling techniques attempt to
    preserve locality with respect to those network cuts that have the
    least bandwidth."  This measures how much the naive (cut-oblivious)
    thief loses on a segmented network — the gap such techniques would
    close.
    """
    profile = SPARCSTATION_1
    inter = profile.net.__class__(
        send_overhead_s=profile.net.send_overhead_s,
        recv_overhead_s=profile.net.recv_overhead_s,
        wire_latency_s=profile.net.wire_latency_s * 100,  # a congested bridge
        bandwidth_bytes_per_s=profile.net.bandwidth_bytes_per_s / 10,
    )

    def segmented() -> SegmentedTopology:
        return SegmentedTopology(
            {f"ws{i:02d}": ("segA" if i < ABLATION_P // 2 else "segB")
             for i in range(ABLATION_P)},
            intra=profile.net,
            inter=inter,
        )

    # The paper's FIFO stealing moves so few tasks the slow cut barely
    # shows; the leaf-stealing (LIFO) variant crosses the cut thousands
    # of times and exposes exactly the gap the future-work techniques
    # target.
    return [
        _measure(WorkerConfig(), seed=seed, variant="FIFO steal, uniform LAN"),
        _measure(WorkerConfig(), seed=seed, topology=segmented(),
                 variant="FIFO steal, slow backbone"),
        _measure(WorkerConfig(steal_order="lifo"), seed=seed,
                 variant="LIFO steal, uniform LAN"),
        _measure(WorkerConfig(steal_order="lifo"), seed=seed, topology=segmented(),
                 variant="LIFO steal, slow backbone"),
    ]


def format_heterogeneity_ablation(rows: List[AblationRow]) -> str:
    return _render("Ablation — network heterogeneity (future-work motivation)", rows)


# ---------------------------------------------------------------------------
# Section registry and parallel fan-out (see repro.parallel)
# ---------------------------------------------------------------------------

#: Display-order registry of every ablation: name -> (runner, formatter).
#: All runners take only ``seed``, so one picklable spec covers them.
SECTIONS = {
    "order": (run_order_ablation, format_order_ablation),
    "victim": (run_victim_ablation, format_victim_ablation),
    "initiation": (run_initiation_ablation, format_initiation_ablation),
    "sharing": (run_sharing_ablation, format_sharing_ablation),
    "retirement": (run_retirement_ablation, format_retirement_ablation),
    "faults": (run_fault_ablation, format_fault_ablation),
    "heterogeneity": (run_heterogeneity_ablation, format_heterogeneity_ablation),
}


@dataclass(frozen=True)
class _SectionSpec:
    """One ablation section to run — picklable for the ``--jobs`` pool."""

    name: str
    seed: int


def _run_section(spec: _SectionSpec) -> str:
    """Shard task: run one ablation section and render its table."""
    run, fmt = SECTIONS[spec.name]
    return fmt(run(seed=spec.seed))


def run_sections(names: Sequence[str], seed: int = 0, jobs: int = 1) -> List[str]:
    """Run the named ablation sections, possibly in parallel.

    Each section is an independent set of seeded simulations, so the
    rendered tables are identical at any ``jobs``; they come back in
    the order *names* lists them.
    """
    from repro.parallel import ShardedRunner

    for name in names:
        if name not in SECTIONS:
            raise ValueError(f"unknown ablation {name!r}; known: {list(SECTIONS)}")
    sections, _stats = ShardedRunner(jobs=jobs).map(
        _run_section,
        [_SectionSpec(name=name, seed=seed) for name in names],
        label="ablations",
        describe=lambda s: s.name,
    )
    return sections
