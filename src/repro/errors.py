"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel."""


class NetworkError(ReproError):
    """Misuse of the simulated network substrate."""


class AddressError(NetworkError):
    """A datagram was addressed to an unknown host or unbound port."""


class RpcError(NetworkError):
    """An RPC call failed (no server, handler raised, or timed out)."""


class SchedulerError(ReproError):
    """Misuse of the micro- or macro-level scheduler."""


class ClosureError(SchedulerError):
    """Invalid closure/continuation operation (double-send, bad slot...)."""


class JobError(ReproError):
    """Invalid job lifecycle operation at the macro level."""


class WorkstationReclaimed(ReproError):
    """Raised inside a worker when the machine's owner reclaims it."""


class MachineCrash(ReproError):
    """Raised inside simulated processes when their host crashes."""


class RuntimeShutdown(ReproError):
    """The real-thread runtime was used after :meth:`shutdown`."""


class InvariantViolation(ReproError):
    """A checked run broke a scheduler invariant (see :mod:`repro.check`)."""
