"""Space-sharing versus time-sharing (the macro scheduler's motivation).

The paper (Section 1–2) argues for space-sharing: give each of K jobs a
dedicated partition of the N workstations rather than gang-scheduling
all K across all N in round-robin quanta.  It cites Tucker & Gupta
(context-switch overhead) and Brewer & Kuszmaul (a descheduled process
cannot receive messages — buffers fill and clog the network).

This module measures space-sharing directly (each job runs on its
partition in the full simulator) and models gang time-sharing on top of
the same measurements: a job that takes ``T_N`` seconds alone on all N
machines occupies ``K`` quanta rounds per quantum of its own progress,
and every switch costs ``switch_cost_s`` (state reload, message-buffer
drain).  The model is deliberately generous to time-sharing — it
assumes perfect gang scheduling with no memory pressure — and
space-sharing still wins on average completion time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.platform import SPARCSTATION_1, PlatformProfile
from repro.errors import ReproError
from repro.micro.worker import WorkerConfig
from repro.phish import run_job
from repro.tasks.program import JobProgram


@dataclass(frozen=True)
class SharingComparison:
    """Completion times of K jobs under both disciplines."""

    n_workstations: int
    #: Per-job completion times under space-sharing (dedicated N/K each).
    space_completion_s: List[float]
    #: Per-job completion times under modelled gang time-sharing.
    time_completion_s: List[float]
    quantum_s: float
    switch_cost_s: float

    @property
    def space_mean(self) -> float:
        return sum(self.space_completion_s) / len(self.space_completion_s)

    @property
    def time_mean(self) -> float:
        return sum(self.time_completion_s) / len(self.time_completion_s)

    @property
    def space_makespan(self) -> float:
        return max(self.space_completion_s)

    @property
    def time_makespan(self) -> float:
        return max(self.time_completion_s)

    @property
    def mean_advantage(self) -> float:
        """time-sharing mean completion / space-sharing mean completion."""
        return self.time_mean / self.space_mean


def compare_sharing(
    jobs: Sequence[JobProgram],
    n_workstations: int,
    profile: PlatformProfile = SPARCSTATION_1,
    quantum_s: float = 1.0,
    switch_cost_s: float = 0.1,
    seed: int = 0,
    worker_config: Optional[WorkerConfig] = None,
) -> SharingComparison:
    """Run K jobs both ways on N workstations.

    Space-sharing: job i gets a dedicated partition of ``N // K``
    machines (N must divide evenly) and runs in the full simulator.

    Time-sharing: each job's solo time on all N machines, ``T_N(i)``, is
    measured in the simulator; gang round-robin then interleaves the
    jobs, so while k jobs remain, each makes one quantum of progress per
    ``k`` quanta, paying ``switch_cost_s`` per switch.
    """
    k = len(jobs)
    if k < 1:
        raise ReproError("need at least one job")
    if n_workstations % k != 0:
        raise ReproError(
            f"{n_workstations} workstations do not divide evenly among {k} jobs"
        )
    partition = n_workstations // k

    space = [
        run_job(job, n_workers=partition, profile=profile, seed=seed + i,
                worker_config=worker_config).stats.average_execution_time
        for i, job in enumerate(jobs)
    ]

    solo = [
        run_job(job, n_workers=n_workstations, profile=profile, seed=seed + i,
                worker_config=worker_config).stats.average_execution_time
        for i, job in enumerate(jobs)
    ]
    time_completion = _gang_schedule(solo, quantum_s, switch_cost_s)

    return SharingComparison(
        n_workstations=n_workstations,
        space_completion_s=space,
        time_completion_s=time_completion,
        quantum_s=quantum_s,
        switch_cost_s=switch_cost_s,
    )


def _gang_schedule(
    solo_times: Sequence[float], quantum_s: float, switch_cost_s: float
) -> List[float]:
    """Completion times under round-robin gang scheduling.

    Event-steps the round-robin: in each quantum the scheduled job
    advances by ``quantum_s`` of its remaining solo time, and each
    switch between distinct live jobs costs ``switch_cost_s`` of wall
    time for everyone.
    """
    if quantum_s <= 0:
        raise ReproError("quantum must be positive")
    remaining = list(solo_times)
    completion = [0.0] * len(remaining)
    live = [i for i, t in enumerate(remaining) if t > 0]
    clock = 0.0
    cursor = 0
    while live:
        job = live[cursor % len(live)]
        if len(live) > 1 or cursor == 0:
            clock += switch_cost_s
        advance = min(quantum_s, remaining[job])
        clock += advance
        remaining[job] -= advance
        if remaining[job] <= 1e-12:
            completion[job] = clock
            live.remove(job)
            # cursor now points at the next job automatically
        else:
            cursor += 1
    return completion
