"""Baselines and comparators.

* :mod:`repro.baselines.serial` — a direct (no network, no stealing)
  reference executor for any :class:`~repro.tasks.program.JobProgram`;
  the correctness oracle for arbitrary thread programs.
* :mod:`repro.baselines.sharing` — the space-sharing vs time-sharing
  throughput comparison (Tucker & Gupta's argument, which the paper's
  macro scheduler design follows).
* Alternative micro-schedulers (central queue, sender-initiated push)
  are worker *modes*: see ``WorkerConfig.mode`` in
  :mod:`repro.micro.worker`.
* Best-serial implementations of the four applications live with the
  apps (``fib_serial``, ``nqueens_serial``, ``pfold_serial``,
  ``ray_serial``).
"""

from repro.baselines.serial import SerialExecution, execute_serially
from repro.baselines.sharing import SharingComparison, compare_sharing

__all__ = [
    "execute_serially",
    "SerialExecution",
    "compare_sharing",
    "SharingComparison",
]
