"""A direct serial executor for thread programs.

Runs any :class:`~repro.tasks.program.JobProgram` to completion on a
plain Python stack — no simulator, no network, no stealing — while
charging the same cost model a 1-worker parallel execution would.  Two
uses:

* a *correctness oracle*: the distributed execution of a program must
  produce exactly this result, whatever got stolen or migrated where;
* the measurement behind "single-processor execution time of the
  parallel code" whenever a test wants it without a full simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.cluster.platform import SPARCSTATION_1, PlatformProfile
from repro.errors import SchedulerError
from repro.tasks.closure import CLEARINGHOUSE_TARGET, Closure, ClosureId, Continuation
from repro.tasks.program import Frame, JobProgram


@dataclass
class SerialExecution:
    """Outcome of a serial reference execution."""

    result: Any
    tasks_executed: int
    total_cycles: float
    synchronizations: int
    max_tasks_in_use: int

    def seconds(self, profile: PlatformProfile) -> float:
        """Simulated 1-processor runtime under *profile*."""
        return profile.seconds(self.total_cycles)


class _SerialOps:
    """SchedulerOps over a LIFO stack (the 1-worker schedule)."""

    def __init__(self, job: JobProgram, profile: PlatformProfile) -> None:
        self.job = job
        self.profile = profile
        self.stack: List[Closure] = []
        self.suspended: Dict[ClosureId, Closure] = {}
        self._seq = 0
        self.result: Any = _NO_RESULT
        self.tasks = 0
        self.cycles = 0.0
        self.syncs = 0
        self.peak = 0
        self.executing = 0

    def new_cid(self) -> ClosureId:
        self._seq += 1
        return ("serial", self._seq)

    def enqueue_ready(self, closure: Closure) -> None:
        self.stack.append(closure)
        self._peak()

    def register_suspended(self, closure: Closure) -> None:
        self.suspended[closure.cid] = closure
        self._peak()

    def deliver(self, continuation: Continuation, value: Any) -> None:
        self.syncs += 1
        if continuation.target == CLEARINGHOUSE_TARGET:
            if self.result is not _NO_RESULT:
                raise SchedulerError("job delivered its result twice")
            self.result = value
            return
        closure = self.suspended.get(continuation.target)
        if closure is None:
            raise SchedulerError(
                f"send to unknown closure {continuation.target} (serial execution "
                "has no crashes, so this is a program bug)"
            )
        if closure.fill(continuation.slot, value):
            del self.suspended[continuation.target]
            self.stack.append(closure)
        self._peak()

    def _peak(self) -> None:
        n = len(self.stack) + len(self.suspended) + self.executing
        if n > self.peak:
            self.peak = n

    def run(self) -> None:
        root_args = [Continuation(CLEARINGHOUSE_TARGET, 0), *self.job.root_args]
        self.enqueue_ready(Closure(self.new_cid(), self.job.root.name, root_args))
        while self.stack:
            closure = self.stack.pop()
            self.executing = 1
            self._peak()
            frame = Frame(self, self.profile, closure)
            ref = self.job.program.resolve(closure.thread_name)
            ref.fn(frame, *closure.call_args())
            self.tasks += 1
            self.cycles += frame.cycles
            self.executing = 0
        if self.suspended:
            raise SchedulerError(
                f"{len(self.suspended)} closures never received their arguments "
                "(the program deadlocks)"
            )


_NO_RESULT = object()


def execute_serially(
    job: JobProgram, profile: PlatformProfile = SPARCSTATION_1
) -> SerialExecution:
    """Run *job* to completion on one simulated processor, directly."""
    ops = _SerialOps(job, profile)
    ops.run()
    if ops.result is _NO_RESULT:
        raise SchedulerError("job finished without delivering a result")
    return SerialExecution(
        result=ops.result,
        tasks_executed=ops.tasks,
        total_cycles=ops.cycles,
        synchronizations=ops.syncs,
        max_tasks_in_use=ops.peak,
    )
