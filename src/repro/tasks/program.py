"""Thread programs and execution frames.

A :class:`ThreadProgram` is a registry of *thread functions* — the
compiled form of a Phish application.  Thread functions are ordinary
Python functions whose first parameter is the execution :class:`Frame`;
they must not block, and they interact with the scheduler only through
the frame (spawn / successor / send / work).

A :class:`JobProgram` pairs a ThreadProgram with root arguments: the
unit submitted to the PhishJobQ.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Optional, Protocol

from repro.errors import ClosureError, SchedulerError
from repro.tasks.closure import Closure, ClosureId, Continuation


class ThreadRef:
    """A registered thread function: name + callable + arity."""

    __slots__ = ("name", "fn", "arity")

    def __init__(self, name: str, fn: Callable, arity: int) -> None:
        self.name = name
        self.fn = fn
        self.arity = arity

    def __repr__(self) -> str:
        return f"<thread {self.name}/{self.arity}>"


class ThreadProgram:
    """A named collection of thread functions (one parallel application).

    >>> prog = ThreadProgram("fib")
    >>> @prog.thread
    ... def fib(frame, k, n):
    ...     ...
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.threads: Dict[str, ThreadRef] = {}

    def thread(self, fn: Optional[Callable] = None, *, arity: Optional[int] = None):
        """Decorator registering *fn* as a thread function.

        The wrapped function's first parameter is the frame; the
        remaining positional parameters define the closure's arity.  A
        variadic function (``def join(frame, k, *xs)``) must declare its
        arity explicitly: ``@prog.thread(arity=n)`` — this is how
        applications build n-ary join closures whose fan-in is a job
        parameter (nqueens, pfold).
        """
        if fn is None:
            return lambda f: self.thread(f, arity=arity)
        params = list(inspect.signature(fn).parameters.values())
        if not params:
            raise SchedulerError(f"thread function {fn.__name__} must accept a frame")
        fixed = 0
        variadic = False
        for p in params:
            if p.kind in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            ):
                fixed += 1
            elif p.kind is inspect.Parameter.VAR_POSITIONAL:
                variadic = True
            else:
                raise SchedulerError(
                    f"thread function {fn.__name__} may only use positional parameters"
                )
        if variadic:
            if arity is None:
                raise SchedulerError(
                    f"variadic thread {fn.__name__} needs an explicit arity="
                )
            if arity < fixed - 1:
                raise SchedulerError(
                    f"thread {fn.__name__}: arity {arity} below fixed parameter count"
                )
            effective = arity
        else:
            if arity is not None and arity != fixed - 1:
                raise SchedulerError(
                    f"thread {fn.__name__}: declared arity {arity} != signature arity {fixed - 1}"
                )
            effective = fixed - 1
        if fn.__name__ in self.threads:
            raise SchedulerError(f"thread {fn.__name__!r} already registered in {self.name}")
        ref = ThreadRef(fn.__name__, fn, effective)
        self.threads[fn.__name__] = ref
        return ref

    def resolve(self, thread: "ThreadRef | str") -> ThreadRef:
        """Look up a thread by ref or name (closures carry names)."""
        if isinstance(thread, ThreadRef):
            return thread
        try:
            return self.threads[thread]
        except KeyError:
            raise SchedulerError(
                f"program {self.name!r} has no thread {thread!r}"
            ) from None


class JobProgram:
    """A runnable job: a program plus the root invocation.

    Attributes:
        program: the thread registry.
        root_thread: thread to run first.  Its first declared argument
            must be the result continuation (the job's "return address");
            the scheduler passes the Clearinghouse continuation there.
        root_args: arguments after the continuation.
        name: job name for the macro scheduler's pool.
    """

    def __init__(
        self,
        program: ThreadProgram,
        root_thread: "ThreadRef | str",
        root_args: tuple = (),
        name: Optional[str] = None,
    ) -> None:
        self.program = program
        self.root = program.resolve(root_thread)
        self.root_args = tuple(root_args)
        if len(self.root_args) + 1 != self.root.arity:
            raise SchedulerError(
                f"root thread {self.root.name} takes {self.root.arity} args "
                f"(continuation + {self.root.arity - 1}); got {len(self.root_args)} extra"
            )
        self.name = name or program.name


class SchedulerOps(Protocol):
    """What a Frame needs from the scheduler executing it.

    Implemented by :class:`repro.micro.worker.Worker` and by the serial
    reference executor in :mod:`repro.baselines.serial`.
    """

    def new_cid(self) -> ClosureId: ...

    def enqueue_ready(self, closure: Closure) -> None: ...

    def register_suspended(self, closure: Closure) -> None: ...

    def deliver(self, continuation: Continuation, value: Any) -> None: ...


class SuccessorRef:
    """Handle on a successor closure created by :meth:`Frame.successor`."""

    __slots__ = ("closure",)

    def __init__(self, closure: Closure) -> None:
        self.closure = closure

    def cont(self, slot: int) -> Continuation:
        """A continuation that fills the given (missing) slot."""
        if self.closure.slot_filled(slot):
            raise ClosureError(
                f"slot {slot} of successor {self.closure.thread_name} is not missing"
            )
        return Continuation(self.closure.cid, slot)


class Frame:
    """Execution context of one running closure.

    Accumulates the simulated CPU cycles the task costs (dispatch +
    application work + per-primitive scheduling overheads, per the
    platform profile) and forwards scheduling actions to the worker.
    """

    __slots__ = (
        "_ops",
        "profile",
        "closure",
        "cycles",
        "spawns",
        "sends",
        "successors",
    )

    def __init__(self, ops: SchedulerOps, profile, closure: Closure) -> None:
        self._ops = ops
        self.profile = profile
        self.closure = closure
        # Every task pays dispatch, one network poll, and (under Phish)
        # the dynamic-processor-set bookkeeping.
        self.cycles = (
            profile.schedule_cycles + profile.poll_cycles + profile.dynamic_set_cycles
        )
        self.spawns = 0
        self.sends = 0
        self.successors = 0

    # -- the programming model ------------------------------------------------

    def work(self, cycles: float) -> None:
        """Charge *cycles* of application computation to this task."""
        if cycles < 0:
            raise SchedulerError("negative work")
        self.cycles += cycles

    def spawn(self, thread: "ThreadRef | str", *args: Any) -> None:
        """Spawn a fully-applied child closure (ready immediately).

        Children are pushed on the *head* of the worker's ready list, so
        they run next in LIFO order (paper, Figure 1b).
        """
        ref = self._resolve(thread)
        if len(args) != ref.arity:
            raise SchedulerError(
                f"spawn {ref.name}: expected {ref.arity} args, got {len(args)}"
            )
        child = Closure(
            self._ops.new_cid(), ref.name, list(args), depth=self.closure.depth + 1
        )
        self.spawns += 1
        self.cycles += self.profile.spawn_cycles
        self._ops.enqueue_ready(child)

    def successor(self, thread: "ThreadRef | str", *given: Any) -> SuccessorRef:
        """Create a successor closure waiting for its remaining arguments.

        The first ``len(given)`` slots are filled now; the rest are
        missing, addressable through :meth:`SuccessorRef.cont`.  The
        successor stays suspended on this worker until the last missing
        argument is sent.
        """
        ref = self._resolve(thread)
        if len(given) > ref.arity:
            raise SchedulerError(
                f"successor {ref.name}: {len(given)} args exceed arity {ref.arity}"
            )
        missing = list(range(len(given), ref.arity))
        if not missing:
            raise SchedulerError(
                f"successor {ref.name} has no missing slots; use spawn()"
            )
        args = list(given) + [None] * len(missing)
        succ = Closure(
            self._ops.new_cid(),
            ref.name,
            args,
            missing_slots=missing,
            depth=self.closure.depth,  # successor continues this task's level
        )
        self.successors += 1
        self.cycles += self.profile.spawn_cycles
        self._ops.register_suspended(succ)
        return SuccessorRef(succ)

    def send(self, continuation: Continuation, value: Any) -> None:
        """Send *value* along *continuation* (a synchronization).

        Local if the target closure lives on this worker, otherwise a
        network message — the distinction behind Table 2's
        "Non-local synchs" row.
        """
        if not isinstance(continuation, Continuation):
            raise SchedulerError(f"send target must be a Continuation, got {continuation!r}")
        self.sends += 1
        self.cycles += self.profile.sync_cycles
        self._ops.deliver(continuation, value)

    # -- internals -------------------------------------------------------------

    def _resolve(self, thread: "ThreadRef | str") -> ThreadRef:
        if isinstance(thread, ThreadRef):
            return thread
        # Resolution through the registry is the worker's job; Frame only
        # sees refs in practice, but accept names for symmetry.
        raise SchedulerError(
            "spawning by name requires the worker context; pass the ThreadRef"
        )
