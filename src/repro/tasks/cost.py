"""Cost-model helpers shared by the serial baselines and the experiments.

The unit of work throughout the library is the *cycle* — one simulated
machine instruction.  Application code charges cycles for the real
computation it performs; platform profiles convert cycles to simulated
seconds and add scheduling overheads.

The serial baselines model the "best serial implementation" of the
paper's Table 1: the same application work, but tasks collapse to plain
procedure calls costing :data:`CALL_CYCLES` instead of the parallel
machinery's spawn/schedule/sync/poll overheads.
"""

from __future__ import annotations

from repro.cluster.platform import PlatformProfile

#: Cost of a plain procedure call in the serial implementation (call,
#: frame setup, return).  The parallel/serial per-task overhead gap —
#: profile.task_overhead_cycles() versus this — is what Table 1 measures.
CALL_CYCLES = 8.0


def serial_time_seconds(
    total_work_cycles: float, n_calls: int, profile: PlatformProfile
) -> float:
    """Simulated runtime of the best serial implementation.

    Args:
        total_work_cycles: application work (same quantity the parallel
            version charges via ``frame.work``).
        n_calls: procedure calls the serial code makes (one per task the
            parallel version would have spawned).
        profile: machine running the serial code.
    """
    if total_work_cycles < 0 or n_calls < 0:
        raise ValueError("work and call count must be non-negative")
    return profile.seconds(total_work_cycles + CALL_CYCLES * n_calls)
