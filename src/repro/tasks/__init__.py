"""The Phish programming model: continuation-passing threads.

Phish applications are "coded using a simple extension to the C
programming language" that compiles to *continuation-passing threads*
(Halbherr, Zhou & Joerg — the paper's reference [13]): a computation is
a dag of heap-allocated **closures**, each a thread function plus an
argument list with some slots possibly empty, guarded by a join counter.
A closure becomes a *ready task* when its last missing argument arrives.
Running a closure may

* ``spawn`` fully-applied child closures (ready immediately),
* create a ``successor`` closure with missing slots, obtaining
  :class:`Continuation` handles to those slots, and
* ``send`` a value along a continuation, filling a slot (and possibly
  enabling the target).

This package provides the Python rendering of that model; the
micro-level scheduler in :mod:`repro.micro` executes it.
"""

from repro.tasks.closure import CLEARINGHOUSE_TARGET, Closure, ClosureId, Continuation
from repro.tasks.program import Frame, JobProgram, SuccessorRef, ThreadProgram
from repro.tasks.cost import CALL_CYCLES, serial_time_seconds

__all__ = [
    "Closure",
    "ClosureId",
    "Continuation",
    "CLEARINGHOUSE_TARGET",
    "ThreadProgram",
    "JobProgram",
    "Frame",
    "SuccessorRef",
    "CALL_CYCLES",
    "serial_time_seconds",
]
