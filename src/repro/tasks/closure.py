"""Closures, continuations, and join counters.

A :class:`Closure` is the unit of work the micro scheduler moves around:
self-contained once ready (all argument slots filled), so stealing one is
just shipping it to another worker.  A :class:`Continuation` names one
empty slot of one closure — globally, by (origin worker, sequence
number, slot) — so results can be sent across workers.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import ClosureError

#: Globally-unique closure identity: (name of the worker that created it,
#: that worker's creation sequence number).  Sequence numbers are never
#: reused, which the crash-recovery protocol relies on.
ClosureId = Tuple[str, int]

#: The distinguished continuation target for the whole job's result: a
#: send to this pseudo-closure delivers the result to the Clearinghouse.
CLEARINGHOUSE_TARGET: ClosureId = ("@clearinghouse", 0)

_EMPTY = object()


class Continuation:
    """A handle on one empty argument slot of one closure."""

    __slots__ = ("target", "slot")

    def __init__(self, target: ClosureId, slot: int) -> None:
        self.target = target
        self.slot = slot

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Continuation)
            and other.target == self.target
            and other.slot == self.slot
        )

    def __hash__(self) -> int:
        return hash((self.target, self.slot))

    def __repr__(self) -> str:
        return f"Continuation({self.target[0]}#{self.target[1]}[{self.slot}])"


class Closure:
    """A thread function application with possibly-missing arguments.

    Attributes:
        cid: globally unique identity.
        thread_name: name of the thread function (resolved through the
            job's :class:`~repro.tasks.program.ThreadProgram` registry —
            closures travel between workers as data, so they carry the
            function's *name*, not the function).
        args: the argument list; missing slots hold an internal sentinel.
        depth: spawn-tree depth, for instrumentation.
    """

    __slots__ = ("cid", "thread_name", "args", "_missing", "depth")

    def __init__(
        self,
        cid: ClosureId,
        thread_name: str,
        args: List[Any],
        missing_slots: Optional[List[int]] = None,
        depth: int = 0,
    ) -> None:
        self.cid = cid
        self.thread_name = thread_name
        self.args = list(args)
        self.depth = depth
        if missing_slots:
            for slot in missing_slots:
                if not (0 <= slot < len(self.args)):
                    raise ClosureError(f"missing slot {slot} out of range for {thread_name}")
                self.args[slot] = _EMPTY
            self._missing = sum(1 for a in self.args if a is _EMPTY)
        else:
            # Fast path: with no missing_slots the closure is born ready.
            # (Holes can only be punched via missing_slots — _EMPTY is
            # module-private, so callers cannot place it in args.)
            self._missing = 0

    @property
    def join_counter(self) -> int:
        """Number of still-missing arguments."""
        return self._missing

    @property
    def is_ready(self) -> bool:
        """True when every slot is filled and the closure can run."""
        return self._missing == 0

    def slot_filled(self, slot: int) -> bool:
        """True if the given slot already holds a value."""
        if not (0 <= slot < len(self.args)):
            raise ClosureError(f"slot {slot} out of range for {self.thread_name}")
        return self.args[slot] is not _EMPTY

    def fill(self, slot: int, value: Any) -> bool:
        """Deposit *value* into *slot*; returns True if this made it ready.

        Filling an already-filled slot is a :class:`ClosureError`: the
        scheduler's send path deduplicates crash-redo duplicates *before*
        calling fill, so a double fill here is a programming bug.
        """
        if self.slot_filled(slot):
            raise ClosureError(
                f"slot {slot} of {self.thread_name}#{self.cid} filled twice"
            )
        self.args[slot] = value
        self._missing -= 1
        return self._missing == 0

    def call_args(self) -> List[Any]:
        """The argument list, for invocation; requires readiness."""
        if not self.is_ready:
            raise ClosureError(
                f"closure {self.thread_name}#{self.cid} invoked with "
                f"{self._missing} missing argument(s)"
            )
        return self.args

    def redo_copy(self, new_cid: ClosureId) -> "Closure":
        """A fresh, identical closure under a new identity (crash redo).

        Only ready closures are ever redone (the steal-outstanding table
        holds ready closures by construction).
        """
        if not self.is_ready:
            raise ClosureError("redo_copy of a non-ready closure")
        clone = Closure.__new__(Closure)
        clone.cid = new_cid
        clone.thread_name = self.thread_name
        clone.args = list(self.args)
        clone.depth = self.depth
        clone._missing = 0
        return clone

    def __repr__(self) -> str:
        shown = ", ".join("_" if a is _EMPTY else repr(a) for a in self.args)
        return f"<Closure {self.thread_name}#{self.cid[0]}:{self.cid[1]}({shown})>"
