"""Checked execution harness: perturbed runs, bug injection, shrinking.

:func:`run_checked` is the pytest-facing entry point: it runs one job on
a simulated cluster exactly like :func:`repro.phish.run_job`, but with
the full checking apparatus wired in — tracing always on, the network
drop accountant, the online deque auditor, and a post-run pass over the
invariant catalog of :mod:`repro.check.invariants`.

A :class:`Perturbation` bundles everything that makes one schedule
different from another while staying a *legal* execution: the same-time
event tie-break shuffle seed, extra message-latency jitter, and
crash/reclaim injection times.  :meth:`Perturbation.generate` derives
all of it from one integer seed, so a failing schedule is reproduced by
its seed alone; :func:`shrink_perturbation` then greedily removes
components (drop a crash, drop a reclaim, zero the jitter, restore
deterministic tie-breaks) while the failure persists, yielding a minimal
reproducing schedule.

``BUGS`` holds deliberately broken scheduler variants (applied as
instance-level monkeypatches) used to validate that the checker actually
catches the classes of bugs it claims to.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.check.invariants import DequeAuditor, InvariantReport, check_invariants
from repro.clearinghouse.clearinghouse import Clearinghouse, ClearinghouseConfig
from repro.cluster.platform import SPARCSTATION_1, PlatformProfile
from repro.errors import ReproError
from repro.micro import protocol as P
from repro.micro.worker import Worker, WorkerConfig
from repro.net.network import Network
from repro.net.topology import (
    CongestionSpike,
    DynamicTopology,
    PartitionWindow,
    UniformTopology,
)
from repro.phish import build_cluster
from repro.sim.core import Simulator
from repro.tasks.program import JobProgram
from repro.util.rng import RngRegistry, derive_seed
from repro.util.trace import TraceLog

#: Scheduler settings scaled down from the paper's (2-minute heartbeats,
#: quarter-second startup) so that millisecond-scale check jobs actually
#: exercise stealing, crash detection, and retirement within one run.
CHECK_WORKER = WorkerConfig(
    startup_cost_s=0.01,
    steal_timeout_s=0.02,
    steal_backoff_s=0.002,
    update_interval_s=0.5,
    track_completed=True,
)

#: Extra acknowledgement machinery enabled only for schedules that
#: actually sever or congest links (see :func:`run_checked`): an unacked
#: steal grant is reclaimed and unacked argument fills retransmit, both
#: after three steal timeouts — under the paper's protocol either loss
#: hangs the job.  Fault-only schedules keep the paper protocol (and
#: their pinned byte-exact traces).
RESILIENT_TIMEOUTS = dict(grant_ack_timeout_s=0.06, arg_retry_timeout_s=0.06)

CHECK_CH = ClearinghouseConfig(
    update_interval_s=0.5,
    death_timeout_s=1.5,
    check_interval_s=0.2,
)

_UNSET = object()


# ---------------------------------------------------------------------------
# Perturbations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Perturbation:
    """One point in schedule space, derived from a single seed.

    The identity perturbation (all defaults) reproduces the simulator's
    canonical insertion-order schedule with no faults injected.
    """

    #: Seed for the same-time event tie-break shuffle (None: canonical order).
    tiebreak_seed: Optional[int] = None
    #: Extra uniform per-message latency jitter, seconds.
    latency_jitter_s: float = 0.0
    #: Fail-stop crash injections: (time_s, workstation index).  Index 0
    #: hosts the Clearinghouse and must never crash (single-failure model).
    crashes: Tuple[Tuple[float, int], ...] = ()
    #: Graceful owner-reclaim injections: (time_s, workstation index).
    reclaims: Tuple[Tuple[float, int], ...] = ()
    #: Congestion-spike windows: (start_s, end_s, latency_factor) — every
    #: link's latency is multiplied by the factor inside the window.
    spikes: Tuple[Tuple[float, float, float], ...] = ()
    #: Partition-heal windows: (start_s, end_s, island_indices) — during
    #: the window the island workstations are unreachable from the rest
    #: of the cluster (both directions); at end_s the partition heals.
    partitions: Tuple[Tuple[float, float, Tuple[int, ...]], ...] = ()

    #: Scenario names understood by :meth:`generate` (CLI ``--scenario``).
    SCENARIOS = ("mixed", "partition", "spike", "faults-only")

    @classmethod
    def generate(
        cls,
        seed: int,
        n_workers: int,
        p_crash: float = 0.6,
        p_reclaim: float = 0.5,
        fault_window_s: Tuple[float, float] = (0.012, 0.06),
        max_jitter_s: float = 2.0e-3,
        p_spike: float = 0.4,
        p_partition: float = 0.35,
        scenario: str = "mixed",
    ) -> "Perturbation":
        """Derive a perturbation from *seed* (stable across processes).

        ``scenario`` focuses the network dynamics: "mixed" uses the
        default probabilities, "partition" / "spike" force that window
        into every seed, "faults-only" disables both (the pre-topology
        scenario set).  Crash/reclaim/jitter components are identical
        across scenarios for the same seed — every scenario consumes
        the same rng draws, only the inclusion thresholds differ.
        """
        if scenario not in cls.SCENARIOS:
            raise ReproError(
                f"unknown scenario {scenario!r}; known: {sorted(cls.SCENARIOS)}"
            )
        rng = random.Random(derive_seed(seed, "check.perturb"))
        lo, hi = fault_window_s
        crashes: List[Tuple[float, int]] = []
        if n_workers > 1 and rng.random() < p_crash:
            crashes.append((lo + rng.random() * (hi - lo), rng.randrange(1, n_workers)))
        reclaims: List[Tuple[float, int]] = []
        if n_workers > 1 and rng.random() < p_reclaim:
            # Any worker may be reclaimed, including the Clearinghouse
            # host's (reclaim only evicts the worker; the CH survives).
            t = lo + rng.random() * (hi - lo)
            idx = rng.randrange(n_workers)
            # Keep at least one worker alive: the checked cluster has no
            # enlistment path, so a scenario that removes every machine
            # (possible at n_workers=2: crash one, reclaim the other)
            # could never complete regardless of scheduler correctness.
            # The draws above still happen, so every satisfiable seed
            # produces the exact same perturbation as before.
            removed = {i for _t, i in crashes}
            removed.add(idx)
            if len(removed) < n_workers:
                reclaims.append((t, idx))
        # Drawn after the original components so pre-topology seeds keep
        # their exact crash/reclaim/jitter values.
        jitter = rng.random() * max_jitter_s
        eff_spike = {"spike": 1.0, "faults-only": 0.0}.get(scenario, p_spike)
        eff_part = {"partition": 1.0, "faults-only": 0.0}.get(scenario, p_partition)
        spikes: List[Tuple[float, float, float]] = []
        r = rng.random()
        start = lo + rng.random() * (hi - lo)
        duration = 0.01 + rng.random() * 0.04
        factor = 4.0 + rng.random() * 16.0
        if r < eff_spike:
            spikes.append((start, start + duration, factor))
        partitions: List[Tuple[float, float, Tuple[int, ...]]] = []
        r = rng.random()
        start = lo + rng.random() * (hi - lo)
        duration = 0.01 + rng.random() * 0.04
        size = 1 + rng.randrange(max(1, n_workers // 2))
        island = tuple(sorted(rng.sample(range(n_workers), min(size, n_workers))))
        if n_workers > 1 and r < eff_part and len(island) < n_workers:
            # Windows stay well short of the death timeout (1.5 s): a
            # partition must delay heartbeats, not forge false deaths.
            partitions.append((start, start + duration, island))
        return cls(
            tiebreak_seed=derive_seed(seed, "check.tiebreak"),
            latency_jitter_s=jitter,
            crashes=tuple(crashes),
            reclaims=tuple(reclaims),
            spikes=tuple(spikes),
            partitions=tuple(partitions),
        )

    def describe(self) -> str:
        parts: List[str] = []
        if self.tiebreak_seed is not None:
            parts.append(f"tiebreak={self.tiebreak_seed & 0xFFFF:#06x}")
        if self.latency_jitter_s:
            parts.append(f"jitter={self.latency_jitter_s * 1e3:.3f}ms")
        parts += [f"crash(ws{i:02d}@{t:.3f}s)" for t, i in self.crashes]
        parts += [f"reclaim(ws{i:02d}@{t:.3f}s)" for t, i in self.reclaims]
        parts += [f"spike(x{f:.1f}@{s:.3f}-{e:.3f}s)" for s, e, f in self.spikes]
        parts += [
            "partition({}@{:.3f}-{:.3f}s)".format(
                "|".join(f"ws{i:02d}" for i in island), s, e)
            for s, e, island in self.partitions
        ]
        return " ".join(parts) if parts else "identity"


# ---------------------------------------------------------------------------
# Deliberate bugs (checker validation)
# ---------------------------------------------------------------------------


def _bug_skip_redo(worker: Worker) -> None:
    """Victims forget their redo obligation: on a death notice the
    outstanding table is discarded instead of re-enqueued."""

    def skip(dead: str) -> None:
        worker.outstanding.pop(dead, None)

    worker._on_worker_died = skip  # type: ignore[method-assign]


def _bug_drop_migration(worker: Worker) -> None:
    """Migration silently loses half of each incoming ready batch."""
    orig = worker._on_migrate

    def lossy(msg, ready, suspended, sender) -> None:
        orig(msg, ready[: len(ready) // 2], suspended, sender)

    worker._on_migrate = lossy  # type: ignore[method-assign]


def _bug_dup_exec(worker: Worker) -> None:
    """Steal grants forget to remove the closure from the victim's
    deque, so victim and thief both execute it.  (ReadyDeque is slotted,
    so the patch swaps in a subclass rather than an instance attribute.)"""
    base = type(worker.deque)

    class _LeakyDeque(base):  # type: ignore[misc, valid-type]
        __slots__ = ()

        def pop_steal(self):
            closure = base.pop_steal(self)
            if closure is not None:
                self.push(closure)
            return closure

    worker.deque.__class__ = _LeakyDeque


#: name -> per-worker patch applying the deliberately broken behaviour.
BUGS: Dict[str, Callable[[Worker], None]] = {
    "skip-redo": _bug_skip_redo,
    "drop-migration": _bug_drop_migration,
    "dup-exec": _bug_dup_exec,
}


# ---------------------------------------------------------------------------
# Checked execution
# ---------------------------------------------------------------------------


@dataclass
class CheckedRun:
    """Everything one :func:`run_checked` invocation produced."""

    job_name: str
    seed: int
    perturbation: Perturbation
    bug: Optional[str]
    completed: bool
    result: Any
    expected: Any
    report: InvariantReport
    makespan: float
    trace: TraceLog = field(repr=False)
    workers: List[Worker] = field(repr=False, default_factory=list)
    clearinghouse: Optional[Clearinghouse] = field(repr=False, default=None)
    network: Optional[Network] = field(repr=False, default=None)
    sim: Optional[Simulator] = field(repr=False, default=None)

    @property
    def ok(self) -> bool:
        return self.report.ok

    def require_ok(self) -> "CheckedRun":
        self.report.require_ok()
        return self


def install_network_accounting(network: Network, trace: TraceLog) -> None:
    """Account closures lost inside dropped datagrams.

    Steal grants and migration batches carry live closures; when such a
    datagram is discarded (random loss, dead or unbound destination) the
    closures vanish from the system.  This hook surfaces each loss as a
    ``closure.lost`` trace event so the conservation invariant can tell
    "lost in flight" apart from "scheduler leaked it".
    """

    def on_drop(msg, reason: str) -> None:
        payload = msg.payload
        if not isinstance(payload, tuple) or not payload:
            return
        cids = []
        if payload[0] == P.STEAL_REPLY and payload[1] is not None:
            cids = [c.cid for c in payload[1]]
        elif payload[0] == P.MIGRATE:
            cids = [c.cid for c in payload[1]] + [c.cid for c in payload[2]]
        if cids:
            trace.emit(network.sim.now, "closure.lost", msg.dst,
                       cids=cids, reason=f"net-{reason}")

    network.on_drop = on_drop


def _at(sim: Simulator, time_s: float, fn: Callable[[], None], name: str) -> None:
    """Run *fn* at simulated time *time_s* (fire-and-forget process)."""

    def proc():
        yield sim.timeout(time_s)
        fn()

    sim.process(proc(), name=name)


def run_checked(
    job: JobProgram,
    n_workers: int = 4,
    seed: int = 0,
    perturbation: Optional[Perturbation] = None,
    expected: Any = _UNSET,
    worker_config: Optional[WorkerConfig] = None,
    ch_config: Optional[ClearinghouseConfig] = None,
    profile: PlatformProfile = SPARCSTATION_1,
    horizon_s: float = 60.0,
    drain_s: float = 2.0,
    trace_capacity: Optional[int] = None,
    bug: Optional[str] = None,
    metrics: Optional[Any] = None,
    queue: str = "auto",
) -> CheckedRun:
    """Run *job* under full invariant checking.

    Args:
        job: the application program to run.
        n_workers: cluster size (workstation 0 hosts the Clearinghouse).
        seed: root seed for the scheduler's own random streams.
        perturbation: schedule-space point to explore (default: the
            identity — canonical order, no faults).
        expected: oracle result; when given, a completed run delivering
            anything else is a liveness violation.
        worker_config / ch_config: overrides for :data:`CHECK_WORKER`
            and :data:`CHECK_CH`.
        horizon_s: simulated-time liveness bound; a job still unfinished
            at the horizon is reported (not an exception).
        trace_capacity: optional trace bound — exercises the checker's
            graceful degradation on truncated history.
        bug: name from :data:`BUGS` to deliberately break every worker
            with (checker validation).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given it is threaded into the network, Clearinghouse,
            and every Worker (this is how ``repro diagnose`` attaches a
            :class:`~repro.obs.health.HealthMonitor` to checked runs).
        queue: event-queue backend for the run's :class:`Simulator`
            (``"auto"``/``"heap"``/``"calendar"``) — the backend must be
            unobservable, so checked runs can pin either side of the
            byte-identical-trace contract (``repro check --queue``).
    """
    pert = perturbation if perturbation is not None else Perturbation()
    for _t, idx in pert.crashes:
        if not 1 <= idx < n_workers:
            raise ReproError(
                f"crash index {idx} invalid: workstation 0 hosts the "
                f"Clearinghouse and the cluster has {n_workers} machines"
            )
    for _t, idx in pert.reclaims:
        if not 0 <= idx < n_workers:
            raise ReproError(f"reclaim index {idx} out of range for {n_workers} machines")
    for start, end, island in pert.partitions:
        if not island or not all(0 <= i < n_workers for i in island):
            raise ReproError(
                f"partition island {island} out of range for {n_workers} machines")
        if len(set(island)) >= n_workers:
            raise ReproError("partition island must be a proper subset of the cluster")
    if bug is not None and bug not in BUGS:
        raise ReproError(f"unknown bug {bug!r}; known: {sorted(BUGS)}")

    tiebreak = (
        random.Random(pert.tiebreak_seed) if pert.tiebreak_seed is not None else None
    )
    sim = Simulator(tiebreak_rng=tiebreak, queue=queue)
    reg = RngRegistry(seed)
    trace = TraceLog(enabled=True, capacity=trace_capacity)
    net_params = dataclasses.replace(
        profile.net, jitter_s=profile.net.jitter_s + pert.latency_jitter_s
    )
    topology = UniformTopology(net_params)
    if pert.spikes or pert.partitions:
        # Layer the perturbation's network dynamics over the uniform LAN.
        # Static runs keep the plain topology: the network then skips the
        # reachability check entirely.
        topology = DynamicTopology(
            topology,
            clock=lambda: sim.now,
            spikes=tuple(CongestionSpike(s, e, f) for s, e, f in pert.spikes),
            partitions=tuple(
                PartitionWindow(s, e, frozenset(f"ws{i:02d}" for i in island))
                for s, e, island in pert.partitions
            ),
        )
    network, hosts = build_cluster(sim, n_workers, profile, reg, topology, trace)
    install_network_accounting(network, trace)
    if metrics is not None:
        network.attach_metrics(metrics)

    ch = Clearinghouse(sim, network, hosts[0].name, job.name,
                       ch_config or CHECK_CH, trace, metrics=metrics)

    base_cfg = worker_config or CHECK_WORKER
    if pert.spikes or pert.partitions:
        base_cfg = dataclasses.replace(base_cfg, **RESILIENT_TIMEOUTS)
    jitter_rng = reg.stream("start.jitter")
    workers: List[Worker] = []
    for i, ws in enumerate(hosts):
        start_jitter = jitter_rng.random() * 0.02 if i > 0 else 0.0
        cfg = dataclasses.replace(
            base_cfg, startup_cost_s=base_cfg.startup_cost_s + start_jitter
        )
        workers.append(Worker(
            sim, ws, network, job, clearinghouse_host=hosts[0].name,
            config=cfg, rng=reg.stream(f"worker.{i}"), trace=trace,
            metrics=metrics,
        ))

    auditor = DequeAuditor()
    for w in workers:
        auditor.attach(w)
    sim.monitor = lambda _sim: auditor.verify(workers)

    if bug is not None:
        for w in workers:
            BUGS[bug](w)

    for t, idx in pert.crashes:
        _at(sim, t, hosts[idx].crash, name=f"inject-crash@ws{idx:02d}")
    for t, idx in pert.reclaims:
        def reclaim(i: int = idx) -> None:
            w = workers[i]
            if not w.done and not w.departed and w._run_proc.is_alive:
                w._run_proc.interrupt("owner-reclaimed")
        _at(sim, t, reclaim, name=f"inject-reclaim@ws{idx:02d}")

    # Run to completion or the liveness horizon, whichever comes first.
    while not ch.done.is_set:
        if sim.peek() > horizon_s:
            break
        sim.step()
    completed = ch.done.is_set
    if completed:
        sim.run(until=sim.now + drain_s)  # let the done broadcast land

    result_ok: Optional[bool] = None
    if completed and expected is not _UNSET:
        result_ok = ch.result == expected
    report = check_invariants(
        trace, workers, completed=completed, auditor=auditor, result_ok=result_ok
    )
    return CheckedRun(
        job_name=job.name,
        seed=seed,
        perturbation=pert,
        bug=bug,
        completed=completed,
        result=ch.result,
        expected=None if expected is _UNSET else expected,
        report=report,
        makespan=(ch.finished_at or sim.now) - (ch.started_at or 0.0),
        trace=trace,
        workers=workers,
        clearinghouse=ch,
        network=network,
        sim=sim,
    )


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _simplifications(pert: Perturbation):
    """Candidate one-step simplifications, most drastic first."""
    for i in range(len(pert.crashes)):
        yield dataclasses.replace(
            pert, crashes=pert.crashes[:i] + pert.crashes[i + 1:]
        )
    for i in range(len(pert.reclaims)):
        yield dataclasses.replace(
            pert, reclaims=pert.reclaims[:i] + pert.reclaims[i + 1:]
        )
    for i in range(len(pert.partitions)):
        yield dataclasses.replace(
            pert, partitions=pert.partitions[:i] + pert.partitions[i + 1:]
        )
    for i in range(len(pert.spikes)):
        yield dataclasses.replace(
            pert, spikes=pert.spikes[:i] + pert.spikes[i + 1:]
        )
    if pert.latency_jitter_s:
        yield dataclasses.replace(pert, latency_jitter_s=0.0)
    if pert.tiebreak_seed is not None:
        yield dataclasses.replace(pert, tiebreak_seed=None)


def shrink_perturbation(
    make_job: Callable[[], JobProgram],
    failing: Perturbation,
    max_runs: int = 40,
    **run_kwargs: Any,
) -> Tuple[Perturbation, int]:
    """Greedy delta-debugging over a failing perturbation.

    Repeatedly tries to remove one component (a crash, a reclaim, a
    partition window, a congestion spike, the latency jitter, the
    tie-break shuffle) and keeps any simplification
    under which the run still violates an invariant, until no single
    removal preserves the failure or *max_runs* re-executions are spent.

    Returns the minimal failing perturbation found and the number of
    re-executions used.  ``make_job`` must build a fresh job per call.
    """
    current = failing
    runs = 0
    improved = True
    while improved and runs < max_runs:
        improved = False
        for candidate in _simplifications(current):
            runs += 1
            if not run_checked(make_job(), perturbation=candidate, **run_kwargs).ok:
                current = candidate
                improved = True
                break
            if runs >= max_runs:
                break
    return current, runs
