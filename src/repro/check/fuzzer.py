"""Schedule-space fuzzer: many seeds, shrink whatever fails.

Each seed maps (via :meth:`Perturbation.generate`) to one legal but
perturbed schedule: a different same-time event interleaving, extra
message jitter, and possibly a crash or an owner reclaim.  :func:`fuzz`
runs a window of seeds of one registered application under the full
invariant checker and, for every failing seed, shrinks the perturbation
to a minimal reproducing schedule.

Reproduce a reported failure exactly::

    from repro.apps.fib import fib_job, fib_serial
    from repro.check import Perturbation, run_checked

    run = run_checked(fib_job(14), n_workers=4, seed=BAD_SEED,
                      perturbation=Perturbation.generate(BAD_SEED, 4),
                      expected=fib_serial(14))
    print(run.report.summary())
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.check.harness import (
    CHECK_WORKER,
    CheckedRun,
    Perturbation,
    run_checked,
    shrink_perturbation,
)
from repro.errors import ReproError
from repro.micro.worker import WorkerConfig
from repro.tasks.program import JobProgram


@dataclass(frozen=True)
class AppSpec:
    """One fuzzable application: a job factory plus its result oracle."""

    name: str
    make: Callable[[], JobProgram]
    expected: Any
    #: Optional worker-config override (e.g. enable retirement so the
    #: shrink app actually exercises the departure protocol).
    worker_config: Optional[WorkerConfig] = None


def _builtin_apps() -> Dict[str, AppSpec]:
    from repro.apps.fib import fib_job, fib_serial
    from repro.apps.knary import knary_job, knary_nodes
    from repro.apps.shrink import shrink_expected, shrink_job

    return {
        "fib": AppSpec("fib", lambda: fib_job(14), fib_serial(14)),
        "knary": AppSpec("knary", lambda: knary_job(5, 4, 1), knary_nodes(5, 4)),
        "shrink": AppSpec(
            "shrink",
            lambda: shrink_job(12, 60),
            shrink_expected(12, 60),
            worker_config=dataclasses.replace(
                CHECK_WORKER, retire_after_failed_steals=4
            ),
        ),
    }


#: Applications the fuzzer knows how to run (small instances of the
#: paper's workloads, each with a closed-form oracle).
APPS: Dict[str, AppSpec] = _builtin_apps()


@dataclass
class FuzzFailure:
    """One failing seed, with its shrunk reproduction."""

    seed: int
    perturbation: Perturbation
    shrunk: Perturbation
    report_summary: str
    completed: bool
    shrink_runs: int = 0


@dataclass
class FuzzResult:
    """Outcome of one :func:`fuzz` sweep."""

    app: str
    n_workers: int
    seeds: Tuple[int, ...]
    failures: List[FuzzFailure] = field(default_factory=list)
    bug: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        head = (
            f"fuzz {self.app}: {len(self.seeds)} seeds x {self.n_workers} workers"
            + (f" [injected bug: {self.bug}]" if self.bug else "")
        )
        if self.ok:
            return f"{head}\n  all schedules clean"
        lines = [f"{head}\n  {len(self.failures)} failing seed(s):"]
        for f in self.failures:
            lines.append(
                f"  seed {f.seed}: {f.report_summary.splitlines()[0]}"
            )
            lines.append(f"    original schedule: {f.perturbation.describe()}")
            lines.append(
                f"    shrunk schedule:   {f.shrunk.describe()} "
                f"({f.shrink_runs} re-runs)"
            )
            lines.append(
                f"    reproduce: run_checked(<{self.app} job>, "
                f"n_workers={self.n_workers}, seed={f.seed}, "
                f"perturbation=Perturbation.generate({f.seed}, {self.n_workers}))"
            )
        return "\n".join(lines)


def fuzz(
    app: str = "fib",
    n_seeds: int = 25,
    start_seed: int = 0,
    n_workers: int = 4,
    bug: Optional[str] = None,
    shrink: bool = True,
    horizon_s: float = 60.0,
    progress: Optional[Callable[[int, CheckedRun], None]] = None,
) -> FuzzResult:
    """Fuzz *n_seeds* schedules of one registered application.

    Args:
        app: key into :data:`APPS`.
        n_seeds: how many consecutive seeds to explore.
        start_seed: first seed of the window.
        n_workers: cluster size per run.
        bug: optional deliberate bug (see :data:`repro.check.BUGS`) —
            the sweep then *should* fail; used to validate the checker.
        shrink: shrink each failure to a minimal perturbation.
        progress: optional callback ``(seed, run)`` after each run.
    """
    spec = APPS.get(app)
    if spec is None:
        raise ReproError(f"unknown app {app!r}; known: {sorted(APPS)}")
    seeds = tuple(range(start_seed, start_seed + n_seeds))
    result = FuzzResult(app=app, n_workers=n_workers, seeds=seeds, bug=bug)
    for seed in seeds:
        pert = Perturbation.generate(seed, n_workers)
        run = run_checked(
            spec.make(),
            n_workers=n_workers,
            seed=seed,
            perturbation=pert,
            expected=spec.expected,
            worker_config=spec.worker_config,
            horizon_s=horizon_s,
            bug=bug,
        )
        if progress is not None:
            progress(seed, run)
        if run.ok:
            continue
        shrunk, shrink_runs = pert, 0
        if shrink:
            shrunk, shrink_runs = shrink_perturbation(
                spec.make,
                pert,
                n_workers=n_workers,
                seed=seed,
                expected=spec.expected,
                worker_config=spec.worker_config,
                horizon_s=horizon_s,
                bug=bug,
            )
        result.failures.append(FuzzFailure(
            seed=seed,
            perturbation=pert,
            shrunk=shrunk,
            report_summary=run.report.summary(),
            completed=run.completed,
            shrink_runs=shrink_runs,
        ))
    return result
