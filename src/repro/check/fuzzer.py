"""Schedule-space fuzzer: many seeds, shrink whatever fails.

Each seed maps (via :meth:`Perturbation.generate`) to one legal but
perturbed schedule: a different same-time event interleaving, extra
message jitter, and possibly a crash or an owner reclaim.  :func:`fuzz`
runs a window of seeds of one registered application under the full
invariant checker and, for every failing seed, shrinks the perturbation
to a minimal reproducing schedule.

Reproduce a reported failure exactly::

    from repro.apps.fib import fib_job, fib_serial
    from repro.check import Perturbation, run_checked

    run = run_checked(fib_job(14), n_workers=4, seed=BAD_SEED,
                      perturbation=Perturbation.generate(BAD_SEED, 4),
                      expected=fib_serial(14))
    print(run.report.summary())
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple,
)

from repro.check.harness import (
    CHECK_WORKER,
    CheckedRun,
    Perturbation,
    run_checked,
    shrink_perturbation,
)
from repro.errors import ReproError
from repro.micro.worker import WorkerConfig
from repro.tasks.program import JobProgram

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class AppSpec:
    """One fuzzable application: a job factory plus its result oracle."""

    name: str
    make: Callable[[], JobProgram]
    expected: Any
    #: Optional worker-config override (e.g. enable retirement so the
    #: shrink app actually exercises the departure protocol).
    worker_config: Optional[WorkerConfig] = None


def _builtin_apps() -> Dict[str, AppSpec]:
    from repro.apps.fib import fib_job, fib_serial
    from repro.apps.knary import knary_job, knary_nodes
    from repro.apps.shrink import shrink_expected, shrink_job

    return {
        "fib": AppSpec("fib", lambda: fib_job(14), fib_serial(14)),
        "knary": AppSpec("knary", lambda: knary_job(5, 4, 1), knary_nodes(5, 4)),
        "shrink": AppSpec(
            "shrink",
            lambda: shrink_job(12, 60),
            shrink_expected(12, 60),
            worker_config=dataclasses.replace(
                CHECK_WORKER, retire_after_failed_steals=4
            ),
        ),
    }


#: Applications the fuzzer knows how to run (small instances of the
#: paper's workloads, each with a closed-form oracle).
APPS: Dict[str, AppSpec] = _builtin_apps()


@dataclass
class FuzzFailure:
    """One failing seed, with its shrunk reproduction."""

    seed: int
    perturbation: Perturbation
    shrunk: Perturbation
    report_summary: str
    completed: bool
    shrink_runs: int = 0


@dataclass
class FuzzResult:
    """Outcome of one :func:`fuzz` sweep."""

    app: str
    n_workers: int
    seeds: Tuple[int, ...]
    failures: List[FuzzFailure] = field(default_factory=list)
    bug: Optional[str] = None
    scenario: str = "mixed"

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        head = (
            f"fuzz {self.app}: {len(self.seeds)} seeds x {self.n_workers} workers"
            + (f" [scenario: {self.scenario}]" if self.scenario != "mixed" else "")
            + (f" [injected bug: {self.bug}]" if self.bug else "")
        )
        if self.ok:
            return f"{head}\n  all schedules clean"
        lines = [f"{head}\n  {len(self.failures)} failing seed(s):"]
        for f in self.failures:
            lines.append(
                f"  seed {f.seed}: {f.report_summary.splitlines()[0]}"
            )
            lines.append(f"    original schedule: {f.perturbation.describe()}")
            lines.append(
                f"    shrunk schedule:   {f.shrunk.describe()} "
                f"({f.shrink_runs} re-runs)"
            )
            scenario_arg = (
                f", scenario={self.scenario!r}" if self.scenario != "mixed" else ""
            )
            lines.append(
                f"    reproduce: run_checked(<{self.app} job>, "
                f"n_workers={self.n_workers}, seed={f.seed}, "
                f"perturbation=Perturbation.generate({f.seed}, "
                f"{self.n_workers}{scenario_arg}))"
            )
        return "\n".join(lines)


def fuzz(
    app: str = "fib",
    n_seeds: int = 25,
    start_seed: int = 0,
    n_workers: int = 4,
    bug: Optional[str] = None,
    shrink: bool = True,
    horizon_s: float = 60.0,
    progress: Optional[Callable[[int, CheckedRun], None]] = None,
    seeds: Optional[Sequence[int]] = None,
    metrics: Optional["MetricsRegistry"] = None,
    scenario: str = "mixed",
    queue: str = "auto",
) -> FuzzResult:
    """Fuzz *n_seeds* schedules of one registered application.

    Args:
        app: key into :data:`APPS`.
        n_seeds: how many consecutive seeds to explore.
        start_seed: first seed of the window.
        n_workers: cluster size per run.
        bug: optional deliberate bug (see :data:`repro.check.BUGS`) —
            the sweep then *should* fail; used to validate the checker.
        shrink: shrink each failure to a minimal perturbation.
        progress: optional callback ``(seed, run)`` after each run.
        seeds: explicit seed list overriding ``n_seeds``/``start_seed``
            (how :func:`fuzz_sharded` hands each shard its range).
        metrics: optional registry receiving ``check.*`` counters and
            the per-seed wall-time histogram.
        scenario: perturbation scenario class (see
            :attr:`Perturbation.SCENARIOS`) — "partition" and "spike"
            force that network dynamic into every seed.
        queue: event-queue backend for every run's Simulator
            ("auto"/"heap"/"calendar"); the backend must be
            unobservable, so any sweep can be replayed on the other
            backend and must reproduce byte-identical traces (see
            :func:`verify_queue_backends`).
    """
    spec = APPS.get(app)
    if spec is None:
        raise ReproError(f"unknown app {app!r}; known: {sorted(APPS)}")
    seed_window = (
        tuple(seeds) if seeds is not None
        else tuple(range(start_seed, start_seed + n_seeds))
    )
    result = FuzzResult(app=app, n_workers=n_workers, seeds=seed_window,
                        bug=bug, scenario=scenario)
    for seed in seed_window:
        seed_started = time.perf_counter()
        pert = Perturbation.generate(seed, n_workers, scenario=scenario)
        try:
            run = run_checked(
                spec.make(),
                n_workers=n_workers,
                seed=seed,
                perturbation=pert,
                expected=spec.expected,
                worker_config=spec.worker_config,
                horizon_s=horizon_s,
                bug=bug,
                queue=queue,
            )
        except Exception as exc:
            # Attach the owning seed: in a sharded run this crosses the
            # process boundary as text, so the context must be in the
            # message, not just the local traceback.
            raise ReproError(
                f"fuzz({app!r}) seed {seed} "
                f"[{pert.describe()}]: {type(exc).__name__}: {exc}"
            ) from exc
        if progress is not None:
            progress(seed, run)
        shrunk, shrink_runs = pert, 0
        if not run.ok and shrink:
            shrunk, shrink_runs = shrink_perturbation(
                spec.make,
                pert,
                n_workers=n_workers,
                seed=seed,
                expected=spec.expected,
                worker_config=spec.worker_config,
                horizon_s=horizon_s,
                bug=bug,
                queue=queue,
            )
        if metrics is not None:
            metrics.counter("check.seeds_run").inc()
            metrics.histogram("check.seed_wall_s").observe(
                time.perf_counter() - seed_started
            )
            if not run.ok:
                metrics.counter("check.failures").inc()
                metrics.counter("check.shrink_runs").inc(shrink_runs)
        if run.ok:
            continue
        result.failures.append(FuzzFailure(
            seed=seed,
            perturbation=pert,
            shrunk=shrunk,
            report_summary=run.report.summary(),
            completed=run.completed,
            shrink_runs=shrink_runs,
        ))
    return result


# ---------------------------------------------------------------------------
# Sharded fuzzing (see repro.parallel and docs/checking.md)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzShardSpec:
    """One shard's worth of a fuzz sweep — everything the worker
    process needs, all picklable primitives (spawn-safe)."""

    app: str
    seeds: Tuple[int, ...]
    n_workers: int
    bug: Optional[str]
    shrink: bool
    horizon_s: float
    scenario: str = "mixed"
    queue: str = "auto"

    def describe(self) -> str:
        if not self.seeds:
            return "no seeds"
        return f"seeds {self.seeds[0]}..{self.seeds[-1]} ({len(self.seeds)})"


def _run_fuzz_shard(spec: FuzzShardSpec) -> Tuple[FuzzResult, Dict[str, Any]]:
    """Shard entry point (module-level so the pool can import it).

    Returns the shard's :class:`FuzzResult` plus its
    :class:`~repro.obs.metrics.MetricsRegistry` snapshot; both are
    plain picklable data.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    result = fuzz(
        app=spec.app,
        seeds=spec.seeds,
        n_workers=spec.n_workers,
        bug=spec.bug,
        shrink=spec.shrink,
        horizon_s=spec.horizon_s,
        metrics=registry,
        scenario=spec.scenario,
        queue=spec.queue,
    )
    return result, registry.snapshot()


@dataclass
class ShardedFuzz:
    """Outcome of :func:`fuzz_sharded`: the merged sweep plus how the
    fan-out executed and the combined metric snapshot."""

    result: FuzzResult
    stats: Any  # repro.parallel.PoolStats
    metrics: Dict[str, Any] = field(default_factory=dict)


def fuzz_sharded(
    app: str = "fib",
    n_seeds: int = 25,
    start_seed: int = 0,
    n_workers: int = 4,
    bug: Optional[str] = None,
    shrink: bool = True,
    horizon_s: float = 60.0,
    jobs: Optional[int] = 1,
    progress: Optional[Callable[[int, bool], None]] = None,
    shards_per_job: int = 4,
    scenario: str = "mixed",
    queue: str = "auto",
) -> ShardedFuzz:
    """Shard a fuzz sweep's seed range across worker processes.

    The merged :class:`FuzzResult` is **byte-identical** to what the
    serial :func:`fuzz` produces for the same seed window: seeds are
    split into contiguous chunks, every chunk replays the exact serial
    per-seed logic (shrinking included, in the shard that owns the
    failing seed), and chunk results concatenate in order.  ``jobs=1``
    (or one seed) runs inline with no process machinery.

    Args:
        jobs: worker processes (None/0 = one per CPU, 1 = inline).
        progress: parent-side callback ``(seed, ok)`` per finished seed
            (bursts in shard-completion order when pooled).
        shards_per_job: chunks submitted per worker — finer chunks
            balance load when one shard hits a slow shrink cycle.
        scenario: perturbation scenario class, forwarded to every shard
            (see :attr:`Perturbation.SCENARIOS`).
        queue: event-queue backend, forwarded to every shard.
    """
    from repro.obs.metrics import merge_snapshots
    from repro.parallel import ShardedRunner, resolve_jobs, split_evenly

    if app not in APPS:  # fail in the parent, not 4 children
        raise ReproError(f"unknown app {app!r}; known: {sorted(APPS)}")
    seeds = list(range(start_seed, start_seed + n_seeds))
    jobs = resolve_jobs(jobs)
    chunks = split_evenly(seeds, jobs * max(1, shards_per_job))
    specs = [
        FuzzShardSpec(app=app, seeds=tuple(chunk), n_workers=n_workers,
                      bug=bug, shrink=shrink, horizon_s=horizon_s,
                      scenario=scenario, queue=queue)
        for chunk in chunks
    ]

    def on_result(_index: int, spec: FuzzShardSpec, payload) -> None:
        if progress is None:
            return
        shard_result, _snap = payload
        failing = {f.seed for f in shard_result.failures}
        for seed in spec.seeds:
            progress(seed, seed not in failing)

    runner = ShardedRunner(jobs=jobs)
    payloads, stats = runner.map(
        _run_fuzz_shard, specs, label=f"fuzz({app})",
        describe=FuzzShardSpec.describe, on_result=on_result,
    )
    merged = FuzzResult(
        app=app, n_workers=n_workers, seeds=tuple(seeds), bug=bug,
        scenario=scenario,
    )
    for shard_result, _snap in payloads:
        merged.failures.extend(shard_result.failures)
    return ShardedFuzz(
        result=merged,
        stats=stats,
        metrics=merge_snapshots([snap for _res, snap in payloads]),
    )


# ---------------------------------------------------------------------------
# Queue-backend equivalence (the byte-identical-trace contract)
# ---------------------------------------------------------------------------


@dataclass
class BackendVerifyResult:
    """Outcome of one :func:`verify_queue_backends` sweep."""

    app: str
    n_workers: int
    seeds: Tuple[int, ...]
    #: Seeds whose heap- and calendar-backend traces differed.
    mismatched: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatched

    def summary(self) -> str:
        head = (f"verify-queue {self.app}: {len(self.seeds)} seeds x "
                f"{self.n_workers} workers, heap vs calendar")
        if self.ok:
            return f"{head}\n  all traces byte-identical"
        return (f"{head}\n  {len(self.mismatched)} diverging seed(s): "
                f"{self.mismatched}")


def verify_queue_backends(
    app: str = "fib",
    n_seeds: int = 50,
    start_seed: int = 0,
    n_workers: int = 4,
    horizon_s: float = 60.0,
    scenario: str = "mixed",
    progress: Optional[Callable[[int, bool], None]] = None,
) -> BackendVerifyResult:
    """Prove the queue backends equivalent on full cluster runs.

    For every seed, the same checked run (same job, same perturbation)
    executes once on the reference heap backend and once on the
    calendar backend; the two :class:`~repro.util.trace.TraceLog` dumps
    must match byte for byte.  This is the contract that lets the
    accelerated backend be the default: any divergence — one message
    reordered, one timer fired in a different order — shows up as a
    trace diff on some seed (``repro check --verify-queue``; CI runs
    this on every push).
    """
    spec = APPS.get(app)
    if spec is None:
        raise ReproError(f"unknown app {app!r}; known: {sorted(APPS)}")
    seed_window = tuple(range(start_seed, start_seed + n_seeds))
    result = BackendVerifyResult(app=app, n_workers=n_workers, seeds=seed_window)
    for seed in seed_window:
        pert = Perturbation.generate(seed, n_workers, scenario=scenario)
        dumps = []
        for backend in ("heap", "calendar"):
            run = run_checked(
                spec.make(),
                n_workers=n_workers,
                seed=seed,
                perturbation=pert,
                expected=spec.expected,
                worker_config=spec.worker_config,
                horizon_s=horizon_s,
                queue=backend,
            )
            dumps.append(run.trace.dump())
        ok = dumps[0] == dumps[1]
        if not ok:
            result.mismatched.append(seed)
        if progress is not None:
            progress(seed, ok)
    return result
