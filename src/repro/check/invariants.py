"""Global invariant checking over traced executions.

The paper's correctness story — "enough redundant state is maintained so
that lost work can be redone" — rests on a handful of global invariants
that no single unit test pins down.  This module verifies them after a
run, from the :class:`~repro.util.trace.TraceLog` the instrumented
scheduler emitted plus the workers' final state:

* **conservation** — every closure ever created is executed at most
  once, and ends up either executed, explicitly lost to a crash (and
  then covered by the victims' redo obligation), or abandoned only after
  the job's result was already delivered;
* **join-counter** — a suspended closure's join counter decreases by
  exactly one per fill, never goes negative, and the closure runs only
  once every slot is filled;
* **causality** — no steal grant or steal success precedes its request,
  and no datagram is delivered to a crashed (dead) worker;
* **migration** — every closure a departing worker evacuated arrives at
  the acknowledging peer;
* **retirement** — a worker retires only with an empty ready list, no
  suspended closures, and at least the configured number of consecutive
  failed steals;
* **liveness** — the job actually delivered its result within the
  simulation horizon.

When the trace was capacity-bounded and events were evicted
(``trace.dropped > 0``), history-dependent invariants are skipped with a
warning instead of reporting false violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import InvariantViolation
from repro.tasks.closure import ClosureId
from repro.util.trace import TraceLog

#: Names of the invariants this module can check, in report order.
ALL_INVARIANTS = (
    "liveness",
    "conservation",
    "join-counter",
    "causality",
    "migration",
    "retirement",
    "deque-audit",
)


@dataclass(frozen=True)
class Violation:
    """One invariant breach with enough evidence to debug it."""

    invariant: str
    message: str
    time: float = 0.0
    evidence: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.evidence.items()))
        where = f" at t={self.time:.6f}" if self.time else ""
        return f"[{self.invariant}]{where} {self.message}" + (f" ({extras})" if extras else "")


@dataclass
class InvariantReport:
    """The outcome of one :func:`check_invariants` pass."""

    violations: List[Violation] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    checked: Tuple[str, ...] = ALL_INVARIANTS

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_invariant(self, name: str) -> List[Violation]:
        return [v for v in self.violations if v.invariant == name]

    def summary(self, limit: int = 10) -> str:
        """Human-readable digest (at most *limit* violations spelled out)."""
        if self.ok:
            lines = [f"OK — {len(self.checked)} invariants checked"]
        else:
            lines = [f"{len(self.violations)} violation(s):"]
            lines += [f"  {v}" for v in self.violations[:limit]]
            if len(self.violations) > limit:
                lines.append(f"  ... and {len(self.violations) - limit} more")
        lines += [f"  warning: {w}" for w in self.warnings]
        return "\n".join(lines)

    def require_ok(self) -> "InvariantReport":
        """Raise :class:`InvariantViolation` unless the run was clean."""
        if not self.ok:
            raise InvariantViolation(self.summary())
        return self


class DequeAuditor:
    """Online ready-list audit, fed by :attr:`ReadyDeque.observer`.

    Maintains the set of closure ids currently inside each worker's
    ready list and records an error the moment a closure is popped that
    was never pushed, or pushed while already present — corruption the
    post-hoc trace pass could only localise approximately.
    """

    def __init__(self) -> None:
        self._present: Dict[str, Set[ClosureId]] = {}
        self.errors: List[str] = []

    def attach(self, worker) -> None:
        """Install this auditor on *worker*'s ready deque."""
        name = worker.name
        present = self._present.setdefault(name, set())
        for closure in worker.deque.peek_all():  # pre-existing (restored) items
            present.add(closure.cid)

        def observe(op: str, closure) -> None:
            cid = closure.cid
            if op in ("push", "extend"):
                if cid in present:
                    self.errors.append(f"{name}: closure {cid} pushed while already queued")
                else:
                    present.add(cid)
            else:  # pop_exec / pop_steal / drain
                if cid not in present:
                    self.errors.append(f"{name}: closure {cid} popped but never pushed")
                else:
                    present.discard(cid)

        worker.deque.observer = observe

    def verify(self, workers: Iterable) -> None:
        """Mid-run consistency probe (wired to :attr:`Simulator.monitor`)."""
        for w in workers:
            if w.workstation.crashed:
                # A fail-stopped worker's tables are dead state: the
                # closure objects it froze may be shared with (and
                # mutated by) their re-homed live copies.
                continue
            tracked = self._present.get(w.name)
            if tracked is not None and len(tracked) != len(w.deque):
                self.errors.append(
                    f"{w.name}: deque holds {len(w.deque)} closures but the "
                    f"audit set tracks {len(tracked)}"
                )
            for closure in w.suspended.values():
                if closure.join_counter == 0:
                    self.errors.append(
                        f"{w.name}: ready closure {closure.cid} still parked "
                        f"in the suspended table"
                    )


# ---------------------------------------------------------------------------
# Trace indexing
# ---------------------------------------------------------------------------


class _TraceIndex:
    """One linear pass over the trace, bucketed for the checkers."""

    def __init__(self, trace: TraceLog) -> None:
        self.created: Dict[ClosureId, float] = {}
        self.executed: Dict[ClosureId, List[float]] = {}
        self.suspend_missing: Dict[ClosureId, int] = {}
        self.fills: Dict[ClosureId, List[Tuple[int, float, int, int]]] = {}
        self.lost: Dict[ClosureId, str] = {}
        self.requests: Dict[Tuple[str, int], Tuple[int, float, str]] = {}
        self.grants: List[Tuple[int, float, str, str, ClosureId, int]] = []
        self.successes: List[Tuple[int, float, str, str, ClosureId, int]] = []
        self.redo_pairs: Dict[Tuple[str, str], Set[ClosureId]] = {}
        #: Identities retired by a migration failover re-key: the old
        #: cid may still execute once at a stale adopter, or never
        #: surface again at all — either way its copy carries the work.
        self.superseded: Set[ClosureId] = set()
        self.migrate_out: List[Tuple[int, float, str, str, List[ClosureId]]] = []
        self.migrated_in: Set[Tuple[str, ClosureId]] = set()
        #: Full exit history per worker: a retired worker may rejoin when
        #: migrated work re-recruits it, then exit again later.
        self.exits: Dict[str, List[Tuple[int, float, str, Dict[str, Any]]]] = {}
        self.deaths: List[Tuple[int, float, str]] = []
        self.dead_deliveries: List[Tuple[float, str]] = []
        self.result_time: Optional[float] = None

        # Ports of crashed workers, keyed by host.  A host outlives its
        # worker (reclaim-failstop, or the Clearinghouse sharing ws00),
        # so only deliveries to the dead worker's *own* port are
        # causality violations.  None means the exit recorded no port
        # (hand-built traces): match any delivery to that host.
        crashed_ports: Dict[str, Set[Optional[int]]] = {}
        for order, ev in enumerate(trace):
            kind = ev.kind
            if kind == "closure.new":
                self.created[ev.detail["cid"]] = ev.time
            elif kind == "closure.exec":
                self.executed.setdefault(ev.detail["cid"], []).append(ev.time)
            elif kind == "closure.suspend":
                self.suspend_missing[ev.detail["cid"]] = ev.detail["missing"]
            elif kind == "join.fill":
                cid = ev.detail["cid"]
                self.fills.setdefault(cid, []).append(
                    (order, ev.time, ev.detail["slot"], ev.detail["remaining"])
                )
            elif kind == "closure.lost":
                for cid in ev.detail["cids"]:
                    self.lost.setdefault(cid, ev.detail.get("reason", "lost"))
            elif kind == "closure.drop":
                self.lost.setdefault(ev.detail["cid"], ev.detail.get("reason", "drop"))
            elif kind == "steal.request":
                self.requests[(ev.source, ev.detail["req"])] = (
                    order, ev.time, ev.detail["victim"]
                )
            elif kind == "steal.grant":
                self.grants.append(
                    (order, ev.time, ev.source, ev.detail["thief"],
                     ev.detail["cid"], ev.detail["req"])
                )
            elif kind == "steal.success":
                self.successes.append(
                    (order, ev.time, ev.source, ev.detail["victim"],
                     ev.detail["cid"], ev.detail["req"])
                )
            elif kind == "redo":
                bucket = self.redo_pairs.setdefault((ev.source, ev.detail["dead"]), set())
                for orig, _copy in ev.detail.get("pairs", ()):
                    bucket.add(orig)
            elif kind == "steal.reclaim":
                # A grant reclaimed for lack of a GRANT_ACK discharges
                # the victim's redo obligation for those closures exactly
                # as a death redo would (the thief may die later without
                # the cids reappearing in a "redo" event).
                bucket = self.redo_pairs.setdefault((ev.source, ev.detail["thief"]), set())
                for orig, _copy in ev.detail.get("pairs", ()):
                    bucket.add(orig)
            elif kind == "migrate.reoffer":
                for orig, _copy in ev.detail.get("pairs", ()):
                    self.superseded.add(orig)
            elif kind == "migrate.out":
                self.migrate_out.append(
                    (order, ev.time, ev.source, ev.detail["target"],
                     list(ev.detail.get("cids", ())))
                )
            elif kind == "migrate.in":
                for cid in ev.detail.get("cids", ()):
                    self.migrated_in.add((ev.source, cid))
            elif kind.startswith("worker.exit."):
                reason = kind[len("worker.exit."):]
                self.exits.setdefault(ev.source, []).append(
                    (order, ev.time, reason, dict(ev.detail))
                )
                if reason == "crashed":
                    crashed_ports.setdefault(ev.source, set()).add(
                        ev.detail.get("port")
                    )
            elif kind == "ch.worker_died":
                self.deaths.append((order, ev.time, ev.detail["worker"]))
            elif kind in ("net.recv", "net.loopback"):
                dead = crashed_ports.get(ev.source)
                if dead is not None:
                    port = ev.detail.get("port")
                    if port is None or None in dead or port in dead:
                        self.dead_deliveries.append((ev.time, ev.source))
            elif kind == "ch.result":
                self.result_time = ev.time


# ---------------------------------------------------------------------------
# Individual checkers
# ---------------------------------------------------------------------------


def _check_conservation(
    idx: _TraceIndex, leftovers: Set[ClosureId], completed: bool
) -> List[Violation]:
    out: List[Violation] = []
    for cid, times in idx.executed.items():
        if len(times) > 1:
            out.append(Violation(
                "conservation",
                f"closure {cid} executed {len(times)} times",
                time=times[1], evidence={"cid": cid, "times": times},
            ))
    for cid, born in idx.created.items():
        if (cid in idx.executed or cid in idx.lost or cid in leftovers
                or cid in idx.superseded):
            continue
        out.append(Violation(
            "conservation",
            f"closure {cid} was created but neither executed, lost to a "
            f"crash, nor left over at termination",
            time=born, evidence={"cid": cid},
        ))
    # Redo obligation: when a worker is declared dead, every closure a
    # victim had granted it must be re-created — including by victims
    # that departed gracefully (their net loop lingers to discharge the
    # obligation).  Only a victim that itself fail-stopped is exempt:
    # its outstanding table died with it, which is the double-failure
    # case outside the paper's single-failure model.
    for death_order, death_time, dead in idx.deaths:
        for _order, _t, victim, thief, cid, _req in idx.grants:
            if thief != dead:
                continue
            vexits = idx.exits.get(victim)
            if vexits and vexits[-1][2] in ("crashed", "stopped"):
                continue  # victim's redundant state died with it
            if cid not in idx.redo_pairs.get((victim, dead), ()):
                out.append(Violation(
                    "conservation",
                    f"worker {dead} died holding stolen closure {cid} but "
                    f"victim {victim} never redid it",
                    time=death_time,
                    evidence={"cid": cid, "victim": victim, "dead": dead},
                ))
    return out


def _check_join_counters(idx: _TraceIndex) -> List[Violation]:
    out: List[Violation] = []
    for cid, fills in idx.fills.items():
        missing = idx.suspend_missing.get(cid)
        if missing is None:
            out.append(Violation(
                "join-counter",
                f"closure {cid} had an argument slot filled but was never suspended",
                time=fills[0][1], evidence={"cid": cid},
            ))
            continue
        if len(fills) > missing:
            out.append(Violation(
                "join-counter",
                f"closure {cid} received {len(fills)} fills for {missing} "
                f"missing slots (counter went negative)",
                time=fills[-1][1], evidence={"cid": cid, "missing": missing},
            ))
            continue
        for i, (_order, t, slot, remaining) in enumerate(fills):
            if remaining != missing - i - 1:
                out.append(Violation(
                    "join-counter",
                    f"closure {cid} join counter jumped to {remaining} on "
                    f"fill #{i + 1} of {missing} (expected {missing - i - 1})",
                    time=t, evidence={"cid": cid, "slot": slot},
                ))
                break
        slots = [slot for _o, _t, slot, _r in fills]
        if len(set(slots)) != len(slots):
            out.append(Violation(
                "join-counter",
                f"closure {cid} had the same slot filled twice without "
                f"being flagged as a duplicate",
                time=fills[-1][1], evidence={"cid": cid, "slots": slots},
            ))
    for cid, missing in idx.suspend_missing.items():
        if cid not in idx.executed:
            continue
        fills = idx.fills.get(cid, [])
        exec_time = idx.executed[cid][0]
        if len(fills) != missing:
            out.append(Violation(
                "join-counter",
                f"closure {cid} executed with {missing - len(fills)} of "
                f"{missing} argument slots still unfilled",
                time=exec_time, evidence={"cid": cid},
            ))
        elif fills and fills[-1][3] != 0:
            out.append(Violation(
                "join-counter",
                f"closure {cid} executed but its last fill left the join "
                f"counter at {fills[-1][3]}, not zero",
                time=exec_time, evidence={"cid": cid},
            ))
    return out


def _check_causality(idx: _TraceIndex) -> List[Violation]:
    out: List[Violation] = []
    for order, t, victim, thief, cid, req in idx.grants:
        request = idx.requests.get((thief, req))
        if request is None or request[0] > order:
            out.append(Violation(
                "causality",
                f"steal grant from {victim} to {thief} (req {req}) has no "
                f"preceding steal request",
                time=t, evidence={"cid": cid, "thief": thief, "req": req},
            ))
        elif request[2] != victim:
            out.append(Violation(
                "causality",
                f"steal request {req} of {thief} targeted {request[2]} but "
                f"was granted by {victim}",
                time=t, evidence={"cid": cid, "req": req},
            ))
    granted = {(victim, thief, req) for _o, _t, victim, thief, _cid, req in idx.grants}
    for order, t, thief, victim, cid, req in idx.successes:
        request = idx.requests.get((thief, req))
        if request is None or request[0] > order or request[1] > t:
            out.append(Violation(
                "causality",
                f"steal success at {thief} (req {req}) precedes or lacks its request",
                time=t, evidence={"cid": cid, "req": req},
            ))
        if (victim, thief, req) not in granted:
            out.append(Violation(
                "causality",
                f"steal success at {thief} (req {req}) was never granted by {victim}",
                time=t, evidence={"cid": cid, "req": req},
            ))
    for t, host in idx.dead_deliveries:
        out.append(Violation(
            "causality",
            f"datagram delivered to {host} after its worker crashed",
            time=t, evidence={"host": host},
        ))
    return out


def _check_migration(idx: _TraceIndex) -> List[Violation]:
    out: List[Violation] = []
    for _order, t, src, target, cids in idx.migrate_out:
        for cid in cids:
            if (target, cid) not in idx.migrated_in:
                out.append(Violation(
                    "migration",
                    f"closure {cid} evacuated by {src} never arrived at the "
                    f"acknowledging peer {target}",
                    time=t, evidence={"cid": cid, "src": src, "target": target},
                ))
    return out


def _check_retirement(idx: _TraceIndex) -> List[Violation]:
    out: List[Violation] = []
    retirements = [
        (worker, t, detail)
        for worker, history in idx.exits.items()
        for _order, t, reason, detail in history
        if reason == "retired"
    ]
    for worker, t, detail in retirements:
        if detail.get("deque", 0) or detail.get("susp", 0):
            out.append(Violation(
                "retirement",
                f"{worker} retired holding {detail.get('deque', 0)} ready and "
                f"{detail.get('susp', 0)} suspended closures",
                time=t, evidence={"worker": worker},
            ))
        threshold = detail.get("threshold")
        if threshold is None:
            out.append(Violation(
                "retirement",
                f"{worker} retired although retirement was disabled "
                f"(no failed-steal threshold configured)",
                time=t, evidence={"worker": worker},
            ))
        elif detail.get("failed", 0) < threshold:
            out.append(Violation(
                "retirement",
                f"{worker} retired after only {detail.get('failed', 0)} "
                f"consecutive failed steals (threshold {threshold})",
                time=t, evidence={"worker": worker},
            ))
    return out


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def collect_leftovers(workers: Sequence) -> Set[ClosureId]:
    """Closure ids still resident on workers after the run.

    Abandoned-but-accounted work: ready or suspended closures that were
    legitimately still queued when the job's result arrived (e.g. a
    crash-redo copy of a task whose original had already completed).
    """
    leftovers: Set[ClosureId] = set()
    for w in workers:
        leftovers.update(c.cid for c in w.deque.peek_all())
        leftovers.update(w.suspended)
    return leftovers


def check_invariants(
    trace: TraceLog,
    workers: Sequence = (),
    completed: bool = True,
    auditor: Optional[DequeAuditor] = None,
    result_ok: Optional[bool] = None,
) -> InvariantReport:
    """Verify the full invariant catalog against a finished run.

    Args:
        trace: the run's event log (must include the scheduler's
            ``closure.*`` / ``steal.*`` / ``join.*`` hook events).
        workers: the run's Worker objects, for final-state accounting.
        completed: whether the job delivered its result in time.
        auditor: the online :class:`DequeAuditor`, if one was attached.
        result_ok: optional outcome of comparing the job's result with
            an oracle (None: no oracle available).
    """
    report = InvariantReport()
    if not completed:
        report.violations.append(Violation(
            "liveness", "job did not deliver its result within the horizon"
        ))
    if result_ok is False:
        report.violations.append(Violation(
            "liveness", "job completed with a wrong result"
        ))
    if auditor is not None:
        if workers:
            auditor.verify(workers)
        # The periodic monitor can observe the same persistent corruption
        # many times; collapse repeats while preserving first-seen order.
        report.violations.extend(
            Violation("deque-audit", msg) for msg in dict.fromkeys(auditor.errors)
        )
    if trace.truncated:
        # Show what *was* kept, so a truncation report is actionable:
        # the kind mix tells the user which categories to filter on (or
        # how much to raise the capacity) to get a complete history.
        kept = ", ".join(f"{kind}={n}" for kind, n in trace.kinds())
        report.warnings.append(
            f"trace truncated ({trace.dropped} events evicted by the "
            f"capacity bound, {len(trace)} kept): history-dependent "
            f"invariants skipped; kept kinds: {kept}"
        )
        report.checked = ("liveness", "retirement", "deque-audit")
        idx = _TraceIndex(trace)
        report.violations.extend(_check_retirement(idx))
        return report

    idx = _TraceIndex(trace)
    leftovers = collect_leftovers(workers)
    report.violations.extend(_check_conservation(idx, leftovers, completed))
    report.violations.extend(_check_join_counters(idx))
    report.violations.extend(_check_causality(idx))
    report.violations.extend(_check_migration(idx))
    report.violations.extend(_check_retirement(idx))
    return report
