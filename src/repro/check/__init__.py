"""Schedule-space fuzzing and runtime invariant checking.

Public surface:

* :func:`run_checked` — run one job with tracing, online deque auditing,
  network-loss accounting, optional schedule perturbation and bug
  injection, then verify the invariant catalog.
* :func:`check_invariants` — the post-run trace pass on its own.
* :func:`fuzz` — sweep many seeds of a registered app, shrinking failures.
* :func:`fuzz_sharded` — the same sweep fanned out over a process pool
  (``--jobs``), merged byte-identically to the serial run.
* :func:`verify_queue_backends` — prove the heap and calendar event-queue
  backends produce byte-identical traces on full checked runs.
* :class:`Perturbation` — one seed-derived point in schedule space.

See ``docs/checking.md`` for the invariant catalog and workflow.
"""

from repro.check.fuzzer import (
    APPS,
    AppSpec,
    BackendVerifyResult,
    FuzzFailure,
    FuzzResult,
    FuzzShardSpec,
    ShardedFuzz,
    fuzz,
    fuzz_sharded,
    verify_queue_backends,
)
from repro.check.harness import (
    BUGS,
    CHECK_CH,
    CHECK_WORKER,
    CheckedRun,
    Perturbation,
    install_network_accounting,
    run_checked,
    shrink_perturbation,
)
from repro.check.invariants import (
    ALL_INVARIANTS,
    DequeAuditor,
    InvariantReport,
    Violation,
    check_invariants,
    collect_leftovers,
)

__all__ = [
    "ALL_INVARIANTS",
    "APPS",
    "AppSpec",
    "BUGS",
    "BackendVerifyResult",
    "CHECK_CH",
    "CHECK_WORKER",
    "CheckedRun",
    "DequeAuditor",
    "FuzzFailure",
    "FuzzResult",
    "FuzzShardSpec",
    "InvariantReport",
    "Perturbation",
    "ShardedFuzz",
    "Violation",
    "check_invariants",
    "collect_leftovers",
    "fuzz",
    "fuzz_sharded",
    "install_network_accounting",
    "run_checked",
    "shrink_perturbation",
    "verify_queue_backends",
]
