"""Tests for owner activity traces and idleness policies."""

import random

import pytest

from repro.cluster.owner import (
    AlwaysBusyTrace,
    AlwaysIdleTrace,
    LoadThresholdPolicy,
    NobodyLoggedInPolicy,
    Owner,
    RenewalOwnerTrace,
    ScriptedTrace,
)
from repro.cluster.platform import SPARCSTATION_1
from repro.cluster.workstation import Workstation
from repro.errors import ReproError


@pytest.fixture
def ws(sim):
    return Workstation(sim, "ws00", SPARCSTATION_1)


class TestTraces:
    def test_always_idle(self, sim, ws):
        Owner(ws, AlwaysIdleTrace())
        sim.run(until=100.0)
        assert not ws.user_logged_in

    def test_always_busy(self, sim, ws):
        Owner(ws, AlwaysBusyTrace())
        sim.run(until=100.0)
        assert ws.user_logged_in

    def test_scripted_transitions(self, sim, ws):
        Owner(ws, ScriptedTrace([("busy", 10.0), ("idle", 10.0), ("busy", 10.0)]))
        sim.run(until=5.0)
        assert ws.user_logged_in
        sim.run(until=15.0)
        assert not ws.user_logged_in
        sim.run(until=25.0)
        assert ws.user_logged_in

    def test_scripted_validation(self):
        with pytest.raises(ReproError):
            ScriptedTrace([("weird", 1.0)])
        with pytest.raises(ReproError):
            ScriptedTrace([("busy", -1.0)])

    def test_scripted_sets_load(self, sim, ws):
        Owner(ws, ScriptedTrace([("busy", 5.0), ("idle", 100.0)]))
        sim.run(until=1.0)
        assert ws.load == 1.0
        sim.run(until=10.0)
        assert ws.load == 0.0

    def test_renewal_alternates(self):
        trace = RenewalOwnerTrace(random.Random(1), busy_mean_s=10, idle_mean_s=10)
        periods = []
        it = trace.periods()
        for _ in range(6):
            periods.append(next(it))
        states = [s for s, _ in periods]
        assert states in (["busy", "idle"] * 3, ["idle", "busy"] * 3)
        assert all(d > 0 for _, d in periods)

    def test_renewal_reproducible(self):
        a = RenewalOwnerTrace(random.Random(7), 10, 10)
        b = RenewalOwnerTrace(random.Random(7), 10, 10)
        ia, ib = a.periods(), b.periods()
        assert [next(ia) for _ in range(4)] == [next(ib) for _ in range(4)]

    def test_renewal_validation(self):
        with pytest.raises(ReproError):
            RenewalOwnerTrace(random.Random(0), busy_mean_s=0)


class TestPolicies:
    def test_nobody_logged_in(self, ws):
        policy = NobodyLoggedInPolicy()
        ws.user_logged_in = False
        assert policy.is_idle(ws)
        ws.user_logged_in = True
        assert not policy.is_idle(ws)

    def test_load_threshold(self, ws):
        policy = LoadThresholdPolicy(threshold=0.5)
        ws.load = 0.2
        assert policy.is_idle(ws)
        ws.load = 0.8
        assert not policy.is_idle(ws)

    def test_load_threshold_ignores_login(self, ws):
        """A load-threshold owner tolerates logins while load stays low."""
        policy = LoadThresholdPolicy(threshold=0.5)
        ws.user_logged_in = True
        ws.load = 0.1
        assert policy.is_idle(ws)

    def test_load_threshold_validation(self):
        with pytest.raises(ReproError):
            LoadThresholdPolicy(threshold=0.0)
