"""Tests for the workstation model: compute timing, accounting, crashes."""

import pytest

from repro.cluster.platform import SPARCSTATION_1, SPARCSTATION_10
from repro.cluster.workstation import Workstation
from repro.errors import ReproError
from repro.sim.core import Interrupt


def test_execute_advances_clock_by_cycles(sim):
    ws = Workstation(sim, "w", SPARCSTATION_1)

    def proc(sim):
        yield ws.execute(12.5e6)  # one second at 12.5 MIPS
        return sim.now

    assert sim.run(sim.process(proc(sim))) == pytest.approx(1.0)


def test_faster_machine_finishes_sooner(sim):
    slow = Workstation(sim, "slow", SPARCSTATION_1)
    fast = Workstation(sim, "fast", SPARCSTATION_10)
    times = {}

    def proc(sim, ws):
        yield ws.execute(1e6)
        times[ws.name] = sim.now

    sim.process(proc(sim, slow))
    sim.process(proc(sim, fast))
    sim.run()
    assert times["fast"] < times["slow"]


def test_busy_accounting(sim):
    ws = Workstation(sim, "w", SPARCSTATION_1)

    def proc(sim):
        yield ws.execute(12.5e6)
        yield sim.timeout(10)  # idle: not busy time
        yield ws.execute(12.5e6)

    sim.run(sim.process(proc(sim)))
    assert ws.cpu_busy_s == pytest.approx(2.0)


def test_charge_adds_without_blocking(sim):
    ws = Workstation(sim, "w", SPARCSTATION_1)
    ws.charge(0.25)
    assert ws.cpu_busy_s == 0.25
    with pytest.raises(ReproError):
        ws.charge(-1)


def test_network_overhead_lands_in_rusage(sim, network):
    from repro.net.socket import Socket

    a = Workstation(sim, "a", SPARCSTATION_1, network)
    Workstation(sim, "b", SPARCSTATION_1, network)
    sa = Socket(network, "a", 1)
    Socket(network, "b", 2)
    sa.sendto("x", "b", 2)
    sim.run()
    assert a.cpu_busy_s == pytest.approx(SPARCSTATION_1.net.send_overhead_s)


def test_crash_interrupts_registered_processes(sim):
    ws = Workstation(sim, "w", SPARCSTATION_1)
    outcomes = []

    def proc(sim):
        try:
            yield sim.timeout(100)
            outcomes.append("finished")
        except Interrupt as i:
            outcomes.append(str(i.cause))

    p = sim.process(proc(sim))
    ws.register_process(p)

    def crasher(sim):
        yield sim.timeout(1)
        ws.crash()

    sim.process(crasher(sim))
    sim.run()
    assert outcomes == ["machine-crash"]


def test_crashed_machine_cannot_execute(sim):
    ws = Workstation(sim, "w", SPARCSTATION_1)
    ws.crash()
    with pytest.raises(ReproError):
        ws.execute(100)


def test_crash_idempotent_and_recover(sim, network):
    ws = Workstation(sim, "w", SPARCSTATION_1, network)
    ws.crash()
    ws.crash()
    assert network.is_down("w")
    ws.recover()
    assert not network.is_down("w")
    ws.recover()


def test_unregister_process(sim):
    ws = Workstation(sim, "w", SPARCSTATION_1)

    def proc(sim):
        yield sim.timeout(100)
        return "survived"

    p = sim.process(proc(sim))
    ws.register_process(p)
    ws.unregister_process(p)
    ws.unregister_process(p)  # idempotent
    ws.crash()
    assert sim.run(p) == "survived"
