"""Tests for platform profiles."""

import pytest

from repro.cluster.platform import (
    CM5_NODE,
    PLATFORMS,
    SPARCSTATION_1,
    SPARCSTATION_10,
    PlatformProfile,
    get_platform,
)
from repro.errors import ReproError
from repro.net.network import NetworkParams


def test_registry_contains_all():
    assert set(PLATFORMS) == {"sparcstation-1", "sparcstation-10", "cm5-node"}


def test_get_platform():
    assert get_platform("cm5-node") is CM5_NODE
    with pytest.raises(ReproError, match="unknown platform"):
        get_platform("cray")


def test_seconds_conversion():
    # 12.5 MIPS: 12.5e6 cycles per second.
    assert SPARCSTATION_1.seconds(12.5e6) == pytest.approx(1.0)
    assert SPARCSTATION_10.seconds(1e8) == pytest.approx(1.0)


def test_ss10_faster_than_ss1():
    assert SPARCSTATION_10.seconds(1e6) < SPARCSTATION_1.seconds(1e6)


def test_cm5_message_overhead_two_orders_smaller():
    """The paper's claim: workstation messaging overhead is ~100x worse."""
    ratio = SPARCSTATION_1.net.send_overhead_s / CM5_NODE.net.send_overhead_s
    assert ratio >= 100


def test_strata_static_set_has_no_dynamic_overhead():
    assert CM5_NODE.dynamic_set_cycles == 0
    assert SPARCSTATION_10.dynamic_set_cycles > 0


def test_phish_task_overhead_exceeds_strata():
    assert SPARCSTATION_10.task_overhead_cycles() > CM5_NODE.task_overhead_cycles()


def test_invalid_mips():
    with pytest.raises(ReproError):
        PlatformProfile(
            name="bad", mips=0, net=NetworkParams(), spawn_cycles=1,
            schedule_cycles=1, sync_cycles=1, poll_cycles=1,
            dynamic_set_cycles=0, scheduler="x",
        )


def test_negative_overhead_rejected():
    with pytest.raises(ReproError):
        PlatformProfile(
            name="bad", mips=1, net=NetworkParams(), spawn_cycles=-1,
            schedule_cycles=1, sync_cycles=1, poll_cycles=1,
            dynamic_set_cycles=0, scheduler="x",
        )


def test_derive_overrides():
    derived = SPARCSTATION_1.derive(mips=25.0)
    assert derived.mips == 25.0
    assert derived.spawn_cycles == SPARCSTATION_1.spawn_cycles
    assert SPARCSTATION_1.mips == 12.5  # original untouched
