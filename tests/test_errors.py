"""The exception hierarchy: one base, meaningful subclassing."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
            assert issubclass(obj, errors.ReproError), name


def test_network_sub_hierarchy():
    assert issubclass(errors.AddressError, errors.NetworkError)
    assert issubclass(errors.RpcError, errors.NetworkError)


def test_scheduler_sub_hierarchy():
    assert issubclass(errors.ClosureError, errors.SchedulerError)


def test_catchability():
    with pytest.raises(errors.ReproError):
        raise errors.MachineCrash("ws03")


def test_public_api_reexports_base():
    import repro

    assert repro.ReproError is errors.ReproError
