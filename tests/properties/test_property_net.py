"""Property tests on the network substrate and RPC."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.network import Network, NetworkParams
from repro.net.rpc import RpcServer, rpc_call
from repro.net.socket import Socket
from repro.net.topology import UniformTopology
from repro.sim.core import Simulator


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=65536), min_size=1,
                   max_size=40),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60, deadline=None)
def test_per_link_fifo_without_jitter(sizes, seed):
    """Messages between one host pair arrive in send order whatever
    their sizes (fixed per-link delay model is non-overtaking because
    delivery time is monotone in send time... verify it stays true)."""
    sim = Simulator()
    net = Network(sim, UniformTopology(NetworkParams()), rng=random.Random(seed))
    a = Socket(net, "a", 1)
    b = Socket(net, "b", 2)
    for i, size in enumerate(sizes):
        a.sendto(i, "b", 2, size_bytes=size)
    got = []

    def rx(sim):
        for _ in sizes:
            got.append((yield b.recv()).payload)

    sim.process(rx(sim))
    sim.run()
    # Larger earlier messages may take longer on the wire; the model
    # still must deliver everything exactly once.
    assert sorted(got) == list(range(len(sizes)))


@given(
    loss=st.floats(min_value=0.0, max_value=0.6),
    seed=st.integers(min_value=0, max_value=2**16),
    n_calls=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_rpc_exactly_once_results_under_any_loss(loss, seed, n_calls):
    """Whatever the loss rate and seed, RPC calls return the right
    results in order and handlers run at most once per logical call.

    The retry budget must make all-attempts-lost negligible over the
    whole seed space, not just per run: at loss 0.6 one attempt succeeds
    with probability 0.4^2 = 0.16, so 31 attempts all fail for ~1 in 260
    seeds — and the 2**16-seed strategy *will* find such a seed.  101
    attempts push that below 1e-8 per seed."""
    sim = Simulator()
    net = Network(sim, UniformTopology(NetworkParams(loss_prob=loss)),
                  rng=random.Random(seed))
    srv = RpcServer(net, "s", 9000)
    executed = []
    srv.register("mark", lambda args, msg: (executed.append(args), args * 3)[1])

    def client(sim):
        out = []
        for i in range(n_calls):
            out.append((yield from rpc_call(net, "c", "s", 9000, "mark", i,
                                            timeout_s=0.2, retries=100)))
        return out

    result = sim.run(sim.process(client(sim)))
    assert result == [i * 3 for i in range(n_calls)]
    assert executed == list(range(n_calls))  # at-most-once, in order


@given(
    n_msgs=st.integers(min_value=0, max_value=60),
    loss=st.floats(min_value=0.0, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60, deadline=None)
def test_conservation_sent_equals_delivered_plus_dropped(n_msgs, loss, seed):
    sim = Simulator()
    net = Network(sim, UniformTopology(NetworkParams(loss_prob=loss)),
                  rng=random.Random(seed))
    a = Socket(net, "a", 1)
    Socket(net, "b", 2)
    for i in range(n_msgs):
        a.sendto(i, "b", 2)
    sim.run()
    c = net.counters
    assert c.sent == n_msgs
    assert c.delivered + c.dropped_loss + c.dropped_unroutable == n_msgs
    assert c.dropped_unroutable == 0


@given(
    jitter=st.floats(min_value=0.0, max_value=0.01),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_jitter_reorders_but_never_loses(jitter, seed):
    sim = Simulator()
    params = NetworkParams(jitter_s=jitter)
    net = Network(sim, UniformTopology(params), rng=random.Random(seed))
    a = Socket(net, "a", 1)
    b = Socket(net, "b", 2)
    for i in range(30):
        a.sendto(i, "b", 2)
    sim.run()
    got = []
    while True:
        ok, msg = b.try_recv()
        if not ok:
            break
        got.append(msg.payload)
    assert sorted(got) == list(range(30))
