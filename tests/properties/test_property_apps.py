"""Property tests on the applications themselves."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.pfold import fold_energy, pfold_serial
from repro.apps.ray.tracer import render, render_rows
from repro.apps.ray.scene import default_scene
from repro.baselines.serial import execute_serially
from repro.util.stats import Histogram

hp_sequences = st.text(alphabet="HP", min_size=2, max_size=8)


@given(seq=hp_sequences)
@settings(max_examples=40, deadline=None)
def test_pfold_total_depends_only_on_length(seq):
    """The number of foldings is a geometry property (self-avoiding
    walks), independent of the H/P labelling."""
    run = pfold_serial(seq)
    geometry_only = pfold_serial("P" * len(seq))
    assert run.result.total() == geometry_only.result.total()


@given(seq=hp_sequences)
@settings(max_examples=30, deadline=None)
def test_pfold_energies_bounded(seq):
    """Each H monomer has at most 2 free lattice neighbours mid-chain,
    so total contacts are bounded by the H count (loose bound: 2 per H)."""
    run = pfold_serial(seq)
    h_count = seq.count("H")
    for energy in run.result.counts:
        assert 0 >= energy >= -2 * h_count


@given(seq=hp_sequences)
@settings(max_examples=15, deadline=None)
def test_pfold_parallel_model_matches_plain_recursion(seq):
    assert execute_serially(
        __import__("repro.apps.pfold", fromlist=["pfold_job"]).pfold_job(seq)
    ).result == pfold_serial(seq).result


@given(seq=hp_sequences)
@settings(max_examples=30, deadline=None)
def test_energy_of_reversed_sequence_on_reversed_path(seq):
    """Energy is symmetric under simultaneously reversing chain & path."""
    run = pfold_serial(seq)
    rev = pfold_serial(seq[::-1])
    assert run.result == rev.result  # bijection between folding sets


def test_fold_energy_translation_invariant():
    path = ((0, 0), (1, 0), (1, 1), (0, 1))
    shifted = tuple((x + 7, y - 3) for x, y in path)
    assert fold_energy("HHHH", path) == fold_energy("HHHH", shifted)


@given(split=st.integers(min_value=1, max_value=11))
@settings(max_examples=12, deadline=None)
def test_ray_rows_compose(split):
    """Rendering [0, k) and [k, H) separately equals the full render."""
    scene = default_scene()
    full = render(scene, 12, 12)
    top = render_rows(scene, 12, 12, 0, split)
    bottom = render_rows(scene, 12, 12, split, 12)
    assert {**top, **bottom} == full


@given(entries=st.lists(st.tuples(st.integers(-20, 0), st.integers(1, 50)),
                        max_size=20))
def test_histogram_merge_commutative_associative(entries):
    h1, h2 = Histogram(), Histogram()
    for i, (k, c) in enumerate(entries):
        (h1 if i % 2 else h2).add(k, c)
    a = Histogram()
    a.merge(h1)
    a.merge(h2)
    b = Histogram()
    b.merge(h2)
    b.merge(h1)
    assert a == b
    assert a.total() == sum(c for _, c in entries)
