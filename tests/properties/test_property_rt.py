"""Property tests for the real-thread work-stealing pool."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rt import WorkStealingPool


@given(
    items=st.lists(st.integers(min_value=-10**6, max_value=10**6),
                   min_size=0, max_size=200),
    n_workers=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=15, deadline=None)
def test_map_equals_builtin(items, n_workers):
    with WorkStealingPool(n_workers, seed=0) as pool:
        assert pool.map(lambda x: x * x - 3, items) == [x * x - 3 for x in items]


@given(depth=st.integers(min_value=0, max_value=60),
       n_workers=st.integers(min_value=1, max_value=3))
@settings(max_examples=10, deadline=None)
def test_join_chains_never_deadlock(depth, n_workers):
    def chain(pool, d):
        if d == 0:
            return 0
        return pool.join(pool.spawn(chain, pool, d - 1)) + 1

    with WorkStealingPool(n_workers, seed=1) as pool:
        assert pool.run(chain, pool, depth) == depth


@given(n=st.integers(min_value=0, max_value=18))
@settings(max_examples=10, deadline=None)
def test_fork_join_fib_matches_iterative(n):
    def fib_iter(n):
        a, b = 0, 1
        for _ in range(n):
            a, b = b, a + b
        return a

    def fib(pool, n):
        if n < 6:
            return fib_iter(n)
        x = pool.spawn(fib, pool, n - 1)
        y = fib(pool, n - 2)
        return pool.join(x) + y

    with WorkStealingPool(3, seed=2) as pool:
        assert pool.run(fib, pool, n) == fib_iter(n)
