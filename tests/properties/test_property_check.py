"""Property tests over the checked-run harness.

The strongest statement in this suite: for *any* seed-derived schedule
perturbation — shuffled tie-breaks, jitter, a crash, a reclaim — the
scheduler completes the job with the right answer and no invariant
violation.  Hypothesis hunts the seed space for counterexamples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import APPS, Perturbation, run_checked
from repro.check.fuzzer import AppSpec


def _checked(spec: AppSpec, seed: int, n_workers: int = 4):
    return run_checked(
        spec.make(),
        n_workers=n_workers,
        seed=seed,
        perturbation=Perturbation.generate(seed, n_workers),
        expected=spec.expected,
        worker_config=spec.worker_config,
    )


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_any_fib_schedule_is_clean(seed):
    run = _checked(APPS["fib"], seed)
    assert run.completed, run.report.summary()
    assert run.result == APPS["fib"].expected
    run.require_ok()


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_any_shrink_retirement_schedule_is_clean(seed):
    """Retirement + faults: the hardest protocol corner (departed
    forwarders, migration redo, rejoin of retired workers)."""
    run = _checked(APPS["shrink"], seed)
    assert run.completed, run.report.summary()
    run.require_ok()


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_workers=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=15, deadline=None)
def test_cluster_size_does_not_break_invariants(seed, n_workers):
    run = _checked(APPS["knary"], seed, n_workers=n_workers)
    assert run.completed, run.report.summary()
    assert run.result == APPS["knary"].expected
    run.require_ok()


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_perturbation_generation_total_and_bounded(seed):
    """generate() accepts any seed and always yields a legal schedule:
    crashes never hit the Clearinghouse host, faults stay in-window."""
    pert = Perturbation.generate(seed, 4)
    for t, idx in pert.crashes:
        assert 1 <= idx < 4
        assert 0.012 <= t <= 0.06
    for t, idx in pert.reclaims:
        assert 0 <= idx < 4
        assert 0.012 <= t <= 0.06
    assert 0.0 <= pert.latency_jitter_s <= 2.0e-3
    assert pert == Perturbation.generate(seed, 4)  # stable
