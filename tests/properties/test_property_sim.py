"""Property tests on the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Simulator
from repro.sim.resources import Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=200)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.timeout(d).subscribe(lambda e, d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                       min_size=1, max_size=30))
@settings(max_examples=100)
def test_equal_delays_preserve_creation_order(delays):
    sim = Simulator()
    order = []
    for i, d in enumerate(delays):
        sim.timeout(round(d, 1)).subscribe(lambda e, i=i: order.append(i))
    sim.run()
    # Among equal times, creation order is preserved (stable schedule).
    by_time = {}
    for i in order:
        by_time.setdefault(round(delays[i], 1), []).append(i)
    for same_time in by_time.values():
        assert same_time == sorted(same_time)


@given(items=st.lists(st.integers(), min_size=0, max_size=100),
       capacity=st.integers(min_value=1, max_value=10))
@settings(max_examples=100)
def test_store_fifo_under_any_capacity(items, capacity):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    received = []

    def producer(sim):
        for item in items:
            yield store.put(item)

    def consumer(sim):
        for _ in items:
            received.append((yield store.get()))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert received == items


@given(seed=st.integers(min_value=0, max_value=2**16),
       n=st.integers(min_value=1, max_value=20))
@settings(max_examples=50)
def test_process_tree_joins_deterministically(seed, n):
    import random

    def build(seed):
        rng = random.Random(seed)
        sim = Simulator()
        results = []

        def child(sim, i, d):
            yield sim.timeout(d)
            return i

        def parent(sim):
            procs = [sim.process(child(sim, i, rng.random() * 10)) for i in range(n)]
            for p in procs:
                results.append((yield p))

        sim.process(parent(sim))
        sim.run()
        return results, sim.now

    assert build(seed) == build(seed)
