"""Property tests on the full macro system under random owner churn."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.fib import fib_job, fib_serial
from repro.apps.pfold import pfold_job, pfold_serial
from repro.cluster.owner import AlwaysIdleTrace, RenewalOwnerTrace, ScriptedTrace
from repro.macro import JobManagerConfig, PhishSystem, PhishSystemConfig


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_machines=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=10, deadline=None)
def test_job_completes_exactly_under_random_churn(seed, n_machines):
    """Whatever the churn pattern, a job whose submit host stays idle
    finishes with the exact answer (migration + redo keep it sound)."""

    def traces(rng, host):
        if host == "ws00":
            return AlwaysIdleTrace()
        return RenewalOwnerTrace(rng, busy_mean_s=8.0, idle_mean_s=10.0)

    system = PhishSystem(
        PhishSystemConfig(
            n_workstations=n_machines,
            seed=seed,
            owner_trace=traces,
            jobmanager=JobManagerConfig(busy_poll_s=2.0, no_job_retry_s=2.0),
        )
    )
    handle = system.submit(pfold_job("HPHPPHHPHP", work_scale=60.0),
                           from_host="ws00")
    system.run_until_done(timeout_s=36_000)
    assert handle.result == pfold_serial("HPHPPHHPHP", work_scale=60.0).result


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    busy_first=st.booleans(),
    flips=st.lists(st.floats(min_value=0.5, max_value=5.0), min_size=1,
                   max_size=6),
)
@settings(max_examples=10, deadline=None)
def test_scripted_churn_on_one_machine(seed, busy_first, flips):
    """A single machine flipping busy/idle at arbitrary instants never
    corrupts the result."""
    states = []
    state = "busy" if busy_first else "idle"
    for duration in flips:
        states.append((state, duration))
        state = "idle" if state == "busy" else "busy"
    states.append(("idle", 1e9))

    def traces(rng, host):
        return ScriptedTrace(states) if host == "ws01" else AlwaysIdleTrace()

    system = PhishSystem(
        PhishSystemConfig(n_workstations=3, seed=seed, owner_trace=traces,
                          jobmanager=JobManagerConfig(busy_poll_s=1.0))
    )
    handle = system.submit(fib_job(16), from_host="ws00")
    system.run_until_done(timeout_s=36_000)
    assert handle.result == fib_serial(16)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_two_concurrent_jobs_under_churn(seed):
    def traces(rng, host):
        if host in ("ws00", "ws01"):
            return AlwaysIdleTrace()
        return RenewalOwnerTrace(rng, busy_mean_s=6.0, idle_mean_s=8.0)

    system = PhishSystem(
        PhishSystemConfig(n_workstations=5, seed=seed, owner_trace=traces,
                          jobmanager=JobManagerConfig(busy_poll_s=2.0,
                                                      no_job_retry_s=2.0))
    )
    h1 = system.submit(pfold_job("HPHPPHHP", work_scale=60.0), from_host="ws00")
    h2 = system.submit(fib_job(15), from_host="ws01")
    system.run_until_done(timeout_s=36_000)
    assert h1.result == pfold_serial("HPHPPHHP", work_scale=60.0).result
    assert h2.result == fib_serial(15)
