"""Property tests on the distributed scheduler: correctness is invariant
under participant count, seed, and scheduling accidents."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.fib import fib_job, fib_serial
from repro.apps.pfold import pfold_job, pfold_serial
from repro.micro.worker import WorkerConfig
from repro.phish import run_job

hp_sequences = st.text(alphabet="HP", min_size=2, max_size=8)


@given(seq=hp_sequences, n_workers=st.integers(min_value=1, max_value=5),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_pfold_result_invariant_under_scheduling(seq, n_workers, seed):
    """The histogram equals the serial one for every P and seed."""
    expected = pfold_serial(seq).result
    result = run_job(pfold_job(seq), n_workers=n_workers, seed=seed)
    assert result.result == expected


@given(n=st.integers(min_value=0, max_value=12),
       n_workers=st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_fib_result_invariant(n, n_workers):
    assert run_job(fib_job(n), n_workers=n_workers, seed=3).result == fib_serial(n)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_same_seed_bitwise_reproducible(seed):
    a = run_job(pfold_job("HPHPPHHP"), n_workers=3, seed=seed)
    b = run_job(pfold_job("HPHPPHHP"), n_workers=3, seed=seed)
    assert a.makespan == b.makespan
    assert a.stats.tasks_stolen == b.stats.tasks_stolen
    assert a.stats.messages_sent == b.stats.messages_sent
    assert [w.tasks_executed for w in a.stats.workers] == [
        w.tasks_executed for w in b.stats.workers
    ]


@given(seed=st.integers(min_value=0, max_value=100),
       exec_order=st.sampled_from(["lifo", "fifo"]),
       steal_order=st.sampled_from(["lifo", "fifo"]))
@settings(max_examples=12, deadline=None)
def test_any_order_combination_still_correct(seed, exec_order, steal_order):
    """The ablation orders change performance, never the answer."""
    cfg = WorkerConfig(exec_order=exec_order, steal_order=steal_order)
    expected = pfold_serial("HPHPPH").result
    result = run_job(pfold_job("HPHPPH"), n_workers=3, seed=seed, worker_config=cfg)
    assert result.result == expected


@given(seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=10, deadline=None)
def test_conservation_invariants(seed):
    """Counter sanity: total executed tasks equal the serial task count;
    non-local synchs never exceed total synchs; steals have victims."""
    from repro.baselines.serial import execute_serially

    job = pfold_job("HPHPPHHP")
    serial = execute_serially(job)
    result = run_job(pfold_job("HPHPPHHP"), n_workers=4, seed=seed)
    stats = result.stats
    assert stats.tasks_executed == serial.tasks_executed
    assert stats.non_local_synchs <= stats.synchronizations
    assert stats.tasks_stolen <= sum(w.tasks_stolen_from for w in stats.workers)
    assert stats.max_tasks_in_use >= 1
