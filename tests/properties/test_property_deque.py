"""Property tests: ReadyDeque against a reference list model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.micro.deque import ReadyDeque
from repro.tasks.closure import Closure

#: Operation alphabet: push a fresh closure / pop for execution / steal.
ops = st.lists(
    st.sampled_from(["push", "exec", "steal"]), min_size=0, max_size=200
)


def fresh(i):
    return Closure(("w", i), f"t{i}", [])


@given(ops=ops)
@settings(max_examples=200)
def test_matches_list_model_paper_orders(ops):
    """LIFO exec pops the most recent; FIFO steal pops the oldest."""
    dq = ReadyDeque()
    model = []  # append order == age order (oldest first)
    counter = 0
    for op in ops:
        if op == "push":
            c = fresh(counter)
            counter += 1
            dq.push(c)
            model.append(c)
        elif op == "exec":
            got = dq.pop_exec()
            want = model.pop() if model else None
            assert got is want
        else:
            got = dq.pop_steal()
            want = model.pop(0) if model else None
            assert got is want
    assert dq.peek_all() == list(reversed(model))


@given(ops=ops)
@settings(max_examples=100)
def test_no_loss_no_duplication(ops):
    """Every pushed closure is removed exactly once, whatever the mix."""
    dq = ReadyDeque()
    pushed, removed = [], []
    counter = 0
    for op in ops:
        if op == "push":
            c = fresh(counter)
            counter += 1
            dq.push(c)
            pushed.append(c)
        else:
            got = dq.pop_exec() if op == "exec" else dq.pop_steal()
            if got is not None:
                removed.append(got)
    removed.extend(dq.drain())
    assert sorted(c.cid for c in removed) == sorted(c.cid for c in pushed)


@given(
    ops=ops,
    exec_order=st.sampled_from(["lifo", "fifo"]),
    steal_order=st.sampled_from(["lifo", "fifo"]),
)
@settings(max_examples=100)
def test_all_order_combinations_conserve_items(ops, exec_order, steal_order):
    dq = ReadyDeque(exec_order, steal_order)
    n_pushed = n_removed = 0
    counter = 0
    for op in ops:
        if op == "push":
            dq.push(fresh(counter))
            counter += 1
            n_pushed += 1
        else:
            got = dq.pop_exec() if op == "exec" else dq.pop_steal()
            if got is not None:
                n_removed += 1
    assert n_pushed == n_removed + len(dq)
