"""Tests for the Clearinghouse: registry, updates, I/O, death detection."""

import pytest

from repro.clearinghouse.clearinghouse import Clearinghouse, ClearinghouseConfig
from repro.micro import protocol as P
from repro.net.rpc import rpc_call
from repro.net.socket import Socket


@pytest.fixture
def ch(sim, network):
    return Clearinghouse(sim, network, "chhost", "testjob")


def call(sim, network, src, method, args):
    def proc(sim):
        return (yield from rpc_call(network, src, "chhost", P.CLEARINGHOUSE_PORT,
                                    method, args))

    return sim.run(sim.process(proc(sim)))


class TestRegistration:
    def test_first_registrant_gets_root(self, sim, network, ch):
        reply = call(sim, network, "w1", P.RPC_REGISTER, "w1")
        assert reply["run_root"] is True
        assert reply["peers"] == ["w1"]
        reply2 = call(sim, network, "w2", P.RPC_REGISTER, "w2")
        assert reply2["run_root"] is False
        assert reply2["peers"] == ["w1", "w2"]

    def test_unregister_removes(self, sim, network, ch):
        call(sim, network, "w1", P.RPC_REGISTER, "w1")
        call(sim, network, "w2", P.RPC_REGISTER, "w2")
        call(sim, network, "w1", P.RPC_UNREGISTER, {"name": "w1", "graceful": True})
        assert sorted(ch.workers) == ["w2"]

    def test_update_returns_peers_and_heartbeats(self, sim, network, ch):
        call(sim, network, "w1", P.RPC_REGISTER, "w1")
        t_reg = ch.workers["w1"]
        sim.run(until=sim.now + 10)
        reply = call(sim, network, "w1", P.RPC_UPDATE, "w1")
        assert reply["peers"] == ["w1"]
        assert ch.workers["w1"] > t_reg

    def test_registration_after_done_rejected(self, sim, network, ch):
        ch.done.set("the-result")
        ch.result = "the-result"
        reply = call(sim, network, "late", P.RPC_REGISTER, "late")
        assert reply["done"] is True
        assert reply["result"] == "the-result"
        assert "late" not in ch.workers

    def test_membership_change_broadcasts_peer_update(self, sim, network, ch):
        call(sim, network, "w1", P.RPC_REGISTER, "w1")
        # w1 must receive a peer_update when w2 joins.
        w1_sock = Socket(network, "w1", P.WORKER_PORT)
        call(sim, network, "w2", P.RPC_REGISTER, "w2")
        sim.run(until=sim.now + 1.0)  # bounded: the death detector ticks forever
        updates = []
        while True:
            ok, msg = w1_sock.try_recv()
            if not ok:
                break
            if msg.payload[0] == P.PEER_UPDATE:
                updates.append(msg.payload[1])
        assert ["w1", "w2"] in updates


class TestResult:
    def test_result_sets_done_and_broadcasts(self, sim, network, ch):
        call(sim, network, "w1", P.RPC_REGISTER, "w1")
        w1_sock = Socket(network, "w1", P.WORKER_PORT)
        sender = Socket(network, "w1", 555)
        sender.sendto((P.RESULT, 42, "w1"), "chhost", P.CLEARINGHOUSE_DATA_PORT)
        sim.run()
        assert ch.done.is_set
        assert ch.result == 42
        assert ch.finished_at is not None
        payloads = []
        while True:
            ok, msg = w1_sock.try_recv()
            if not ok:
                break
            payloads.append(msg.payload)
        assert (P.JOB_DONE, 42) in payloads

    def test_second_result_ignored(self, sim, network, ch):
        sender = Socket(network, "x", 555)
        sender.sendto((P.RESULT, 1, "x"), "chhost", P.CLEARINGHOUSE_DATA_PORT)
        sender.sendto((P.RESULT, 2, "x"), "chhost", P.CLEARINGHOUSE_DATA_PORT)
        sim.run()
        assert ch.result == 1


class TestIO:
    def test_io_buffered_until_threshold(self, sim, network):
        cfg = ClearinghouseConfig(io_flush_lines=3)
        ch = Clearinghouse(sim, network, "chhost", "job", cfg)
        for i in range(2):
            call(sim, network, "w1", P.RPC_IO_WRITE, {"worker": "w1", "text": f"l{i}"})
        assert ch.io_output == []  # buffered, not yet flushed
        call(sim, network, "w1", P.RPC_IO_WRITE, {"worker": "w1", "text": "l2"})
        assert len(ch.io_output) == 3
        assert ch.io_flushes == 1

    def test_result_flushes_pending_io(self, sim, network, ch):
        call(sim, network, "w1", P.RPC_IO_WRITE, {"worker": "w1", "text": "tail"})
        sender = Socket(network, "w1", 555)
        sender.sendto((P.RESULT, 0, "w1"), "chhost", P.CLEARINGHOUSE_DATA_PORT)
        sim.run()
        assert [t for _, _, t in ch.io_output] == ["tail"]


class TestDeathDetection:
    def test_silent_worker_declared_dead(self, sim, network):
        cfg = ClearinghouseConfig(death_timeout_s=5.0, check_interval_s=1.0)
        ch = Clearinghouse(sim, network, "chhost", "job", cfg)
        call(sim, network, "w1", P.RPC_REGISTER, "w1")
        call(sim, network, "w2", P.RPC_REGISTER, "w2")
        w2_sock = Socket(network, "w2", P.WORKER_PORT)

        # w2 heartbeats; w1 goes silent.
        def heartbeater(sim):
            for _ in range(12):
                yield sim.timeout(1.0)
                yield from rpc_call(network, "w2", "chhost", P.CLEARINGHOUSE_PORT,
                                    P.RPC_UPDATE, "w2")

        sim.process(heartbeater(sim))
        sim.run(until=12.0)
        assert "w1" not in ch.workers
        assert "w2" in ch.workers
        died = []
        while True:
            ok, msg = w2_sock.try_recv()
            if not ok:
                break
            if msg.payload[0] == P.WORKER_DIED:
                died.append(msg.payload[1])
        assert died == ["w1"]

    def test_root_reassigned_on_owner_death(self, sim, network):
        cfg = ClearinghouseConfig(death_timeout_s=5.0, check_interval_s=1.0)
        ch = Clearinghouse(sim, network, "chhost", "job", cfg)
        reply = call(sim, network, "w1", P.RPC_REGISTER, "w1")
        assert reply["run_root"]
        call(sim, network, "w2", P.RPC_REGISTER, "w2")
        w2_sock = Socket(network, "w2", P.WORKER_PORT)

        def heartbeater(sim):
            for _ in range(12):
                yield sim.timeout(1.0)
                yield from rpc_call(network, "w2", "chhost", P.CLEARINGHOUSE_PORT,
                                    P.RPC_UPDATE, "w2")

        sim.process(heartbeater(sim))
        sim.run(until=12.0)
        assert ch.root_owner == "w2"
        payloads = []
        while True:
            ok, msg = w2_sock.try_recv()
            if not ok:
                break
            payloads.append(msg.payload[0])
        assert P.RUN_ROOT in payloads

    def test_detector_stops_after_done(self, sim, network):
        cfg = ClearinghouseConfig(death_timeout_s=2.0, check_interval_s=1.0)
        ch = Clearinghouse(sim, network, "chhost", "job", cfg)
        call(sim, network, "w1", P.RPC_REGISTER, "w1")
        ch.done.set(None)
        sim.run(until=20.0)
        # No death declared after completion.
        assert "w1" in ch.workers


def test_stop_releases_ports(sim, network, ch):
    ch.stop()
    sim.run()
    Clearinghouse(sim, network, "chhost", "again")  # rebinds cleanly
