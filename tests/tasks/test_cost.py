"""Tests for the serial cost model."""

import pytest

from repro.cluster.platform import SPARCSTATION_1, SPARCSTATION_10
from repro.tasks.cost import CALL_CYCLES, serial_time_seconds


def test_basic_formula():
    t = serial_time_seconds(1000.0, 10, SPARCSTATION_1)
    assert t == pytest.approx((1000.0 + 10 * CALL_CYCLES) / 12.5e6)


def test_faster_machine_lower_time():
    assert serial_time_seconds(1e6, 100, SPARCSTATION_10) < serial_time_seconds(
        1e6, 100, SPARCSTATION_1
    )


def test_call_overhead_below_parallel_overhead():
    """The whole point of Table 1: a procedure call is cheaper than a
    spawned/scheduled/synchronised task."""
    assert CALL_CYCLES < SPARCSTATION_1.task_overhead_cycles()


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        serial_time_seconds(-1, 0, SPARCSTATION_1)
    with pytest.raises(ValueError):
        serial_time_seconds(0, -1, SPARCSTATION_1)
