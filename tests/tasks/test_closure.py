"""Tests for closures, continuations, and join counters."""

import pytest

from repro.errors import ClosureError
from repro.tasks.closure import CLEARINGHOUSE_TARGET, Closure, Continuation


def make(missing=None, args=(1, 2, 3)):
    return Closure(("w0", 1), "fn", list(args), missing_slots=missing)


class TestClosure:
    def test_fully_applied_is_ready(self):
        c = make()
        assert c.is_ready
        assert c.join_counter == 0

    def test_missing_slots_counted(self):
        c = make(missing=[1, 2])
        assert c.join_counter == 2
        assert not c.is_ready

    def test_fill_decrements_and_enables(self):
        c = make(missing=[1, 2])
        assert c.fill(1, "x") is False
        assert c.fill(2, "y") is True
        assert c.is_ready
        assert c.args == [1, "x", "y"]

    def test_double_fill_raises(self):
        c = make(missing=[1])
        c.fill(1, "x")
        with pytest.raises(ClosureError):
            c.fill(1, "again")

    def test_fill_present_slot_raises(self):
        c = make(missing=[1])
        with pytest.raises(ClosureError):
            c.fill(0, "nope")

    def test_slot_filled_bounds(self):
        c = make()
        with pytest.raises(ClosureError):
            c.slot_filled(99)

    def test_missing_slot_out_of_range(self):
        with pytest.raises(ClosureError):
            make(missing=[5])

    def test_call_args_requires_ready(self):
        c = make(missing=[0])
        with pytest.raises(ClosureError):
            c.call_args()

    def test_call_args_returns_values(self):
        assert make().call_args() == [1, 2, 3]

    def test_redo_copy_new_identity_same_content(self):
        c = make()
        clone = c.redo_copy(("w1", 9))
        assert clone.cid == ("w1", 9)
        assert clone.args == c.args
        assert clone.thread_name == c.thread_name
        assert clone.depth == c.depth

    def test_redo_copy_requires_ready(self):
        c = make(missing=[0])
        with pytest.raises(ClosureError):
            c.redo_copy(("w1", 9))

    def test_repr_shows_holes(self):
        c = make(missing=[1])
        assert "_" in repr(c)


class TestContinuation:
    def test_equality_and_hash(self):
        a = Continuation(("w", 1), 2)
        b = Continuation(("w", 1), 2)
        c = Continuation(("w", 1), 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "other"

    def test_clearinghouse_target_is_reserved(self):
        k = Continuation(CLEARINGHOUSE_TARGET, 0)
        assert k.target[0] == "@clearinghouse"
