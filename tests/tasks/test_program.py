"""Tests for thread programs, registration, and the Frame primitives."""

import pytest

from repro.baselines.serial import execute_serially
from repro.cluster.platform import SPARCSTATION_1
from repro.errors import SchedulerError
from repro.tasks.program import JobProgram, ThreadProgram


class TestRegistration:
    def test_registers_name_and_arity(self):
        prog = ThreadProgram("p")

        @prog.thread
        def t(frame, k, x):
            pass

        assert prog.resolve("t") is t
        assert t.arity == 2

    def test_duplicate_name_rejected(self):
        prog = ThreadProgram("p")

        @prog.thread
        def t(frame):
            pass

        def duplicate(frame):
            pass

        duplicate.__name__ = "t"
        with pytest.raises(SchedulerError, match="already registered"):
            prog.thread(duplicate)

    def test_needs_frame_parameter(self):
        prog = ThreadProgram("p")

        def nothing():
            pass

        with pytest.raises(SchedulerError):
            prog.thread(nothing)

    def test_keyword_only_rejected(self):
        prog = ThreadProgram("p")

        def bad(frame, *, k):
            pass

        with pytest.raises(SchedulerError):
            prog.thread(bad)

    def test_variadic_requires_arity(self):
        prog = ThreadProgram("p")

        def join(frame, k, *xs):
            pass

        with pytest.raises(SchedulerError):
            prog.thread(join)

    def test_variadic_with_arity(self):
        prog = ThreadProgram("p")

        @prog.thread(arity=5)
        def join(frame, k, *xs):
            pass

        assert join.arity == 5

    def test_arity_below_fixed_params_rejected(self):
        prog = ThreadProgram("p")

        def join(frame, a, b, *xs):
            pass

        with pytest.raises(SchedulerError):
            prog.thread(join, arity=0)

    def test_explicit_arity_must_match_signature(self):
        prog = ThreadProgram("p")

        def t(frame, k):
            pass

        with pytest.raises(SchedulerError):
            prog.thread(t, arity=3)

    def test_resolve_unknown_raises(self):
        prog = ThreadProgram("p")
        with pytest.raises(SchedulerError):
            prog.resolve("ghost")


class TestJobProgram:
    def test_root_arity_checked(self):
        prog = ThreadProgram("p")

        @prog.thread
        def root(frame, k, a, b):
            pass

        JobProgram(prog, root, (1, 2))
        with pytest.raises(SchedulerError):
            JobProgram(prog, root, (1,))

    def test_default_name(self):
        prog = ThreadProgram("myprog")

        @prog.thread
        def root(frame, k):
            pass

        assert JobProgram(prog, root).name == "myprog"


class TestFramePrimitives:
    """Exercised through the serial reference executor."""

    def build(self):
        prog = ThreadProgram("p")

        @prog.thread
        def leaf(frame, k, x):
            frame.work(10)
            frame.send(k, x * 2)

        @prog.thread
        def join2(frame, k, a, b):
            frame.send(k, a + b)

        @prog.thread
        def root(frame, k):
            succ = frame.successor(join2, k)
            frame.spawn(leaf, succ.cont(1), 10)
            frame.spawn(leaf, succ.cont(2), 100)

        return prog, root

    def test_spawn_successor_send_pipeline(self):
        prog, root = self.build()
        result = execute_serially(JobProgram(prog, root))
        assert result.result == 220
        assert result.tasks_executed == 4  # root + 2 leaves + join

    def test_spawn_arity_checked(self):
        prog = ThreadProgram("p")

        @prog.thread
        def leaf(frame, k):
            frame.send(k, 1)

        @prog.thread
        def root(frame, k):
            frame.spawn(leaf, k, "extra")  # wrong arity

        with pytest.raises(SchedulerError, match="expected 1 args"):
            execute_serially(JobProgram(prog, root))

    def test_successor_with_no_missing_slots_rejected(self):
        prog = ThreadProgram("p")

        @prog.thread
        def full(frame, k):
            pass

        @prog.thread
        def root(frame, k):
            frame.successor(full, k)  # all slots given

        with pytest.raises(SchedulerError, match="no missing slots"):
            execute_serially(JobProgram(prog, root))

    def test_successor_too_many_given(self):
        prog = ThreadProgram("p")

        @prog.thread
        def one(frame, k):
            pass

        @prog.thread
        def root(frame, k):
            frame.successor(one, k, "extra", "more")

        with pytest.raises(SchedulerError, match="exceed arity"):
            execute_serially(JobProgram(prog, root))

    def test_cont_on_filled_slot_rejected(self):
        prog = ThreadProgram("p")

        @prog.thread
        def join2(frame, k, a, b):
            pass

        @prog.thread
        def root(frame, k):
            succ = frame.successor(join2, k)
            succ.cont(0)  # slot 0 already holds k

        from repro.errors import ClosureError

        with pytest.raises(ClosureError):
            execute_serially(JobProgram(prog, root))

    def test_negative_work_rejected(self):
        prog = ThreadProgram("p")

        @prog.thread
        def root(frame, k):
            frame.work(-5)

        with pytest.raises(SchedulerError, match="negative work"):
            execute_serially(JobProgram(prog, root))

    def test_send_requires_continuation(self):
        prog = ThreadProgram("p")

        @prog.thread
        def root(frame, k):
            frame.send("not-a-continuation", 1)

        with pytest.raises(SchedulerError):
            execute_serially(JobProgram(prog, root))

    def test_frame_charges_overheads(self):
        prog = ThreadProgram("p")

        @prog.thread
        def root(frame, k):
            frame.work(100)
            frame.send(k, None)

        execution = execute_serially(JobProgram(prog, root), SPARCSTATION_1)
        profile = SPARCSTATION_1
        expected = (
            100
            + profile.schedule_cycles
            + profile.poll_cycles
            + profile.dynamic_set_cycles
            + profile.sync_cycles
        )
        assert execution.total_cycles == pytest.approx(expected)
