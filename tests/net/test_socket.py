"""Tests for the Socket API."""

import pytest

from repro.errors import NetworkError
from repro.net.socket import Socket


def test_addr(network):
    s = Socket(network, "h", 42)
    assert s.addr == ("h", 42)


def test_try_recv_nonblocking(sim, network):
    a = Socket(network, "a", 1)
    b = Socket(network, "b", 2)
    assert b.try_recv() == (False, None)
    a.sendto("m", "b", 2)
    sim.run()
    ok, msg = b.try_recv()
    assert ok and msg.payload == "m"


def test_pending_count(sim, network):
    a = Socket(network, "a", 1)
    b = Socket(network, "b", 2)
    for i in range(3):
        a.sendto(i, "b", 2)
    sim.run()
    assert b.pending == 3


def test_closed_socket_raises(network):
    s = Socket(network, "a", 1)
    s.close()
    with pytest.raises(NetworkError):
        s.sendto("x", "b", 2)
    with pytest.raises(NetworkError):
        s.recv()
    with pytest.raises(NetworkError):
        s.try_recv()


def test_close_idempotent(network):
    s = Socket(network, "a", 1)
    s.close()
    s.close()


def test_message_to_closed_socket_dropped(sim, network):
    a = Socket(network, "a", 1)
    b = Socket(network, "b", 2)
    b.close()
    a.sendto("x", "b", 2)
    sim.run()
    assert network.counters.dropped_unroutable == 1


def test_cancel_recv(sim, network):
    a = Socket(network, "a", 1)
    b = Socket(network, "b", 2)
    ev = b.recv()
    assert b.cancel_recv(ev)
    a.sendto("x", "b", 2)
    sim.run()
    # The cancelled recv must not have consumed the message.
    ok, msg = b.try_recv()
    assert ok and msg.payload == "x"


def test_reply_addr(sim, network):
    a = Socket(network, "a", 7)
    b = Socket(network, "b", 8)
    a.sendto("ping", "b", 8)

    def responder(sim):
        msg = yield b.recv()
        return msg.reply_addr()

    assert sim.run(sim.process(responder(sim))) == ("a", 7)
