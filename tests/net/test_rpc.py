"""Tests for split-phase RPC: request/reply, retransmission, errors."""

import pytest

from repro.errors import RpcError
from repro.net.rpc import RpcClient, RpcServer, rpc_call


@pytest.fixture
def server(network):
    srv = RpcServer(network, "server", 9000, name="test")
    srv.register("echo", lambda args, msg: args)
    srv.register("add", lambda args, msg: args[0] + args[1])
    srv.register("whoami", lambda args, msg: msg.src)
    srv.register("boom", lambda args, msg: 1 / 0)
    return srv


def call(sim, network, method, args=None, **kw):
    def proc(sim):
        return (yield from rpc_call(network, "client", "server", 9000, method, args, **kw))

    return sim.run(sim.process(proc(sim)))


def test_echo(sim, network, server):
    assert call(sim, network, "echo", {"a": 1}) == {"a": 1}


def test_add(sim, network, server):
    assert call(sim, network, "add", (2, 3)) == 5


def test_handler_sees_caller(sim, network, server):
    assert call(sim, network, "whoami") == "client"


def test_unknown_method(sim, network, server):
    with pytest.raises(RpcError, match="no such method"):
        call(sim, network, "missing")


def test_handler_exception_becomes_rpc_error(sim, network, server):
    with pytest.raises(RpcError, match="ZeroDivisionError"):
        call(sim, network, "boom")


def test_no_server_times_out(sim, network):
    with pytest.raises(RpcError, match="no reply"):
        call(sim, network, "echo", timeout_s=0.1, retries=1)


def test_retransmission_survives_loss(sim, lossy_network):
    srv = RpcServer(lossy_network, "server", 9000)
    calls = []

    def handler(args, msg):
        calls.append(args)
        return args * 2

    srv.register("double", handler)

    def proc(sim):
        results = []
        for i in range(10):
            r = yield from rpc_call(
                lossy_network, "client", "server", 9000, "double", i, timeout_s=0.2
            )
            results.append(r)
        return results

    assert sim.run(sim.process(proc(sim))) == [i * 2 for i in range(10)]


def test_at_most_once_execution_under_retransmission(sim, lossy_network):
    """Handlers must not re-execute on duplicate (retransmitted) requests."""
    srv = RpcServer(lossy_network, "server", 9000)
    executions = {"n": 0}

    def handler(args, msg):
        executions["n"] += 1
        return executions["n"]

    srv.register("count", handler)

    def proc(sim):
        out = []
        for _ in range(20):
            out.append((yield from rpc_call(
                lossy_network, "client", "server", 9000, "count", None, timeout_s=0.2
            )))
        return out

    results = sim.run(sim.process(proc(sim)))
    # Each logical call executed exactly once, in order.
    assert results == list(range(1, 21))


def test_duplicate_registration_raises(network):
    srv = RpcServer(network, "server", 9000)
    srv.register("m", lambda a, m: a)
    with pytest.raises(RpcError):
        srv.register("m", lambda a, m: a)


def test_server_stop_releases_port(sim, network):
    srv = RpcServer(network, "server", 9000)
    srv.stop()
    sim.run()
    RpcServer(network, "server", 9000)  # rebind works


def test_concurrent_clients(sim, network, server):
    results = []

    def proc(sim, name, x):
        r = yield from rpc_call(network, name, "server", 9000, "add", (x, 1))
        results.append((name, r))

    for i in range(5):
        sim.process(proc(sim, f"c{i}", i))
    sim.run()
    assert sorted(results) == [(f"c{i}", i + 1) for i in range(5)]


def test_rpc_client_wrapper(sim, network, server):
    client = RpcClient(network, "client", "server", 9000)

    def proc(sim):
        return (yield from client.call("add", (10, 20)))

    assert sim.run(sim.process(proc(sim))) == 30


def test_requests_served_counter(sim, network, server):
    call(sim, network, "echo", 1)
    call(sim, network, "echo", 2)
    assert server.requests_served == 2
