"""Tests for network topologies (static and time-varying)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.net.network import NetworkParams
from repro.net.topology import (
    CongestionSpike,
    DynamicTopology,
    PartitionWindow,
    SegmentedTopology,
    UniformTopology,
)


def test_uniform_same_params_everywhere():
    p = NetworkParams()
    topo = UniformTopology(p)
    assert topo.params_for("a", "b") is p
    assert topo.params_for("x", "y") is p
    assert topo.segment_of("anything") == "lan0"


def test_segmented_intra_vs_inter():
    intra = NetworkParams(wire_latency_s=0.001)
    inter = NetworkParams(wire_latency_s=0.1)
    topo = SegmentedTopology({"a": "s1", "b": "s1", "c": "s2"}, intra, inter)
    assert topo.params_for("a", "b") is intra
    assert topo.params_for("a", "c") is inter
    assert topo.params_for("c", "b") is inter


def test_segmented_unknown_host_raises():
    topo = SegmentedTopology({}, NetworkParams(), NetworkParams())
    with pytest.raises(NetworkError):
        topo.params_for("ghost", "ghost2")


def test_segmented_add_host():
    topo = SegmentedTopology({"a": "s1"}, NetworkParams(), NetworkParams())
    topo.add_host("b", "s1")
    assert topo.segment_of("b") == "s1"
    assert topo.params_for("a", "b") is topo.intra


def test_network_requires_topology(sim):
    from repro.net.network import Network

    with pytest.raises(NetworkError):
        Network(sim, NetworkParams())  # params is not a topology


# ---------------------------------------------------------------------------
# Property tests: NetworkParams.transfer_time and SegmentedTopology
# ---------------------------------------------------------------------------

latencies = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
bandwidths = st.floats(min_value=1.0, max_value=1e9, allow_nan=False)
sizes = st.integers(min_value=0, max_value=10_000_000)


@given(lat=latencies, bw=bandwidths, small=sizes, extra=sizes)
@settings(max_examples=60, deadline=None)
def test_transfer_time_monotone_in_size_and_latency_floored(lat, bw, small, extra):
    """More bytes never travel faster, and nothing beats the wire
    latency itself (size 0 pays exactly the latency)."""
    p = NetworkParams(wire_latency_s=lat, bandwidth_bytes_per_s=bw)
    assert p.transfer_time(small) <= p.transfer_time(small + extra)
    assert p.transfer_time(small) >= lat
    assert p.transfer_time(0) == pytest.approx(lat)


@given(lat=latencies, bw=bandwidths, size=sizes)
@settings(max_examples=60, deadline=None)
def test_transfer_time_is_latency_plus_serialisation(lat, bw, size):
    p = NetworkParams(wire_latency_s=lat, bandwidth_bytes_per_s=bw)
    assert p.transfer_time(size) == pytest.approx(lat + size / bw)


@given(bw=st.floats(max_value=0.0, allow_nan=False))
@settings(max_examples=20, deadline=None)
def test_params_reject_non_positive_bandwidth(bw):
    with pytest.raises(NetworkError):
        NetworkParams(bandwidth_bytes_per_s=bw)


@given(lat=st.floats(max_value=-1e-12, allow_nan=False))
@settings(max_examples=20, deadline=None)
def test_params_reject_negative_latency(lat):
    with pytest.raises(NetworkError):
        NetworkParams(wire_latency_s=lat)


hostnames = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    min_size=1, max_size=8, unique=True,
)


@given(hosts=hostnames, segbits=st.lists(st.booleans(), min_size=8, max_size=8))
@settings(max_examples=60, deadline=None)
def test_segmented_pays_inter_iff_segments_differ(hosts, segbits):
    """For every pair: intra iff both hosts share a segment, and the
    choice is symmetric in (src, dst)."""
    intra, inter = NetworkParams(), NetworkParams(wire_latency_s=0.5)
    seg = {h: ("s1" if bit else "s2") for h, bit in zip(hosts, segbits)}
    topo = SegmentedTopology(seg, intra, inter)
    for a in hosts:
        for b in hosts:
            expected = intra if seg[a] == seg[b] else inter
            assert topo.params_for(a, b) is expected
            assert topo.params_for(b, a) is topo.params_for(a, b)


# ---------------------------------------------------------------------------
# Time-varying dynamics: spikes, partitions, stragglers
# ---------------------------------------------------------------------------


def test_spike_validation():
    with pytest.raises(NetworkError):
        CongestionSpike(start_s=1.0, end_s=1.0, factor=2.0)  # empty window
    with pytest.raises(NetworkError):
        CongestionSpike(start_s=0.0, end_s=1.0, factor=0.5)  # "acceleration"


def test_partition_validation():
    with pytest.raises(NetworkError):
        PartitionWindow(start_s=2.0, end_s=1.0, island=frozenset({"a"}))
    with pytest.raises(NetworkError):
        PartitionWindow(start_s=0.0, end_s=1.0, island=frozenset())


@given(
    island_bits=st.lists(st.booleans(), min_size=2, max_size=6),
)
@settings(max_examples=40, deadline=None)
def test_partition_severs_exactly_the_cut(island_bits):
    """A link is severed iff exactly one endpoint is inside the island
    (the XOR property), never for traffic wholly on either side."""
    hosts = [f"h{i}" for i in range(len(island_bits))]
    island = frozenset(h for h, bit in zip(hosts, island_bits) if bit)
    if not island:
        island = frozenset({hosts[0]})
    window = PartitionWindow(start_s=0.0, end_s=1.0, island=island)
    for a in hosts:
        for b in hosts:
            assert window.severs(a, b) == ((a in island) != (b in island))


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_dynamic_spike_scales_latency_only_inside_window():
    clock = _Clock()
    base = UniformTopology(NetworkParams(wire_latency_s=1e-3, jitter_s=1e-4))
    topo = DynamicTopology(
        base, clock, spikes=[CongestionSpike(1.0, 2.0, factor=10.0)]
    )
    before = topo.params_for("a", "b")
    assert before is base.params
    clock.now = 1.5
    during = topo.params_for("a", "b")
    assert during.wire_latency_s == pytest.approx(1e-2)
    assert during.jitter_s == pytest.approx(1e-3)
    assert during.bandwidth_bytes_per_s == base.params.bandwidth_bytes_per_s
    clock.now = 2.0  # window is half-open: [start, end)
    assert topo.params_for("a", "b") is base.params


def test_dynamic_overlapping_spikes_compound_and_cache_hits():
    clock = _Clock()
    base = UniformTopology(NetworkParams(wire_latency_s=1e-3))
    topo = DynamicTopology(base, clock, spikes=[
        CongestionSpike(0.0, 2.0, factor=3.0),
        CongestionSpike(1.0, 3.0, factor=2.0),
    ])
    clock.now = 1.5
    both = topo.params_for("a", "b")
    assert both.wire_latency_s == pytest.approx(6e-3)
    assert topo.params_for("a", "b") is both  # scaled params are cached


def test_dynamic_segment_scoped_spike_hits_links_touching_the_segment():
    clock = _Clock()
    seg = SegmentedTopology(
        {"a": "s1", "b": "s1", "c": "s2"},
        intra=NetworkParams(wire_latency_s=1e-3),
        inter=NetworkParams(wire_latency_s=5e-3),
    )
    topo = DynamicTopology(
        seg, clock, spikes=[CongestionSpike(0.0, 1.0, factor=4.0, segment="s2")]
    )
    assert topo.params_for("a", "b").wire_latency_s == pytest.approx(1e-3)
    assert topo.params_for("a", "c").wire_latency_s == pytest.approx(2e-2)
    assert topo.params_for("c", "a").wire_latency_s == pytest.approx(2e-2)


def test_dynamic_stragglers_compound_across_both_endpoints():
    clock = _Clock()
    base = UniformTopology(NetworkParams(wire_latency_s=1e-3))
    topo = DynamicTopology(base, clock, stragglers={"slow": 3.0, "worse": 5.0})
    assert topo.params_for("fast1", "fast2") is base.params
    assert topo.params_for("slow", "fast1").wire_latency_s == pytest.approx(3e-3)
    assert topo.params_for("slow", "worse").wire_latency_s == pytest.approx(15e-3)
    with pytest.raises(NetworkError):
        DynamicTopology(base, clock, stragglers={"x": 0.5})


def test_dynamic_partition_reachability_window():
    clock = _Clock()
    base = UniformTopology(NetworkParams())
    topo = DynamicTopology(base, clock, partitions=[
        PartitionWindow(1.0, 2.0, island=frozenset({"a"}))
    ])
    assert topo.is_reachable("a", "b")
    clock.now = 1.5
    assert not topo.is_reachable("a", "b")
    assert not topo.is_reachable("b", "a")
    assert topo.is_reachable("b", "c")  # both outside the island
    clock.now = 2.0  # healed
    assert topo.is_reachable("a", "b")


def test_static_topologies_do_not_override_is_reachable():
    """The network's hot path skips the reachability call for static
    topologies; that optimisation relies on this class invariant."""
    from repro.net.topology import Topology

    for cls in (UniformTopology, SegmentedTopology):
        assert cls.is_reachable is Topology.is_reachable
    assert DynamicTopology.is_reachable is not Topology.is_reachable
