"""Tests for network topologies."""

import pytest

from repro.errors import NetworkError
from repro.net.network import NetworkParams
from repro.net.topology import SegmentedTopology, UniformTopology


def test_uniform_same_params_everywhere():
    p = NetworkParams()
    topo = UniformTopology(p)
    assert topo.params_for("a", "b") is p
    assert topo.params_for("x", "y") is p
    assert topo.segment_of("anything") == "lan0"


def test_segmented_intra_vs_inter():
    intra = NetworkParams(wire_latency_s=0.001)
    inter = NetworkParams(wire_latency_s=0.1)
    topo = SegmentedTopology({"a": "s1", "b": "s1", "c": "s2"}, intra, inter)
    assert topo.params_for("a", "b") is intra
    assert topo.params_for("a", "c") is inter
    assert topo.params_for("c", "b") is inter


def test_segmented_unknown_host_raises():
    topo = SegmentedTopology({}, NetworkParams(), NetworkParams())
    with pytest.raises(NetworkError):
        topo.params_for("ghost", "ghost2")


def test_segmented_add_host():
    topo = SegmentedTopology({"a": "s1"}, NetworkParams(), NetworkParams())
    topo.add_host("b", "s1")
    assert topo.segment_of("b") == "s1"
    assert topo.params_for("a", "b") is topo.intra


def test_network_requires_topology(sim):
    from repro.net.network import Network

    with pytest.raises(NetworkError):
        Network(sim, NetworkParams())  # params is not a topology
