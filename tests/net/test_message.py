"""Tests for the Message record."""

from repro.net.message import DEFAULT_SIZE_BYTES, Message


def test_defaults():
    m = Message("a", 1, "b", 2, payload="x")
    assert m.size_bytes == DEFAULT_SIZE_BYTES
    assert m.msg_id == -1


def test_reply_addr():
    m = Message("alpha", 7777, "beta", 80, payload=None)
    assert m.reply_addr() == ("alpha", 7777)


def test_equality_ignores_bookkeeping_fields():
    a = Message("a", 1, "b", 2, payload="x", msg_id=1, sent_at=0.5)
    b = Message("a", 1, "b", 2, payload="x", msg_id=99, sent_at=7.0)
    assert a == b


def test_slots_reject_unknown_attributes():
    # Message is a slotted hot-path record: no __dict__, so typos and
    # ad-hoc attribute stowage fail loudly instead of silently growing
    # every datagram.
    m = Message("a", 1, "b", 2, payload=None)
    try:
        m.extra = 1  # type: ignore[attr-defined]
        raised = False
    except AttributeError:
        raised = True
    assert raised


def test_inequality_on_addressing_and_payload():
    base = Message("a", 1, "b", 2, payload="x")
    assert base != Message("a", 1, "b", 2, payload="y")
    assert base != Message("a", 1, "c", 2, payload="x")
    assert base != "not a message"
