"""Tests for the Message record."""

from repro.net.message import DEFAULT_SIZE_BYTES, Message


def test_defaults():
    m = Message("a", 1, "b", 2, payload="x")
    assert m.size_bytes == DEFAULT_SIZE_BYTES
    assert m.msg_id == -1


def test_reply_addr():
    m = Message("alpha", 7777, "beta", 80, payload=None)
    assert m.reply_addr() == ("alpha", 7777)


def test_equality_ignores_bookkeeping_fields():
    a = Message("a", 1, "b", 2, payload="x", msg_id=1, sent_at=0.5)
    b = Message("a", 1, "b", 2, payload="x", msg_id=99, sent_at=7.0)
    assert a == b


def test_frozen():
    import dataclasses

    m = Message("a", 1, "b", 2, payload=None)
    try:
        m.src = "c"  # type: ignore[misc]
        raised = False
    except dataclasses.FrozenInstanceError:
        raised = True
    assert raised
