"""Tests for the network substrate: delivery, cost model, loss, loopback."""

import random

import pytest

from repro.errors import AddressError, NetworkError
from repro.net.network import Network, NetworkParams
from repro.net.socket import Socket
from repro.net.topology import UniformTopology


def make_net(sim, **params):
    return Network(sim, UniformTopology(NetworkParams(**params)), rng=random.Random(0))


class TestParams:
    def test_defaults_valid(self):
        NetworkParams()

    def test_invalid_bandwidth(self):
        with pytest.raises(NetworkError):
            NetworkParams(bandwidth_bytes_per_s=0)

    def test_invalid_loss(self):
        with pytest.raises(NetworkError):
            NetworkParams(loss_prob=1.0)

    def test_negative_overhead(self):
        with pytest.raises(NetworkError):
            NetworkParams(send_overhead_s=-1)

    def test_transfer_time(self):
        p = NetworkParams(wire_latency_s=0.001, bandwidth_bytes_per_s=1000)
        assert p.transfer_time(500) == pytest.approx(0.001 + 0.5)


class TestDelivery:
    def test_point_to_point(self, sim):
        net = make_net(sim)
        a = Socket(net, "alpha", 100)
        b = Socket(net, "beta", 200)

        def sender(sim):
            yield a.sendto("hi", "beta", 200)

        def receiver(sim):
            msg = yield b.recv()
            return (msg.payload, msg.src, msg.src_port)

        sim.process(sender(sim))
        p = sim.process(receiver(sim))
        assert sim.run(p) == ("hi", "alpha", 100)

    def test_delivery_time_includes_all_terms(self, sim):
        net = make_net(
            sim,
            send_overhead_s=0.001,
            recv_overhead_s=0.002,
            wire_latency_s=0.01,
            bandwidth_bytes_per_s=1000.0,
        )
        a = Socket(net, "a", 1)
        b = Socket(net, "b", 2)
        a.sendto("x", "b", 2, size_bytes=100)

        def receiver(sim):
            yield b.recv()
            return sim.now

        # send overhead + latency + 100/1000 s transfer
        assert sim.run(sim.process(receiver(sim))) == pytest.approx(0.001 + 0.01 + 0.1)

    def test_unbound_port_drops(self, sim):
        net = make_net(sim)
        a = Socket(net, "a", 1)
        a.sendto("x", "b", 99)
        sim.run()
        assert net.counters.dropped_unroutable == 1
        assert net.counters.delivered == 0

    def test_message_ordering_preserved_without_jitter(self, sim):
        net = make_net(sim)
        a = Socket(net, "a", 1)
        b = Socket(net, "b", 2)
        for i in range(5):
            a.sendto(i, "b", 2)
        got = []

        def receiver(sim):
            for _ in range(5):
                got.append((yield b.recv()).payload)

        sim.process(receiver(sim))
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_counters(self, sim):
        net = make_net(sim)
        a = Socket(net, "a", 1)
        Socket(net, "b", 2)
        a.sendto("x", "b", 2, size_bytes=128)
        a.sendto("y", "b", 2, size_bytes=64)
        sim.run()
        assert net.counters.sent == 2
        assert net.counters.delivered == 2
        assert net.counters.bytes_sent == 192
        assert net.counters.messages_sent("a") == 2
        assert net.counters.messages_sent("b") == 0
        assert net.counters.received_by_host["b"] == 2


class TestLoss:
    def test_loss_drops_fraction(self, sim):
        net = make_net(sim, loss_prob=0.5)
        a = Socket(net, "a", 1)
        Socket(net, "b", 2)
        for i in range(400):
            a.sendto(i, "b", 2)
        sim.run()
        assert net.counters.dropped_loss > 100
        assert net.counters.delivered > 100
        assert net.counters.dropped_loss + net.counters.delivered == 400

    def test_lossless_by_default(self, sim):
        net = make_net(sim)
        a = Socket(net, "a", 1)
        Socket(net, "b", 2)
        for i in range(50):
            a.sendto(i, "b", 2)
        sim.run()
        assert net.counters.dropped_loss == 0


class TestLoopback:
    def test_same_host_not_counted_as_sent(self, sim):
        net = make_net(sim)
        a = Socket(net, "a", 1)
        b = Socket(net, "a", 2)
        a.sendto("local", "a", 2)

        def receiver(sim):
            msg = yield b.recv()
            return msg.payload

        assert sim.run(sim.process(receiver(sim))) == "local"
        assert net.counters.sent == 0
        assert net.counters.local == 1

    def test_loopback_faster_than_wire(self, sim):
        net = make_net(sim)
        a = Socket(net, "a", 1)
        b = Socket(net, "a", 2)
        a.sendto("x", "a", 2)

        def receiver(sim):
            yield b.recv()
            return sim.now

        assert sim.run(sim.process(receiver(sim))) < 0.001


class TestHostDown:
    def test_down_host_receives_nothing(self, sim):
        net = make_net(sim)
        a = Socket(net, "a", 1)
        Socket(net, "b", 2)
        net.set_host_down("b")
        a.sendto("x", "b", 2)
        sim.run()
        assert net.counters.delivered == 0
        assert net.counters.dropped_unroutable == 1

    def test_down_host_sends_nothing(self, sim):
        net = make_net(sim)
        a = Socket(net, "a", 1)
        Socket(net, "b", 2)
        net.set_host_down("a")
        a.sendto("x", "b", 2)
        sim.run()
        assert net.counters.sent == 0

    def test_recovery(self, sim):
        net = make_net(sim)
        a = Socket(net, "a", 1)
        Socket(net, "b", 2)
        net.set_host_down("b")
        net.set_host_down("b", False)
        a.sendto("x", "b", 2)
        sim.run()
        assert net.counters.delivered == 1


class TestBinding:
    def test_double_bind_raises(self, sim):
        net = make_net(sim)
        Socket(net, "a", 1)
        with pytest.raises(AddressError):
            Socket(net, "a", 1)

    def test_rebind_after_close(self, sim):
        net = make_net(sim)
        s = Socket(net, "a", 1)
        s.close()
        Socket(net, "a", 1)  # no raise

    def test_ephemeral_ports_unique(self, sim):
        net = make_net(sim)
        ports = {Socket(net, "a").port for _ in range(10)}
        assert len(ports) == 10

    def test_cpu_charge_hook(self, sim):
        net = make_net(sim, send_overhead_s=0.005, recv_overhead_s=0.003)
        charged = {"a": 0.0, "b": 0.0}
        net.attach_cpu("a", lambda s: charged.__setitem__("a", charged["a"] + s))
        net.attach_cpu("b", lambda s: charged.__setitem__("b", charged["b"] + s))
        a = Socket(net, "a", 1)
        Socket(net, "b", 2)
        a.sendto("x", "b", 2)
        sim.run()
        assert charged["a"] == pytest.approx(0.005)
        assert charged["b"] == pytest.approx(0.003)
