"""Tests for the structured trace log."""

from repro.util.trace import TraceEvent, TraceLog


def test_emit_and_query():
    log = TraceLog()
    log.emit(1.0, "steal.request", "ws01", victim="ws02")
    log.emit(2.0, "steal.grant", "ws02", thief="ws01")
    log.emit(3.0, "steal.request", "ws03")
    assert log.count("steal.request") == 2
    assert len(log.events(kind="steal.grant")) == 1
    assert len(log.events(source="ws01")) == 1


def test_disabled_log_is_noop():
    log = TraceLog(enabled=False)
    log.emit(1.0, "x", "y")
    assert len(log) == 0


def test_capacity_drops_oldest():
    log = TraceLog(capacity=3)
    for i in range(5):
        log.emit(float(i), "k", "s", i=i)
    assert len(log) == 3
    assert log.dropped == 2
    assert [ev.detail["i"] for ev in log] == [2, 3, 4]


def test_truncated_flag_tracks_eviction():
    log = TraceLog(capacity=2)
    log.emit(0.0, "a", "s")
    log.emit(1.0, "b", "s")
    assert not log.truncated  # at capacity but nothing evicted yet
    log.emit(2.0, "c", "s")
    assert log.truncated
    assert log.dropped == 1
    log.clear()
    assert not log.truncated  # clear() resets the truncation record


def test_unbounded_log_never_truncates():
    log = TraceLog()
    for i in range(1000):
        log.emit(float(i), "k", "s")
    assert not log.truncated
    assert log.dropped == 0


def test_dump_is_stable_and_ordered():
    """dump() is the determinism fingerprint: identical emissions must
    produce identical bytes, in emission order, detail keys sorted."""

    def build():
        log = TraceLog()
        log.emit(0.25, "steal.grant", "ws02", thief="ws01", cid=("ws02", 7))
        log.emit(0.5, "net.recv", "ws01", src="ws02", id=3)
        return log

    a, b = build().dump(), build().dump()
    assert a == b
    lines = a.splitlines()
    assert len(lines) == 2
    assert "steal.grant" in lines[0] and "net.recv" in lines[1]
    assert "cid=('ws02', 7) thief=ws01" in lines[0]  # sorted detail keys


def test_where_predicate():
    log = TraceLog()
    for i in range(10):
        log.emit(float(i), "tick", "src", i=i)
    evens = log.events(where=lambda ev: ev.detail["i"] % 2 == 0)
    assert len(evens) == 5


def test_kinds_fingerprint():
    log = TraceLog()
    log.emit(0, "a", "s")
    log.emit(1, "b", "s")
    log.emit(2, "a", "s")
    assert log.kinds() == [("a", 2), ("b", 1)]


def test_clear():
    log = TraceLog(capacity=1)
    log.emit(0, "a", "s")
    log.emit(1, "b", "s")
    log.clear()
    assert len(log) == 0
    assert log.dropped == 0


def test_str_rendering():
    ev = TraceEvent(1.5, "net.send", "ws00", {"dst": "ws01"})
    s = str(ev)
    assert "net.send" in s and "ws00" in s and "dst=ws01" in s


def test_categories_filter_by_kind_prefix():
    log = TraceLog(categories=("steal.", "closure."))
    log.emit(0.0, "steal.request", "w1")
    log.emit(1.0, "net.send", "w1")      # filtered out
    log.emit(2.0, "closure.lost", "w1")
    log.emit(3.0, "worker.start", "w1")  # filtered out
    assert [ev.kind for ev in log] == ["steal.request", "closure.lost"]
    # Filtered events are *not* dropped events: nothing was evicted.
    assert log.dropped == 0
    assert not log.truncated


def test_categories_none_keeps_everything():
    log = TraceLog(categories=None)
    log.emit(0.0, "a", "s")
    log.emit(1.0, "b", "s")
    assert len(log) == 2


def test_categories_compose_with_capacity():
    # Capacity counts only events that pass the filter.
    log = TraceLog(capacity=2, categories=("keep.",))
    for i in range(5):
        log.emit(float(i), "keep.tick", "s", i=i)
        log.emit(float(i), "noise.tick", "s", i=i)
    assert [ev.detail["i"] for ev in log] == [3, 4]
    assert log.dropped == 3  # evicted keep.* events only


def test_categories_with_disabled_log():
    log = TraceLog(enabled=False, categories=("steal.",))
    log.emit(0.0, "steal.request", "w1")
    assert len(log) == 0


def test_trace_event_slots_and_equality():
    a = TraceEvent(1.0, "k", "s", {"x": 1})
    b = TraceEvent(1.0, "k", "s", {"x": 1})
    c = TraceEvent(1.0, "k", "s", {"x": 2})
    assert a == b
    assert a != c
    assert a != "not an event"
    try:
        a.extra = 1
        raised = False
    except AttributeError:
        raised = True
    assert raised


def test_jsonl_round_trip_preserves_everything():
    log = TraceLog(capacity=100, categories=("steal.", "closure."))
    log.emit(1.0, "steal.request", "ws01", victim="ws02", pair=(1, 2))
    log.emit(2.0, "closure.exec", "ws02", cid=7)
    log.emit(2.5, "net.send", "ws01")  # filtered by categories
    text = log.to_jsonl()
    back = TraceLog.from_jsonl(text)
    assert len(back) == len(log) == 2
    assert back.kinds() == log.kinds()
    assert [ev.time for ev in back] == [ev.time for ev in log]
    assert [ev.source for ev in back] == [ev.source for ev in log]
    assert back.capacity == 100
    assert back.categories == ("steal.", "closure.")
    assert back.dropped == 0
    # Tuples degrade to lists (JSON), everything else survives exactly.
    assert back.events(kind="steal.request")[0].detail == {
        "victim": "ws02", "pair": [1, 2],
    }


def test_jsonl_round_trip_preserves_truncation():
    log = TraceLog(capacity=2)
    for i in range(5):
        log.emit(float(i), "k", "s", i=i)
    back = TraceLog.from_jsonl(log.to_jsonl())
    assert back.dropped == 3
    assert back.truncated
    assert [ev.detail["i"] for ev in back] == [3, 4]


def test_jsonl_coerces_exotic_detail_values():
    class Thing:
        def __repr__(self):
            return "<thing>"

    log = TraceLog()
    log.emit(0.0, "k", "s", obj=Thing(), nested={"a": (1,)})
    back = TraceLog.from_jsonl(log.to_jsonl())
    assert back.events()[0].detail == {"obj": "<thing>", "nested": {"a": [1]}}


def test_from_jsonl_tolerates_empty_and_headerless_input():
    empty = TraceLog.from_jsonl("")
    assert len(empty) == 0
    headerless = TraceLog.from_jsonl(
        '{"t": 1.0, "kind": "k", "src": "s", "detail": {}}\n'
    )
    assert len(headerless) == 1
    assert headerless.events()[0].kind == "k"


def test_dump_unchanged_by_jsonl_round_trip():
    log = TraceLog()
    log.emit(1.0, "steal.request", "ws01", victim="ws02")
    log.emit(2.0, "steal.grant", "ws02", thief="ws01")
    assert TraceLog.from_jsonl(log.to_jsonl()).dump() == log.dump()
