"""Tests for statistics helpers (incl. the paper's speedup formula)."""

import math
import statistics

import pytest

from repro.util.stats import (
    Histogram,
    OnlineStats,
    geometric_mean,
    mean,
    speedup_paper,
    summarize,
)


class TestOnlineStats:
    def test_mean_matches_statistics(self):
        xs = [1.5, 2.5, -3.0, 4.25, 0.0]
        s = summarize(xs)
        assert s.mean == pytest.approx(statistics.fmean(xs))

    def test_variance_matches_statistics(self):
        xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        s = summarize(xs)
        assert s.variance == pytest.approx(statistics.variance(xs))
        assert s.stdev == pytest.approx(statistics.stdev(xs))

    def test_min_max_count(self):
        s = summarize([2, -1, 7])
        assert (s.min, s.max, s.count) == (-1, 7, 3)

    def test_empty(self):
        s = OnlineStats()
        assert s.mean == 0.0
        assert s.variance == 0.0
        assert s.count == 0

    def test_single_sample_zero_variance(self):
        s = summarize([5.0])
        assert s.variance == 0.0


class TestHistogram:
    def test_add_and_total(self):
        h = Histogram()
        h.add(-3)
        h.add(-3)
        h.add(0, count=5)
        assert h.total() == 7
        assert h.counts[-3] == 2

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.add(1, 2)
        b.add(1, 3)
        b.add(2, 1)
        a.merge(b)
        assert a.counts == {1: 5, 2: 1}

    def test_items_sorted(self):
        h = Histogram()
        h.add(3)
        h.add(-1)
        h.add(0)
        assert [k for k, _ in h.items()] == [-1, 0, 3]

    def test_equality_ignores_zero_bins(self):
        a, b = Histogram(), Histogram()
        a.add(1)
        a.add(2, 0)
        b.add(1)
        assert a == b

    def test_inequality(self):
        a, b = Histogram(), Histogram()
        a.add(1)
        b.add(2)
        assert a != b

    def test_eq_other_type(self):
        assert Histogram() != 5


class TestSpeedupPaper:
    def test_equal_times(self):
        # P participants all taking T1/P: perfect speedup.
        assert speedup_paper(100.0, [25.0] * 4) == pytest.approx(4.0)

    def test_formula_is_t1_over_average(self):
        times = [10.0, 20.0]
        assert speedup_paper(30.0, times) == pytest.approx(30.0 / 15.0)

    def test_single_participant(self):
        assert speedup_paper(50.0, [50.0]) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            speedup_paper(1.0, [])

    def test_zero_times_raise(self):
        with pytest.raises(ValueError):
            speedup_paper(1.0, [0.0, 0.0])


class TestMisc:
    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)

    def test_geometric_mean_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        with pytest.raises(ValueError):
            mean([])
