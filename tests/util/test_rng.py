"""Tests for deterministic named RNG streams."""

from repro.util.rng import RngRegistry, derive_seed


def test_same_name_same_stream():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_different_names_independent():
    reg = RngRegistry(1)
    a = [reg.stream("a").random() for _ in range(5)]
    b = [reg.stream("b").random() for _ in range(5)]
    assert a != b


def test_same_seed_reproducible():
    xs = [RngRegistry(9).stream("s").random() for _ in range(3)]
    ys = [RngRegistry(9).stream("s").random() for _ in range(3)]
    assert xs == ys


def test_different_seeds_differ():
    assert RngRegistry(1).stream("s").random() != RngRegistry(2).stream("s").random()


def test_stream_isolation_from_creation_order():
    r1 = RngRegistry(5)
    r1.stream("x")  # created first
    v1 = r1.stream("y").random()
    r2 = RngRegistry(5)
    v2 = r2.stream("y").random()  # created without x existing
    assert v1 == v2


def test_derive_seed_stable():
    assert derive_seed(42, "net") == derive_seed(42, "net")
    assert derive_seed(42, "net") != derive_seed(42, "net2")
    assert derive_seed(42, "net") != derive_seed(43, "net")


def test_spawn_child_registry_independent():
    reg = RngRegistry(3)
    child_a = reg.spawn("job-a")
    child_b = reg.spawn("job-b")
    assert child_a.stream("s").random() != child_b.stream("s").random()
    # children are reproducible too
    assert RngRegistry(3).spawn("job-a").stream("s").random() == \
        RngRegistry(3).spawn("job-a").stream("s").random()


def test_names_listing():
    reg = RngRegistry(0)
    reg.stream("b")
    reg.stream("a")
    assert list(reg.names()) == ["a", "b"]
