"""Tests for AnyOf/AllOf condition events."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulator
from repro.sim.events import AllOf, AnyOf


def test_anyof_first_wins(sim):
    def proc(sim):
        fast = sim.timeout(1, value="fast")
        slow = sim.timeout(5, value="slow")
        settled = yield AnyOf(sim, [fast, slow])
        return (sim.now, dict(settled))

    now, settled = sim.run(sim.process(proc(sim)))
    assert now == 1.0
    assert list(settled.values()) == ["fast"]


def test_anyof_simultaneous_collects_all(sim):
    def proc(sim):
        a = sim.timeout(2, value="a")
        b = sim.timeout(2, value="b")
        settled = yield AnyOf(sim, [a, b])
        return sorted(settled.values())

    # Both trigger at t=2; the AnyOf is processed after the first, but
    # _collect sees every already-triggered child.
    values = sim.run(sim.process(proc(sim)))
    assert "a" in values


def test_allof_waits_for_all(sim):
    def proc(sim):
        a = sim.timeout(1, value=1)
        b = sim.timeout(7, value=2)
        settled = yield AllOf(sim, [a, b])
        return (sim.now, sum(settled.values()))

    assert sim.run(sim.process(proc(sim))) == (7.0, 3)


def test_allof_empty_succeeds_immediately(sim):
    def proc(sim):
        settled = yield AllOf(sim, [])
        return settled

    assert sim.run(sim.process(proc(sim))) == {}


def test_anyof_empty_succeeds_immediately(sim):
    def proc(sim):
        settled = yield AnyOf(sim, [])
        return settled

    assert sim.run(sim.process(proc(sim))) == {}


def test_condition_failure_propagates(sim):
    def bad(sim):
        yield sim.timeout(1)
        raise ValueError("inner")

    def proc(sim):
        p = sim.process(bad(sim))
        try:
            yield AllOf(sim, [p, sim.timeout(10)])
        except ValueError as exc:
            return str(exc)

    assert sim.run(sim.process(proc(sim))) == "inner"


def test_anyof_late_failure_after_settle_is_absorbed(sim):
    def bad(sim):
        yield sim.timeout(5)
        raise ValueError("late")

    def proc(sim):
        p = sim.process(bad(sim))
        settled = yield AnyOf(sim, [sim.timeout(1, value="ok"), p])
        return list(settled.values())

    assert sim.run(sim.process(proc(sim))) == ["ok"]
    sim.run()  # the late failure must not escalate


def test_condition_mixed_simulators_raises():
    s1, s2 = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        AnyOf(s1, [s1.timeout(1), s2.timeout(1)])


def test_allof_with_already_processed_children(sim):
    t = sim.timeout(1, value="pre")
    sim.run()
    assert t.processed

    def proc(sim):
        settled = yield AllOf(sim, [t, sim.timeout(2, value="post")])
        return sorted(settled.values())

    assert sim.run(sim.process(proc(sim))) == ["post", "pre"]


def test_nested_conditions(sim):
    def proc(sim):
        inner = AnyOf(sim, [sim.timeout(3, value="x")])
        settled = yield AllOf(sim, [inner, sim.timeout(1)])
        return sim.now

    assert sim.run(sim.process(proc(sim))) == 3.0
