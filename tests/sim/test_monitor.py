"""Tests for the Probe time-series monitor."""

import pytest

from repro.errors import SimulationError
from repro.sim.monitor import Probe


def test_record_and_last(sim):
    p = Probe(sim, "q")
    p.record(3)
    assert p.last == 3.0


def test_empty_probe_raises(sim):
    p = Probe(sim)
    with pytest.raises(SimulationError):
        _ = p.last
    with pytest.raises(SimulationError):
        _ = p.peak
    with pytest.raises(SimulationError):
        p.time_average()


def test_peak(sim):
    p = Probe(sim)
    for v in (1, 5, 2):
        p.record(v)
    assert p.peak == 5.0


def test_time_average_step_function(sim):
    p = Probe(sim)
    p.record(10)        # t=0: value 10
    sim.run(until=4.0)
    p.record(0)         # t=4: value 0
    sim.run(until=8.0)
    # 10 for 4s, then 0 for 4s => average 5
    assert p.time_average() == pytest.approx(5.0)


def test_time_average_with_horizon(sim):
    p = Probe(sim)
    p.record(2)
    sim.run(until=10.0)
    assert p.time_average(until=10.0) == pytest.approx(2.0)


def test_time_average_single_instant(sim):
    p = Probe(sim)
    p.record(7)
    assert p.time_average(until=0.0) == 7.0


def test_time_average_horizon_before_first_sample(sim):
    p = Probe(sim)
    sim.run(until=5.0)
    p.record(1)
    with pytest.raises(SimulationError):
        p.time_average(until=1.0)


def test_percentile_time_weighted(sim):
    p = Probe(sim)
    p.record(1)            # held 1..9 for 8s
    sim.run(until=8.0)
    p.record(9)            # held for 2s
    sim.run(until=10.0)
    # 80% of the span at value 1: the time-median is 1, not 5.
    assert p.percentile(0.5) == 1.0
    assert p.percentile(0.9) == 9.0
    assert p.percentile(0.0) == 1.0
    assert p.percentile(1.0) == 9.0


def test_percentile_rejects_bad_inputs(sim):
    p = Probe(sim)
    with pytest.raises(SimulationError):
        p.percentile(0.5)  # no samples
    p.record(1)
    with pytest.raises(SimulationError):
        p.percentile(1.5)


def test_percentile_zero_span(sim):
    p = Probe(sim)
    p.record(4)
    assert p.percentile(0.5, until=0.0) == 4.0


def test_to_histogram_weights_by_dwell_time(sim):
    p = Probe(sim)
    p.record(1)
    sim.run(until=8.0)
    p.record(9)
    sim.run(until=10.0)
    hist = p.to_histogram(edges=(2.0, 10.0))
    # ~8 observations at 1 (below 2.0), ~2 at 9 (in [2, 10)).
    assert hist.counts == [8, 2, 0]
    assert hist.percentile(0.5) <= 2.0
