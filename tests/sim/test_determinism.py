"""Kernel-level determinism of the tie-break shuffle.

The simulator's contract: no ``tiebreak_rng`` gives the canonical
insertion-order schedule; the *same* rng seed gives the same (shuffled)
schedule twice; different seeds may legally differ.  URGENT events are
exempt from shuffling — their ordering is part of the semantics.
"""

import random

from repro.sim.core import URGENT, Simulator


def _interleaving(tiebreak_seed=None, n=12):
    """Record the firing order of n same-time NORMAL timeouts."""
    rng = random.Random(tiebreak_seed) if tiebreak_seed is not None else None
    sim = Simulator(tiebreak_rng=rng)
    order = []

    def waiter(i):
        yield sim.timeout(1.0)
        order.append(i)

    for i in range(n):
        sim.process(waiter(i), name=f"w{i}")
    sim.run()
    return order


def test_canonical_order_is_insertion_order():
    assert _interleaving(None) == list(range(12))


def test_same_tiebreak_seed_same_schedule():
    assert _interleaving(7) == _interleaving(7)


def test_different_tiebreak_seeds_differ():
    """At least one of a handful of seeds must permute 12 same-time
    events differently from the canonical order (the chance that five
    random shuffles of 12 elements all equal identity is ~(1/12!)^5)."""
    canonical = list(range(12))
    shuffles = [_interleaving(s) for s in range(5)]
    assert any(s != canonical for s in shuffles)
    for s in shuffles:
        assert sorted(s) == canonical  # a permutation: nothing lost


def test_urgent_events_not_shuffled():
    """URGENT callbacks at one instant keep insertion order regardless
    of the tie-break rng (they encode intra-instant semantics)."""

    def run(seed):
        sim = Simulator(tiebreak_rng=random.Random(seed))
        order = []

        def waiter(i):
            ev = sim.event()
            ev.succeed(None, delay=1.0, priority=URGENT)
            yield ev
            order.append(i)

        for i in range(10):
            sim.process(waiter(i), name=f"u{i}")
        sim.run()
        return order

    assert run(1) == run(2) == run(3)
