"""Queue-backend equivalence: heap vs calendar vs a plain-heapq oracle.

The calendar backend is only allowed to exist because it is
unobservable: every push/pop sequence must come out in exactly the
(time, priority, seq) total order the reference heap backend produces —
including the ``tiebreak_rng`` sub-key shape, where each NORMAL enqueue
draws one ``rng.random()`` in enqueue order.  These tests drive random
operation scripts (quantized + arbitrary delays, URGENT/NORMAL mixes,
pops interleaved with pushes, nested pushes from inside callbacks)
through both backends and an independent plain-``heapq`` oracle, then
assert the three pop orders are identical.

The full-system half of the contract — byte-identical ``TraceLog`` for
entire checked cluster runs — is covered by the
``verify_queue_backends`` sweep at the bottom (and by CI's 50-seed
smoke step; see docs/performance.md, "Queue backends").
"""

import heapq
import random

import pytest

from repro.sim.core import NORMAL, URGENT, Event, Simulator

#: The steal-backoff-style quantized delay set: lots of exact-time
#: collisions, which is the whole point of the calendar layout.
QUANTIZED = (0.0, 0.001, 0.002, 0.004, 0.008)


class OracleQueue:
    """Plain-heapq reimplementation of the reference entry construction:
    ``(time, priority, seq, label)``, with the rng sub-key spliced in
    before ``seq`` for NORMAL entries exactly as ``Simulator._enqueue``
    does."""

    def __init__(self, rng=None):
        self.now = 0.0
        self.rng = rng
        self._heap = []
        self._seq = 0

    def push(self, delay, priority, label):
        self._seq += 1
        if self.rng is not None and priority == NORMAL:
            entry = (self.now + delay, priority, self.rng.random(), self._seq, label)
        else:
            entry = (self.now + delay, priority, self._seq, label)
        heapq.heappush(self._heap, entry)

    def pop(self):
        entry = heapq.heappop(self._heap)
        self.now = entry[0]
        return (self.now, entry[-1])

    def __len__(self):
        return len(self._heap)


class SimAdapter:
    """Drives a real :class:`Simulator` through the same script shape.

    Every pushed event carries an integer label; processing appends
    ``(now, label)`` to ``order``.  Nested pushes (from inside the
    event's callback) are triggered by the shared script, keeping the
    rng draw sequence aligned across backends and oracle.
    """

    def __init__(self, queue, rng=None):
        self.sim = Simulator(tiebreak_rng=rng, queue=queue)
        self.order = []
        self._nested = {}

    def push(self, delay, priority, label, nested=()):
        if nested:
            self._nested[label] = nested
        if priority == NORMAL:
            ev = self.sim.timeout(delay)
        else:
            ev = Event(self.sim)
            ev._ok = True
            ev._value = None
            self.sim._enqueue(ev, delay, URGENT)
        ev.subscribe(lambda _ev, label=label: self._fire(label))

    def _fire(self, label):
        self.order.append((self.sim.now, label))
        for delay, priority, sub_label in self._nested.pop(label, ()):
            self.push(delay, priority, sub_label)

    def pop(self):
        self.sim.step()

    def drain(self, use_run):
        if use_run:
            self.sim.run()
        else:
            while self.sim.peek() != float("inf"):
                self.sim.step()


def _make_script(seed, n_ops=120):
    """A reproducible script of (op, args) tuples; roughly 70% NORMAL
    pushes, 15% URGENT pushes, 15% pop bursts, with ~20% of pushed
    events carrying nested same-tick/future pushes."""
    rng = random.Random(seed)
    script = []
    label = [0]

    def delay():
        if rng.random() < 0.7:
            return rng.choice(QUANTIZED)
        return rng.uniform(0.0, 0.01)

    def fresh_push():
        label[0] += 1
        this = label[0]
        priority = NORMAL if rng.random() < 0.8 else URGENT
        nested = []
        if rng.random() < 0.2:
            for _ in range(rng.randint(1, 3)):
                label[0] += 1
                nested.append(
                    (delay(), NORMAL if rng.random() < 0.7 else URGENT, label[0])
                )
        return (delay(), priority, this, tuple(nested))

    live = 0
    for _ in range(n_ops):
        r = rng.random()
        if r < 0.85 or live == 0:
            script.append(("push", fresh_push()))
            live += 1
        else:
            k = rng.randint(1, min(4, live))
            script.append(("pop", k))
            live -= k  # nested pushes may keep the queue fuller; fine
            live = max(live, 0)
    return script


def _run_script(seed, queue, rng_seed, use_run_drain):
    rng = random.Random(rng_seed) if rng_seed is not None else None
    if queue == "oracle":
        oracle = OracleQueue(rng)
        nested_map = {}
        order = []
        for op, arg in _make_script(seed):
            if op == "push":
                d, p, lab, nested = arg
                nested_map[lab] = nested
                oracle.push(d, p, lab)
            else:
                for _ in range(arg):
                    if not len(oracle):
                        break
                    now, lab = oracle.pop()
                    order.append((now, lab))
                    for d, p, sub in nested_map.pop(lab, ()):
                        oracle.push(d, p, sub)
        while len(oracle):
            now, lab = oracle.pop()
            order.append((now, lab))
            for d, p, sub in nested_map.pop(lab, ()):
                oracle.push(d, p, sub)
        return order
    adapter = SimAdapter(queue, rng)
    for op, arg in _make_script(seed):
        if op == "push":
            d, p, lab, nested = arg
            adapter.push(d, p, lab, nested)
        else:
            for _ in range(arg):
                if adapter.sim.peek() == float("inf"):
                    break
                adapter.pop()
    adapter.drain(use_run_drain)
    return adapter.order


@pytest.mark.parametrize("rng_seed", [None, 1, 2, 3])
@pytest.mark.parametrize("seed", range(8))
def test_backends_match_oracle_stepped(seed, rng_seed):
    """step()-driven: heap, calendar, and the oracle pop identically."""
    oracle = _run_script(seed, "oracle", rng_seed, use_run_drain=False)
    heap = _run_script(seed, "heap", rng_seed, use_run_drain=False)
    calendar = _run_script(seed, "calendar", rng_seed, use_run_drain=False)
    assert heap == oracle
    assert calendar == oracle
    assert len(oracle) > 50  # the script actually exercised something


@pytest.mark.parametrize("rng_seed", [None, 7])
@pytest.mark.parametrize("seed", range(4))
def test_backends_match_oracle_run_drain(seed, rng_seed):
    """run()-driven (the batched fast paths) matches the same oracle."""
    oracle = _run_script(seed, "oracle", rng_seed, use_run_drain=False)
    heap = _run_script(seed, "heap", rng_seed, use_run_drain=True)
    calendar = _run_script(seed, "calendar", rng_seed, use_run_drain=True)
    assert heap == oracle
    assert calendar == oracle


def test_urgent_keeps_insertion_order_under_rng():
    """URGENT events never get a shuffle sub-key: even with a
    tiebreak_rng, same-time URGENT events pop in insertion order on
    both backends."""
    for queue in ("heap", "calendar"):
        sim = Simulator(tiebreak_rng=random.Random(0), queue=queue)
        order = []
        for i in range(10):
            ev = Event(sim)
            ev._ok = True
            ev._value = None
            ev.subscribe(lambda _ev, i=i: order.append(i))
            sim._enqueue(ev, 1.0, URGENT)
        sim.run()
        assert order == list(range(10)), queue


def test_calendar_is_the_auto_default():
    assert Simulator().queue_backend == "calendar"
    assert Simulator(queue="auto").queue_backend == "calendar"
    assert Simulator(queue="heap").queue_backend == "heap"
    assert Simulator(queue="calendar").queue_backend == "calendar"
    with pytest.raises(Exception):
        Simulator(queue="wat")


def test_timeout_pool_recycles_unreferenced_timeouts():
    """The calendar backend reuses waited-on Timeout objects, but never
    one the caller still holds a reference to."""
    sim = Simulator(queue="calendar")
    seen = []

    def waiter(sim):
        for _ in range(8):
            yield sim.timeout(1.0)
            seen.append(None)

    sim.process(waiter(sim))
    sim.run()
    assert len(seen) == 8
    assert len(sim._timeout_pool) >= 1  # the churn fed the free list

    # A held timeout must NOT be recycled out from under the holder.
    sim2 = Simulator(queue="calendar")
    held = sim2.timeout(1.0, value="mine")

    def other(sim):
        yield sim.timeout(1.0)

    sim2.process(other(sim2))
    sim2.run()
    assert held.value == "mine"
    assert all(ev is not held for ev in sim2._timeout_pool)


@pytest.mark.parametrize("app", ["fib", "shrink"])
def test_fuzz_traces_byte_identical_across_backends(app):
    """Full checked cluster runs: the two backends must produce
    byte-identical TraceLogs seed for seed (a small window here; the
    50-seed sweep runs in CI via ``repro check --verify-queue``)."""
    from repro.check import verify_queue_backends

    result = verify_queue_backends(app, n_seeds=6, n_workers=4)
    assert result.ok, result.summary()
