"""Unit tests for the DES kernel: events, processes, interrupts, run()."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import NORMAL, URGENT, Event, Interrupt, Process, Simulator, Timeout


class TestEvent:
    def test_starts_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed
        assert ev.ok is None

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_succeed_sets_value(self, sim):
        ev = sim.event().succeed(42)
        assert ev.triggered
        assert ev.ok is True
        assert ev.value == 42

    def test_double_succeed_raises(self, sim):
        ev = sim.event().succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_then_succeed_raises(self, sim):
        ev = sim.event().fail(ValueError("x"))
        ev.defused = True
        with pytest.raises(SimulationError):
            ev.succeed(1)

    def test_fail_requires_exception(self, sim):
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")  # type: ignore[arg-type]

    def test_callbacks_run_on_processing(self, sim):
        ev = sim.event()
        seen = []
        ev.subscribe(lambda e: seen.append(e.value))
        ev.succeed("hello")
        sim.run()
        assert seen == ["hello"]

    def test_subscribe_after_processed_still_fires(self, sim):
        ev = sim.event().succeed(7)
        sim.run()
        assert ev.processed
        seen = []
        ev.subscribe(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [7]

    def test_unsubscribe_removes_callback(self, sim):
        ev = sim.event()
        cb = lambda e: (_ for _ in ()).throw(AssertionError)  # noqa: E731
        ev.subscribe(cb)
        assert ev.unsubscribe(cb)
        assert not ev.unsubscribe(cb)
        ev.succeed(None)
        sim.run()

    def test_unhandled_failure_escalates(self, sim):
        sim.event().fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_defused_failure_does_not_escalate(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("boom"))
        ev.defused = True
        sim.run()  # no raise


class TestTimeout:
    def test_fires_after_delay(self, sim):
        t = sim.timeout(5.0, value="v")
        sim.run()
        assert sim.now == 5.0
        assert t.value == "v"

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_zero_delay_ok(self, sim):
        t = sim.timeout(0.0)
        sim.run()
        assert t.processed
        assert sim.now == 0.0

    def test_same_time_fifo_order(self, sim):
        order = []
        for i in range(5):
            t = sim.timeout(1.0, value=i)
            t.subscribe(lambda e: order.append(e.value))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcess:
    def test_returns_value(self, sim):
        def proc(sim):
            yield sim.timeout(1)
            return "done"

        assert sim.run(sim.process(proc(sim))) == "done"

    def test_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_join_another_process(self, sim):
        def child(sim):
            yield sim.timeout(3)
            return 99

        def parent(sim):
            value = yield sim.process(child(sim))
            return value + 1

        assert sim.run(sim.process(parent(sim))) == 100
        assert sim.now == 3.0

    def test_exception_propagates_to_joiner(self, sim):
        def child(sim):
            yield sim.timeout(1)
            raise ValueError("child died")

        def parent(sim):
            try:
                yield sim.process(child(sim))
            except ValueError as exc:
                return f"caught {exc}"

        assert sim.run(sim.process(parent(sim))) == "caught child died"

    def test_unjoined_crash_escalates(self, sim):
        def bad(sim):
            yield sim.timeout(1)
            raise KeyError("unseen")

        sim.process(bad(sim))
        with pytest.raises(KeyError):
            sim.run()

    def test_yield_non_event_raises_inside_process(self, sim):
        def bad(sim):
            try:
                yield 42  # type: ignore[misc]
            except SimulationError:
                return "caught"

        assert sim.run(sim.process(bad(sim))) == "caught"

    def test_is_alive_lifecycle(self, sim):
        def proc(sim):
            yield sim.timeout(2)

        p = sim.process(proc(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_process_value_is_event_value(self, sim):
        def proc(sim):
            yield sim.timeout(1)
            return [1, 2]

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == [1, 2]

    def test_immediate_return_without_yield_is_error(self, sim):
        # A generator function that never yields still works (it returns
        # on the first resume).
        def proc(sim):
            return "instant"
            yield  # pragma: no cover - makes it a generator

        assert sim.run(sim.process(proc(sim))) == "instant"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def victim(sim):
            try:
                yield sim.timeout(100)
            except Interrupt as i:
                return ("interrupted", i.cause, sim.now)

        p = sim.process(victim(sim))

        def killer(sim):
            yield sim.timeout(5)
            assert p.interrupt("because")

        sim.process(killer(sim))
        assert sim.run(p) == ("interrupted", "because", 5.0)

    def test_interrupt_finished_process_is_noop(self, sim):
        def quick(sim):
            yield sim.timeout(1)

        p = sim.process(quick(sim))
        sim.run()
        assert p.interrupt("late") is False

    def test_interrupted_process_can_continue(self, sim):
        def victim(sim):
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(2)
            return sim.now

        p = sim.process(victim(sim))

        def killer(sim):
            yield sim.timeout(1)
            p.interrupt()

        sim.process(killer(sim))
        assert sim.run(p) == 3.0

    def test_original_wait_detached_after_interrupt(self, sim):
        # After an interrupt, the original timeout firing must not
        # resume the process a second time.
        log = []

        def victim(sim):
            try:
                yield sim.timeout(10)
                log.append("timeout")
            except Interrupt:
                log.append("interrupt")
            yield sim.timeout(50)
            log.append("second wait done")

        p = sim.process(victim(sim))

        def killer(sim):
            yield sim.timeout(1)
            p.interrupt()

        sim.process(killer(sim))
        sim.run()
        assert log == ["interrupt", "second wait done"]

    def test_self_interrupt_raises(self, sim):
        def selfish(sim):
            proc = sim._active
            with pytest.raises(SimulationError):
                proc.interrupt()
            yield sim.timeout(0)

        sim.run(sim.process(selfish(sim)))


class TestSimulatorRun:
    def test_run_until_time(self, sim):
        fired = []
        sim.timeout(5).subscribe(lambda e: fired.append(5))
        sim.timeout(15).subscribe(lambda e: fired.append(15))
        sim.run(until=10.0)
        assert fired == [5]
        assert sim.now == 10.0
        sim.run(until=20.0)
        assert fired == [5, 15]

    def test_run_until_past_raises(self, sim):
        sim.run(until=10.0)
        with pytest.raises(SimulationError):
            sim.run(until=5.0)

    def test_run_until_event_returns_value(self, sim):
        def proc(sim):
            yield sim.timeout(3)
            return "x"

        assert sim.run(sim.process(proc(sim))) == "x"

    def test_run_until_event_reraises_failure(self, sim):
        def proc(sim):
            yield sim.timeout(1)
            raise OSError("nope")

        with pytest.raises(OSError):
            sim.run(sim.process(proc(sim)))

    def test_run_until_never_firing_event_deadlocks(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(ev)

    def test_step_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(4)
        assert sim.peek() == 4.0

    def test_urgent_before_normal(self, sim):
        order = []
        e1 = sim.event()
        e1.subscribe(lambda e: order.append("normal"))
        e1.succeed(None, priority=NORMAL)
        e2 = sim.event()
        e2.subscribe(lambda e: order.append("urgent"))
        e2.succeed(None, priority=URGENT)
        sim.run()
        assert order == ["urgent", "normal"]

    def test_events_processed_counter(self, sim):
        for _ in range(7):
            sim.timeout(1)
        sim.run()
        assert sim.events_processed == 7

    def test_call_soon_runs_from_loop(self, sim):
        seen = []
        sim.call_soon(lambda: seen.append(sim.now))
        assert seen == []  # not synchronous
        sim.run()
        assert seen == [0.0]

    def test_negative_delay_enqueue_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            ev.succeed(None, delay=-0.5)

    def test_determinism_same_structure(self):
        def build():
            s = Simulator()
            order = []

            def proc(s, name, d):
                yield s.timeout(d)
                order.append((name, s.now))

            for i, d in enumerate([3, 1, 2, 1, 3]):
                s.process(proc(s, i, d))
            s.run()
            return order

        assert build() == build()


class TestEventQueueModes:
    """The queue's three internal modes (lazy list / sorted drain /
    heap) must be invisible: same total order, same observable state."""

    def _modes(self):
        from repro.sim import core

        return core._MODE_LAZY, core._MODE_DRAIN, core._MODE_HEAP

    def test_starts_lazy_then_drains_sorted(self):
        LAZY, DRAIN, _HEAP = self._modes()
        sim = Simulator(queue="heap")
        assert sim._mode == LAZY
        for d in (5.0, 1.0, 3.0):
            sim.timeout(d)
        assert sim._mode == LAZY  # scheduling alone never sorts
        assert sim.peek() == 1.0  # first observation sorts once...
        assert sim._mode == DRAIN  # ...and switches to drain mode
        sim.run()
        assert sim.now == 5.0
        assert sim.events_processed == 3

    def test_push_during_drain_falls_back_to_heap(self):
        _LAZY, DRAIN, HEAP = self._modes()
        sim = Simulator(queue="heap")
        for d in (2.0, 4.0, 6.0):
            sim.timeout(d)
        sim.step()  # sorts, drains the t=2 event
        assert sim._mode == DRAIN
        sim.timeout(0.5)  # new work while draining -> re-heapify
        assert sim._mode == HEAP
        fired = []
        while sim.peek() != float("inf"):
            sim.step()
            fired.append(sim.now)
        # The late push lands between the drained prefix and the rest.
        assert fired == [2.5, 4.0, 6.0]

    def test_mode_transitions_preserve_total_order(self):
        import random

        rng = random.Random(7)
        delays = [rng.uniform(0.0, 50.0) for _ in range(100)]
        # Index 0 shares its callback-time pushes with every 10th event:
        # timeouts scheduled from inside callbacks force pushes while the
        # queue is mid-drain, exercising the heap fallback.

        def wire(sim, order):
            def fire(ev, i):
                order.append((ev.sim.now, i))
                if i % 10 == 0:
                    sim.timeout(1.0 + (i % 7)).subscribe(
                        lambda ev2, i=i: order.append((ev2.sim.now, 1000 + i))
                    )

            for i, d in enumerate(delays):
                sim.timeout(d).subscribe(lambda ev, i=i: fire(ev, i))

        # Drive one copy with run()'s fast drain loop...
        run_sim, run_order = Simulator(queue="heap"), []
        wire(run_sim, run_order)
        run_sim.run()

        # ...and an identical copy one step() at a time, with peek()
        # observations interleaved (peek flips lazy -> drain early).
        step_sim, step_order = Simulator(queue="heap"), []
        wire(step_sim, step_order)
        while step_sim.peek() != float("inf"):
            step_sim.step()

        assert len(run_order) == 110  # 100 up-front + 10 follow-ups
        assert run_order == step_order
        assert run_sim.now == step_sim.now
        assert run_sim.events_processed == step_sim.events_processed == 110

    def test_peek_in_every_mode(self):
        LAZY, DRAIN, HEAP = self._modes()
        sim = Simulator(queue="heap")
        assert sim.peek() == float("inf")  # empty, lazy
        sim.timeout(3.0)
        sim.timeout(1.0)
        assert sim.peek() == 1.0  # lazy -> drain
        assert sim._mode == DRAIN
        assert sim.peek() == 1.0  # drain steady-state
        sim.timeout(0.25)
        assert sim._mode == HEAP
        assert sim.peek() == 0.25  # heap
        sim.run()
        assert sim.peek() == float("inf")  # drained

    def test_run_until_horizon_across_modes(self):
        sim = Simulator(queue="heap")
        hits = []
        for d in (1.0, 2.0, 3.0, 4.0):
            sim.timeout(d).subscribe(lambda ev: hits.append(ev.sim.now))
        sim.run(until=2.5)
        assert hits == [1.0, 2.0]
        assert sim.now == 2.5
        # Due at 3.5, queued in heap/drain mode.
        sim.timeout(1.0).subscribe(lambda ev: hits.append(ev.sim.now))
        sim.run()
        assert hits == [1.0, 2.0, 3.0, 3.5, 4.0]
