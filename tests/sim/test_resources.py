"""Tests for Store, Channel, Resource, Signal."""

import pytest

from repro.errors import SimulationError
from repro.sim.resources import Channel, Resource, Signal, Store


class TestStore:
    def test_put_get_fifo(self, sim):
        st = Store(sim)
        out = []

        def producer(sim):
            for i in range(4):
                yield st.put(i)

        def consumer(sim):
            for _ in range(4):
                out.append((yield st.get()))

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert out == [0, 1, 2, 3]

    def test_capacity_blocks_put(self, sim):
        st = Store(sim, capacity=1)
        log = []

        def producer(sim):
            yield st.put("a")
            log.append(("put-a", sim.now))
            yield st.put("b")
            log.append(("put-b", sim.now))

        def consumer(sim):
            yield sim.timeout(5)
            yield st.get()

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert log == [("put-a", 0.0), ("put-b", 5.0)]

    def test_get_blocks_until_item(self, sim):
        st = Store(sim)

        def consumer(sim):
            value = yield st.get()
            return (value, sim.now)

        def producer(sim):
            yield sim.timeout(3)
            yield st.put("late")

        p = sim.process(consumer(sim))
        sim.process(producer(sim))
        assert sim.run(p) == ("late", 3.0)

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)

    def test_try_get(self, sim):
        st = Store(sim)
        assert st.try_get() == (False, None)
        st.put("x")
        assert st.try_get() == (True, "x")

    def test_try_get_with_queued_getters_raises(self, sim):
        st = Store(sim)
        st.get()  # queues a blocking getter
        with pytest.raises(SimulationError):
            st.try_get()

    def test_cancel_get(self, sim):
        st = Store(sim)
        ev = st.get()
        assert st.cancel_get(ev)
        assert not st.cancel_get(ev)
        st.put(1)
        # The cancelled getter must not consume the item.
        ok, item = st.try_get()
        assert (ok, item) == (True, 1)

    def test_len(self, sim):
        st = Store(sim)
        st.put(1)
        st.put(2)
        assert len(st) == 2


class TestChannel:
    def test_send_never_blocks(self, sim):
        ch = Channel(sim)
        for i in range(1000):
            ch.send(i)
        assert len(ch) == 1000

    def test_recv_in_order(self, sim):
        ch = Channel(sim)
        ch.send("a")
        ch.send("b")
        out = []

        def consumer(sim):
            out.append((yield ch.recv()))
            out.append((yield ch.recv()))

        sim.process(consumer(sim))
        sim.run()
        assert out == ["a", "b"]


class TestResource:
    def test_mutual_exclusion(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def user(sim, name, hold):
            yield res.request()
            log.append((name, "in", sim.now))
            yield sim.timeout(hold)
            log.append((name, "out", sim.now))
            res.release()

        sim.process(user(sim, "a", 2))
        sim.process(user(sim, "b", 1))
        sim.run()
        assert log == [("a", "in", 0.0), ("a", "out", 2.0),
                       ("b", "in", 2.0), ("b", "out", 3.0)]

    def test_capacity_two(self, sim):
        res = Resource(sim, capacity=2)
        entered = []

        def user(sim, name):
            yield res.request()
            entered.append((name, sim.now))
            yield sim.timeout(1)
            res.release()

        for n in "abc":
            sim.process(user(sim, n))
        sim.run()
        assert entered == [("a", 0.0), ("b", 0.0), ("c", 1.0)]

    def test_release_idle_raises(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim).release()

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_queued_property(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        res.request()
        assert res.queued == 1


class TestSignal:
    def test_broadcast_wakes_all(self, sim):
        sig = Signal(sim)
        woken = []

        def waiter(sim, name):
            value = yield sig.wait()
            woken.append((name, value, sim.now))

        for n in "abc":
            sim.process(waiter(sim, n))

        def setter(sim):
            yield sim.timeout(4)
            sig.set("go")

        sim.process(setter(sim))
        sim.run()
        assert sorted(woken) == [("a", "go", 4.0), ("b", "go", 4.0), ("c", "go", 4.0)]

    def test_wait_after_set_immediate(self, sim):
        sig = Signal(sim)
        sig.set(123)

        def waiter(sim):
            value = yield sig.wait()
            return (value, sim.now)

        assert sim.run(sim.process(waiter(sim))) == (123, 0.0)

    def test_double_set_is_noop(self, sim):
        sig = Signal(sim)
        sig.set(1)
        sig.set(2)
        assert sig.value == 1

    def test_is_set(self, sim):
        sig = Signal(sim)
        assert not sig.is_set
        sig.set()
        assert sig.is_set
