"""Perf-regression guard against the recorded benchmark baseline.

``BENCH_kernel.json`` (repo root, written by ``python -m repro.cli
bench``) locks in the kernel's event throughput on the machine that
recorded it.  This test re-measures the same workload and fails on a
>30% regression — wide enough to absorb run-to-run noise of a
best-of-N estimator, tight enough to catch a real slowdown in the
event-queue hot path.

The comparison is only meaningful on the machine that recorded the
baseline, so the test is marked ``bench_guard``: it runs in the default
local suite but CI deselects it (``-m "... and not bench_guard"``), and
it skips itself wherever the baseline file is absent.
"""

import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench_guard

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "BENCH_kernel.json"

#: Re-measured throughput must stay above this fraction of the record.
ALLOWED_FRACTION = 0.7


def test_kernel_throughput_has_not_regressed():
    if not BASELINE.exists():
        pytest.skip("no BENCH_kernel.json baseline recorded on this machine")
    try:
        recorded = json.loads(BASELINE.read_text())
    except ValueError:
        pytest.skip("BENCH_kernel.json is unreadable")
    kernel = recorded.get("kernel") or {}
    recorded_rate = kernel.get("events_per_s")
    if not recorded_rate:
        pytest.skip("baseline has no kernel.events_per_s entry")

    from repro.bench import bench_kernel

    current = bench_kernel(repeats=5)
    assert current["events_per_s"] >= ALLOWED_FRACTION * recorded_rate, (
        f"kernel throughput regressed: {current['events_per_s']:,.0f} ev/s "
        f"now vs {recorded_rate:,.0f} ev/s recorded "
        f"(floor {ALLOWED_FRACTION:.0%}); if the slowdown is intentional, "
        f"re-record with `python -m repro.cli bench`"
    )
