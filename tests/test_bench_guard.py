"""Perf-regression guard against the recorded benchmark baseline.

``BENCH_kernel.json`` (repo root, written by ``python -m repro.cli
bench``) locks in the kernel's event throughput on the machine that
recorded it.  This test re-measures the same workload and fails on a
>30% regression — wide enough to absorb run-to-run noise of a
best-of-N estimator, tight enough to catch a real slowdown in the
event-queue hot path.

The comparison is only meaningful on the machine that recorded the
baseline, so the test is marked ``bench_guard``: it runs in the default
local suite but CI deselects it (``-m "... and not bench_guard"``), and
it skips itself wherever the baseline file is absent.
"""

import json
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench_guard

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "BENCH_kernel.json"

#: Re-measured throughput must stay above this fraction of the record.
ALLOWED_FRACTION = 0.7

#: Below-floor measurements are retried this many times before failing.
RETRIES = 3

#: Seconds to idle before a retry, letting a throttled CPU quota refill.
COOLDOWN_S = 2.0


def _recorded_rate(section: str, key: str) -> float:
    """The baseline rate for one section, or skip the test."""
    if not BASELINE.exists():
        pytest.skip("no BENCH_kernel.json baseline recorded on this machine")
    try:
        recorded = json.loads(BASELINE.read_text())
    except ValueError:
        pytest.skip("BENCH_kernel.json is unreadable")
    rate = (recorded.get(section) or {}).get(key)
    if not rate:
        pytest.skip(f"baseline has no {section}.{key} entry")
    return rate


def _measure_above_floor(measure, floor: float) -> float:
    """Best rate over up to RETRIES attempts, stopping once above *floor*.

    Contention noise is one-sided — background load and cgroup
    throttling only ever make the workload look *slower* — so the max
    over retries converges on the machine's true capability.  The
    cool-down between attempts lets a depleted CPU quota refill after a
    long test session has been running flat out.
    """
    best = measure()
    for _ in range(RETRIES):
        if best >= floor:
            break
        time.sleep(COOLDOWN_S)
        best = max(best, measure())
    return best


def test_kernel_throughput_has_not_regressed():
    recorded_rate = _recorded_rate("kernel", "events_per_s")

    from repro.bench import bench_kernel

    floor = ALLOWED_FRACTION * recorded_rate
    current = _measure_above_floor(
        lambda: bench_kernel(repeats=5)["events_per_s"], floor)
    assert current >= floor, (
        f"kernel throughput regressed: {current:,.0f} ev/s "
        f"now vs {recorded_rate:,.0f} ev/s recorded "
        f"(floor {ALLOWED_FRACTION:.0%}); if the slowdown is intentional, "
        f"re-record with `python -m repro.cli bench`"
    )


def test_timeout_churn_throughput_has_not_regressed():
    """Guard the interleaved-timeout regime (steal backoffs, heartbeats,
    retry timers) separately from the push-all-then-drain kernel bench:
    it exercises the calendar backend's steady state and timeout free
    list, which the drain-shaped bench barely touches."""
    recorded_rate = _recorded_rate("timeouts", "events_per_s")

    from repro.bench import bench_timeouts

    floor = ALLOWED_FRACTION * recorded_rate
    current = _measure_above_floor(
        lambda: bench_timeouts(repeats=5)["events_per_s"], floor)
    assert current >= floor, (
        f"timeout churn throughput regressed: {current:,.0f} ev/s "
        f"now vs {recorded_rate:,.0f} ev/s recorded "
        f"(floor {ALLOWED_FRACTION:.0%}); if the slowdown is intentional, "
        f"re-record with `python -m repro.cli bench --profile timeouts`"
    )


@pytest.mark.parametrize("app", ["fib", "knary"])
def test_macro_task_throughput_has_not_regressed(app):
    """Guard the end-to-end macro path (simulated cluster tasks/s) the
    same way: it is the number every fan-out consumer of this harness
    pays per run, so a regression here shrinks the fuzz/sweep budget
    even when the raw kernel is fine."""
    recorded_rate = _recorded_rate(app, "tasks_per_s")

    from repro.bench import bench_fib, bench_knary

    bench = {"fib": bench_fib, "knary": bench_knary}[app]
    floor = ALLOWED_FRACTION * recorded_rate
    current = _measure_above_floor(
        lambda: bench(repeats=3)["tasks_per_s"], floor)
    assert current >= floor, (
        f"{app} macro throughput regressed: {current:,.0f} "
        f"tasks/s now vs {recorded_rate:,.0f} tasks/s recorded "
        f"(floor {ALLOWED_FRACTION:.0%}); if the slowdown is intentional, "
        f"re-record with `python -m repro.cli bench`"
    )
