"""write_bench must preserve recorded history (the `pre_overhaul`
baseline block) instead of clobbering it on re-record."""

import json

from repro.bench import format_bench, load_bench, write_bench

PRE_OVERHAUL = {
    "kernel": {"events_per_s": 501086, "note": "seed kernel"},
}


def _fake_results(rate=1_000_000.0):
    return {
        "schema": 1,
        "recorded_at": "2026-01-01T00:00:00",
        "kernel": {"n_events": 10000, "repeats": 10, "best_s": 0.01,
                   "events_per_s": rate},
    }


def test_write_bench_preserves_pre_overhaul_roundtrip(tmp_path):
    path = str(tmp_path / "BENCH_kernel.json")
    first = dict(_fake_results(), pre_overhaul=PRE_OVERHAUL)
    write_bench(first, path)

    # Re-record without the historical block: it must survive.
    write_bench(_fake_results(rate=2_000_000.0), path)
    reread = load_bench(path)
    assert reread["pre_overhaul"] == PRE_OVERHAUL
    assert reread["kernel"]["events_per_s"] == 2_000_000.0
    assert reread["recorded_at"] == "2026-01-01T00:00:00"


def test_write_bench_new_keys_win_over_existing(tmp_path):
    path = str(tmp_path / "BENCH_kernel.json")
    write_bench(_fake_results(rate=1.0), path)
    write_bench(_fake_results(rate=2.0), path)
    assert load_bench(path)["kernel"]["events_per_s"] == 2.0


def test_write_bench_fresh_file(tmp_path):
    path = str(tmp_path / "BENCH_kernel.json")
    write_bench(_fake_results(), path)
    with open(path) as fh:
        assert json.load(fh)["kernel"]["n_events"] == 10000


def test_write_bench_tolerates_corrupt_existing_file(tmp_path):
    path = str(tmp_path / "BENCH_kernel.json")
    with open(path, "w") as fh:
        fh.write("{not json")
    write_bench(_fake_results(), path)
    assert load_bench(path)["kernel"]["n_events"] == 10000


def test_repo_baseline_still_has_pre_overhaul():
    """The recorded repo baseline keeps its seed-kernel history."""
    recorded = load_bench()
    if recorded is None:
        return  # no baseline on this machine; nothing to protect
    assert "pre_overhaul" in recorded, (
        "BENCH_kernel.json lost its pre_overhaul history block"
    )
    assert format_bench(recorded)  # renders without raising
