"""write_bench must preserve recorded history (the `pre_overhaul` and
`pre_calendar` baseline blocks) instead of clobbering it on re-record."""

import json

from repro.bench import format_bench, load_bench, write_bench

PRE_OVERHAUL = {
    "kernel": {"events_per_s": 501086, "note": "seed kernel"},
}

PRE_CALENDAR = {
    "kernel": {"events_per_s": 1294745, "note": "three-mode heap kernel"},
}


def _fake_results(rate=1_000_000.0):
    return {
        "schema": 1,
        "recorded_at": "2026-01-01T00:00:00",
        "kernel": {"n_events": 10000, "repeats": 10, "best_s": 0.01,
                   "events_per_s": rate},
    }


def test_write_bench_preserves_pre_overhaul_roundtrip(tmp_path):
    path = str(tmp_path / "BENCH_kernel.json")
    first = dict(_fake_results(), pre_overhaul=PRE_OVERHAUL)
    write_bench(first, path)

    # Re-record without the historical block: it must survive.
    write_bench(_fake_results(rate=2_000_000.0), path)
    reread = load_bench(path)
    assert reread["pre_overhaul"] == PRE_OVERHAUL
    assert reread["kernel"]["events_per_s"] == 2_000_000.0
    assert reread["recorded_at"] == "2026-01-01T00:00:00"


def test_write_bench_carries_both_history_blocks_through_rerecords(tmp_path):
    """Two successive re-records: neither history block may be lost, and
    a re-record that *does* name a history key cannot overwrite it."""
    path = str(tmp_path / "BENCH_kernel.json")
    first = dict(_fake_results(), pre_overhaul=PRE_OVERHAUL,
                 pre_calendar=PRE_CALENDAR)
    write_bench(first, path)

    # Re-record #1: plain results, no history keys.
    write_bench(_fake_results(rate=2_000_000.0), path)
    # Re-record #2: partial results (a --profile timeouts run) that also
    # tries to smuggle in a bogus pre_calendar block.
    partial = {
        "schema": 1,
        "recorded_at": "2026-02-02T00:00:00",
        "timeouts": {"events_per_s": 1_500_000.0, "repeats": 10},
        "pre_calendar": {"kernel": {"events_per_s": -1, "note": "bogus"}},
    }
    write_bench(partial, path)

    reread = load_bench(path)
    assert reread["pre_overhaul"] == PRE_OVERHAUL
    assert reread["pre_calendar"] == PRE_CALENDAR  # recorded history wins
    assert reread["kernel"]["events_per_s"] == 2_000_000.0  # survived partial
    assert reread["timeouts"]["events_per_s"] == 1_500_000.0
    assert reread["recorded_at"] == "2026-02-02T00:00:00"


def test_write_bench_new_keys_win_over_existing(tmp_path):
    path = str(tmp_path / "BENCH_kernel.json")
    write_bench(_fake_results(rate=1.0), path)
    write_bench(_fake_results(rate=2.0), path)
    assert load_bench(path)["kernel"]["events_per_s"] == 2.0


def test_write_bench_fresh_file(tmp_path):
    path = str(tmp_path / "BENCH_kernel.json")
    write_bench(_fake_results(), path)
    with open(path) as fh:
        assert json.load(fh)["kernel"]["n_events"] == 10000


def test_write_bench_tolerates_corrupt_existing_file(tmp_path):
    path = str(tmp_path / "BENCH_kernel.json")
    with open(path, "w") as fh:
        fh.write("{not json")
    write_bench(_fake_results(), path)
    assert load_bench(path)["kernel"]["n_events"] == 10000


def test_repo_baseline_still_has_pre_overhaul():
    """The recorded repo baseline keeps its seed-kernel history."""
    recorded = load_bench()
    if recorded is None:
        return  # no baseline on this machine; nothing to protect
    assert "pre_overhaul" in recorded, (
        "BENCH_kernel.json lost its pre_overhaul history block"
    )
    assert "pre_calendar" in recorded, (
        "BENCH_kernel.json lost its pre_calendar history block"
    )
    assert format_bench(recorded)  # renders without raising
