"""Tests for checkpoint/restart (the paper's planned extension)."""

import pytest

from repro.apps.pfold import pfold_job, pfold_serial
from repro.errors import ReproError
from repro.fault.checkpoint import (
    JobCheckpoint,
    checkpoint_and_kill_run,
    restore_job,
)

SEQ = "HPHPPHHPHPPH"
SCALE = 60.0


def job():
    return pfold_job(SEQ, work_scale=SCALE)


@pytest.fixture(scope="module")
def cp_and_restored():
    return checkpoint_and_kill_run(job(), 4, checkpoint_at_s=4.0, seed=3)


def test_checkpoint_captures_live_state(cp_and_restored):
    checkpoint, _ = cp_and_restored
    assert len(checkpoint.workers) == 4
    assert checkpoint.live_closures > 0
    assert checkpoint.taken_at >= 4.0


def test_restored_run_result_exact(cp_and_restored):
    _, restored = cp_and_restored
    assert restored.result == pfold_serial(SEQ, work_scale=SCALE).result


def test_restored_run_does_not_rerun_root(cp_and_restored):
    checkpoint, restored = cp_and_restored
    # Completing 65k tasks from scratch would need ~65k executions; the
    # restored run only needs what remained past the checkpoint.
    from repro.baselines.serial import execute_serially

    full = execute_serially(job()).tasks_executed
    assert restored.stats.tasks_executed < full


def test_restore_rejects_empty_checkpoint():
    with pytest.raises(ReproError):
        restore_job(JobCheckpoint(job_name="x", taken_at=0.0), job())


def test_checkpoint_too_late_raises():
    with pytest.raises(ReproError, match="finished before"):
        checkpoint_and_kill_run(job(), 4, checkpoint_at_s=10_000.0, seed=3)


def test_checkpoint_deterministic():
    a, _ = checkpoint_and_kill_run(job(), 3, checkpoint_at_s=3.0, seed=9)
    b, _ = checkpoint_and_kill_run(job(), 3, checkpoint_at_s=3.0, seed=9)
    assert a.taken_at == b.taken_at
    assert {n: ws.live_closures for n, ws in a.workers.items()} == {
        n: ws.live_closures for n, ws in b.workers.items()
    }
